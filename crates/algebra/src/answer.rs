//! The tuple flowing through query plans: an answer candidate with its
//! three ranking components (paper §3.3) — query score `S`, KOR score `K`,
//! and the VOR attribute values backing the `≺_V` comparison.

use pimento_index::ElemEntry;
use pimento_profile::AttrValue;
use std::collections::HashMap;
use std::sync::Arc;

/// VOR-relevant attribute values of an answer, fetched once by the `vor`
/// operator and shared (answers are cloned into top-k lists).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VorKey {
    /// The answer element's tag name.
    pub tag: String,
    /// Resolved attribute values (missing attributes are absent).
    pub fields: HashMap<String, AttrValue>,
}

impl VorKey {
    /// Field accessor in the shape the VOR comparator wants.
    pub fn getter(&self) -> impl Fn(&str) -> Option<AttrValue> + '_ {
        move |attr| self.fields.get(attr).cloned()
    }
}

/// One intermediate or final answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The binding of the query's distinguished node.
    pub elem: ElemEntry,
    /// Query score `S`: sum of keyword-predicate contributions, each in
    /// [0, 1].
    pub s: f64,
    /// KOR score `K`: sum of the weights of satisfied keyword ordering
    /// rules.
    pub k: f64,
    /// VOR attribute values; `None` until the `vor` operator has run.
    pub vor: Option<Arc<VorKey>>,
}

impl Answer {
    /// Fresh answer with base score `s`.
    pub fn new(elem: ElemEntry, s: f64) -> Self {
        Answer { elem, s, k: 0.0, vor: None }
    }

    /// Deterministic identity tiebreak: document order.
    pub fn tiebreak(&self) -> (u32, u32) {
        (self.elem.doc.0, self.elem.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::DocId;
    use pimento_xml::NodeId;

    fn entry(doc: u32, start: u32) -> ElemEntry {
        ElemEntry { doc: DocId(doc), node: NodeId(0), start, end: start + 10, level: 1 }
    }

    #[test]
    fn answer_construction() {
        let a = Answer::new(entry(0, 5), 0.7);
        assert_eq!(a.s, 0.7);
        assert_eq!(a.k, 0.0);
        assert!(a.vor.is_none());
        assert_eq!(a.tiebreak(), (0, 5));
    }

    #[test]
    fn vor_key_getter() {
        let mut key = VorKey { tag: "car".into(), fields: HashMap::new() };
        key.fields.insert("color".into(), AttrValue::Str("red".into()));
        let get = key.getter();
        assert_eq!(get("color"), Some(AttrValue::Str("red".into())));
        assert_eq!(get("missing"), None);
    }

    #[test]
    fn tiebreak_orders_document_first() {
        let a = Answer::new(entry(0, 100), 0.0);
        let b = Answer::new(entry(1, 5), 0.0);
        assert!(a.tiebreak() < b.tiebreak());
    }
}
