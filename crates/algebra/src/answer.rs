//! The tuple flowing through query plans: an answer candidate with its
//! three ranking components (paper §3.3) — query score `S`, KOR score `K`,
//! and the compiled VOR key backing the `≺_V` comparison.

use pimento_index::ElemEntry;
use std::sync::Arc;

/// VOR-relevant attribute values of an answer, compiled once by the `vor`
/// operator into an id-based key and shared (answers are cloned into top-k
/// lists). Build with [`crate::rank::RankContext::make_key`]; pairwise
/// `≺_V` over two keys is array lookups and integer/float compares — see
/// [`pimento_profile::CompiledVors`].
pub use pimento_profile::CompiledKey as VorKey;

/// One intermediate or final answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The binding of the query's distinguished node.
    pub elem: ElemEntry,
    /// Query score `S`: sum of keyword-predicate contributions, each in
    /// [0, 1].
    pub s: f64,
    /// KOR score `K`: sum of the weights of satisfied keyword ordering
    /// rules.
    pub k: f64,
    /// Compiled VOR key; `None` until the `vor` operator has run.
    pub vor: Option<Arc<VorKey>>,
}

impl Answer {
    /// Fresh answer with base score `s`.
    pub fn new(elem: ElemEntry, s: f64) -> Self {
        Answer {
            elem,
            s,
            k: 0.0,
            vor: None,
        }
    }

    /// Deterministic identity tiebreak: document order.
    pub fn tiebreak(&self) -> (u32, u32) {
        (self.elem.doc.0, self.elem.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::RankContext;
    use pimento_index::DocId;
    use pimento_profile::{AttrValue, RankOrder, ValueOrderingRule};
    use pimento_xml::NodeId;

    fn entry(doc: u32, start: u32) -> ElemEntry {
        ElemEntry {
            doc: DocId(doc),
            node: NodeId(0),
            start,
            end: start + 10,
            level: 1,
        }
    }

    #[test]
    fn answer_construction() {
        let a = Answer::new(entry(0, 5), 0.7);
        assert_eq!(a.s, 0.7);
        assert_eq!(a.k, 0.0);
        assert!(a.vor.is_none());
        assert_eq!(a.tiebreak(), (0, 5));
    }

    #[test]
    fn vor_key_compilation() {
        let ctx = RankContext::new(
            vec![ValueOrderingRule::prefer_value(
                "pi1", "car", "color", "red",
            )],
            RankOrder::Kvs,
        );
        let key = ctx.make_key("car", |_, attr| {
            (attr == "color").then(|| AttrValue::Str("red".into()))
        });
        assert_eq!(key.tag(), "car");
        assert!(ctx.key_has(&key, "color"));
        assert!(!ctx.key_has(&key, "missing"));
    }

    #[test]
    fn tiebreak_orders_document_first() {
        let a = Answer::new(entry(0, 100), 0.0);
        let b = Answer::new(entry(1, 5), 0.0);
        assert!(a.tiebreak() < b.tiebreak());
    }
}
