//! Execution context: the indexes every operator reads, plus run counters.

use pimento_index::{Collection, InvertedIndex, Scorer, TagIndex, Tokenizer, ValueIndex};

/// The indexed collection a plan executes against (paper §6.4: "we rely on
/// inverted indices on keywords and on an index per distinct tag").
#[derive(Debug)]
pub struct Database {
    /// The document store.
    pub coll: Collection,
    /// Positional keyword index.
    pub inverted: InvertedIndex,
    /// Per-tag element index.
    pub tags: TagIndex,
    /// Numeric leaf-value index (range scans for constraint predicates).
    pub values: ValueIndex,
    /// Keyword-predicate scorer.
    pub scorer: Scorer,
}

impl Database {
    /// Index `coll` with the given tokenizer.
    pub fn index(coll: Collection, tokenizer: Tokenizer) -> Self {
        let inverted = InvertedIndex::build(&coll, tokenizer);
        let tags = TagIndex::build(&coll);
        let values = ValueIndex::build(&coll);
        let scorer = Scorer::new(&inverted);
        Database {
            coll,
            inverted,
            tags,
            values,
            scorer,
        }
    }

    /// Index with the plain (non-stemming) tokenizer.
    pub fn index_plain(coll: Collection) -> Self {
        Self::index(coll, Tokenizer::plain())
    }

    /// Assemble a database from already-constructed parts — the columnar
    /// snapshot open path, where the indexes are packed zero-copy views
    /// instead of heap rebuilds. Only the scorer (a handful of corpus
    /// aggregates) is computed here.
    pub fn from_parts(
        coll: Collection,
        inverted: InvertedIndex,
        tags: TagIndex,
        values: ValueIndex,
    ) -> Self {
        let scorer = Scorer::new(&inverted);
        Database {
            coll,
            inverted,
            tags,
            values,
            scorer,
        }
    }

    /// Add one more document, updating the indexes incrementally — new
    /// postings and element entries append in `(doc, …)` order, so no
    /// rebuild or re-sort happens; only the scorer's document count
    /// refreshes.
    pub fn add_xml(&mut self, xml: &str) -> Result<pimento_index::DocId, pimento_xml::XmlError> {
        let doc_id = self.coll.add_xml(xml)?;
        let doc = self.coll.doc(doc_id);
        self.inverted.index_document(doc_id, doc);
        self.tags.index_document(doc_id, doc);
        self.values.index_document(doc_id, doc);
        self.scorer = Scorer::new(&self.inverted);
        Ok(doc_id)
    }
}

/// Counters accumulated during one plan execution — the observable the
/// performance experiments (§7.2) reason about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Answers produced by the bottom query-evaluation operator.
    pub base_answers: u64,
    /// Answers discarded by `topkPrune` operators.
    pub pruned: u64,
    /// Answers cut by bulk pruning (sorted-input early exit).
    pub bulk_pruned: u64,
    /// Keyword containment probes performed.
    pub ft_probes: u64,
    /// `≺_V` comparator invocations.
    pub vor_comparisons: u64,
    /// Answers emitted by the plan root.
    pub emitted: u64,
}

impl ExecStats {
    /// Fold another stats block into this one.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.base_answers += other.base_answers;
        self.pruned += other.pruned;
        self.bulk_pruned += other.bulk_pruned;
        self.ft_probes += other.ft_probes;
        self.vor_comparisons += other.vor_comparisons;
        self.emitted += other.emitted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_indexing() {
        let mut coll = Collection::new();
        coll.add_xml("<car><color>red</color></car>").unwrap();
        let db = Database::index_plain(coll);
        assert_eq!(db.inverted.num_docs(), 1);
        let car = db.coll.tag("car").unwrap();
        assert_eq!(db.tags.count(car), 1);
    }

    #[test]
    fn stats_absorb() {
        let mut a = ExecStats {
            pruned: 3,
            ..Default::default()
        };
        let b = ExecStats {
            pruned: 4,
            emitted: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.pruned, 7);
        assert_eq!(a.emitted, 2);
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;

    #[test]
    fn incremental_add_equals_full_rebuild() {
        let docs = [
            "<dealer><car><d>good condition</d><price>100</price></car></dealer>",
            "<dealer><car><d>rusty</d><price>50</price></car></dealer>",
            "<dealer><car><d>good condition low mileage</d><price>900</price></car></dealer>",
        ];
        // Full build.
        let mut full_coll = Collection::new();
        for d in &docs {
            full_coll.add_xml(d).unwrap();
        }
        let full = Database::index_plain(full_coll);
        // Incremental build.
        let mut coll = Collection::new();
        coll.add_xml(docs[0]).unwrap();
        let mut inc = Database::index_plain(coll);
        for d in &docs[1..] {
            inc.add_xml(d).unwrap();
        }
        assert_eq!(full.inverted.num_docs(), inc.inverted.num_docs());
        assert_eq!(
            full.inverted.vocabulary_size(),
            inc.inverted.vocabulary_size()
        );
        for term in ["good", "condition", "rusty", "mileage", "100"] {
            assert_eq!(
                full.inverted.postings(term),
                inc.inverted.postings(term),
                "{term}"
            );
            assert_eq!(
                full.inverted.doc_freq(term),
                inc.inverted.doc_freq(term),
                "{term}"
            );
        }
        let car = full.coll.tag("car").unwrap();
        let car_i = inc.coll.tag("car").unwrap();
        assert_eq!(full.tags.elements(car), inc.tags.elements(car_i));
    }

    #[test]
    fn queries_see_incrementally_added_documents() {
        let mut coll = Collection::new();
        coll.add_xml("<dealer><car><d>good condition</d></car></dealer>")
            .unwrap();
        let mut db = Database::index_plain(coll);
        db.add_xml("<dealer><car><d>good condition in NYC</d></car></dealer>")
            .unwrap();
        let car = db.coll.tag("car").unwrap();
        assert_eq!(db.tags.count(car), 2);
        let nyc = db.inverted.analyze("NYC");
        let hits: Vec<_> = db
            .tags
            .elements(car)
            .iter()
            .filter(|e| pimento_index::ft_contains(&db.inverted, e, &nyc))
            .collect();
        assert_eq!(hits.len(), 1);
    }
}
