//! Execution context: the indexes every operator reads, plus run counters.

use pimento_index::{
    Collection, DocId, InvertedIndex, Scorer, TagIndex, Tokenizer, TombstoneSet, ValueIndex,
};
use std::sync::Arc;

/// The four index structures of one indexed collection, always built and
/// shared together. Segment republication (a live ingest publishing a new
/// generation) clones the `Arc` around this block instead of reindexing.
#[derive(Debug)]
pub struct Indexes {
    /// The document store.
    pub coll: Collection,
    /// Positional keyword index.
    pub inverted: InvertedIndex,
    /// Per-tag element index.
    pub tags: TagIndex,
    /// Numeric leaf-value index (range scans for constraint predicates).
    pub values: ValueIndex,
}

/// The indexed collection a plan executes against (paper §6.4: "we rely on
/// inverted indices on keywords and on an index per distinct tag").
///
/// The index structures sit behind an `Arc` so a `Database` clone is
/// cheap: the live ingest path republishes every existing segment with a
/// refreshed corpus-stats [`Scorer`] (and possibly a new [`TombstoneSet`])
/// on each generation without touching the indexes themselves. `Deref`
/// exposes the index fields, so operators keep reading `db.coll`,
/// `db.inverted`, `db.tags`, and `db.values` directly.
#[derive(Debug, Clone)]
pub struct Database {
    indexes: Arc<Indexes>,
    /// Keyword-predicate scorer.
    pub scorer: Scorer,
    /// Deleted local doc ids, when any (see [`Database::is_deleted`]).
    tombstones: Option<Arc<TombstoneSet>>,
}

impl std::ops::Deref for Database {
    type Target = Indexes;

    fn deref(&self) -> &Indexes {
        &self.indexes
    }
}

/// Why an in-place index mutation was refused or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MutateError {
    /// The document's XML failed to parse.
    Xml(pimento_xml::XmlError),
    /// The index block is shared (another engine generation still reads
    /// it); in-place mutation would change published results.
    Shared,
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::Xml(e) => write!(f, "{e}"),
            MutateError::Shared => write!(f, "indexes are shared; cannot mutate in place"),
        }
    }
}

impl std::error::Error for MutateError {}

impl From<pimento_xml::XmlError> for MutateError {
    fn from(e: pimento_xml::XmlError) -> Self {
        MutateError::Xml(e)
    }
}

impl Database {
    /// Index `coll` with the given tokenizer.
    pub fn index(coll: Collection, tokenizer: Tokenizer) -> Self {
        let inverted = InvertedIndex::build(&coll, tokenizer);
        let tags = TagIndex::build(&coll);
        let values = ValueIndex::build(&coll);
        let scorer = Scorer::new(&inverted);
        Database {
            indexes: Arc::new(Indexes {
                coll,
                inverted,
                tags,
                values,
            }),
            scorer,
            tombstones: None,
        }
    }

    /// Index with the plain (non-stemming) tokenizer.
    pub fn index_plain(coll: Collection) -> Self {
        Self::index(coll, Tokenizer::plain())
    }

    /// Assemble a database from already-constructed parts — the columnar
    /// snapshot open path, where the indexes are packed zero-copy views
    /// instead of heap rebuilds. Only the scorer (a handful of corpus
    /// aggregates) is computed here.
    pub fn from_parts(
        coll: Collection,
        inverted: InvertedIndex,
        tags: TagIndex,
        values: ValueIndex,
    ) -> Self {
        let scorer = Scorer::new(&inverted);
        Database {
            indexes: Arc::new(Indexes {
                coll,
                inverted,
                tags,
                values,
            }),
            scorer,
            tombstones: None,
        }
    }

    /// The same indexes under a different scorer — the cheap segment
    /// republication step (an `Arc` clone, no reindexing).
    pub fn with_scorer(&self, scorer: Scorer) -> Database {
        Database {
            indexes: Arc::clone(&self.indexes),
            scorer,
            tombstones: self.tombstones.clone(),
        }
    }

    /// The same indexes and scorer under a different tombstone set.
    pub fn with_tombstones(&self, tombstones: Option<Arc<TombstoneSet>>) -> Database {
        Database {
            indexes: Arc::clone(&self.indexes),
            scorer: self.scorer.clone(),
            tombstones,
        }
    }

    /// The tombstone set, when any document is deleted.
    pub fn tombstones(&self) -> Option<&Arc<TombstoneSet>> {
        self.tombstones.as_ref()
    }

    /// Is `doc` (a local doc id) tombstoned? Deleted documents are
    /// filtered out of the candidate scan at the base of every plan —
    /// before any pruning, so removing them only relaxes top-k bounds.
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.tombstones.as_ref().is_some_and(|t| t.contains(doc))
    }

    /// Number of deleted (tombstoned) documents.
    pub fn deleted_count(&self) -> u32 {
        self.tombstones
            .as_ref()
            .map(|t| t.deleted_count())
            .unwrap_or(0)
    }

    /// Documents that are present and not tombstoned.
    pub fn live_docs(&self) -> usize {
        self.coll.len() - self.deleted_count() as usize
    }

    /// Add one more document, updating the indexes incrementally — new
    /// postings and element entries append in `(doc, …)` order, so no
    /// rebuild or re-sort happens; only the scorer's document count
    /// refreshes. Fails with [`MutateError::Shared`] when the index block
    /// is still referenced by another generation (published segments are
    /// immutable; build a delta segment instead).
    pub fn add_xml(&mut self, xml: &str) -> Result<pimento_index::DocId, MutateError> {
        let indexes = Arc::get_mut(&mut self.indexes).ok_or(MutateError::Shared)?;
        let doc_id = indexes.coll.add_xml(xml)?;
        let doc = indexes.coll.doc(doc_id);
        indexes.inverted.index_document(doc_id, doc);
        indexes.tags.index_document(doc_id, doc);
        indexes.values.index_document(doc_id, doc);
        self.scorer = Scorer::new(&self.indexes.inverted);
        Ok(doc_id)
    }
}

/// Counters accumulated during one plan execution — the observable the
/// performance experiments (§7.2) reason about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Answers produced by the bottom query-evaluation operator.
    pub base_answers: u64,
    /// Answers discarded by `topkPrune` operators.
    pub pruned: u64,
    /// Answers cut by bulk pruning (sorted-input early exit).
    pub bulk_pruned: u64,
    /// Keyword containment probes performed.
    pub ft_probes: u64,
    /// `≺_V` comparator invocations.
    pub vor_comparisons: u64,
    /// Answers emitted by the plan root.
    pub emitted: u64,
}

impl ExecStats {
    /// Fold another stats block into this one.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.base_answers += other.base_answers;
        self.pruned += other.pruned;
        self.bulk_pruned += other.bulk_pruned;
        self.ft_probes += other.ft_probes;
        self.vor_comparisons += other.vor_comparisons;
        self.emitted += other.emitted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_indexing() {
        let mut coll = Collection::new();
        coll.add_xml("<car><color>red</color></car>").unwrap();
        let db = Database::index_plain(coll);
        assert_eq!(db.inverted.num_docs(), 1);
        let car = db.coll.tag("car").unwrap();
        assert_eq!(db.tags.count(car), 1);
    }

    #[test]
    fn stats_absorb() {
        let mut a = ExecStats {
            pruned: 3,
            ..Default::default()
        };
        let b = ExecStats {
            pruned: 4,
            emitted: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.pruned, 7);
        assert_eq!(a.emitted, 2);
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;

    #[test]
    fn incremental_add_equals_full_rebuild() {
        let docs = [
            "<dealer><car><d>good condition</d><price>100</price></car></dealer>",
            "<dealer><car><d>rusty</d><price>50</price></car></dealer>",
            "<dealer><car><d>good condition low mileage</d><price>900</price></car></dealer>",
        ];
        // Full build.
        let mut full_coll = Collection::new();
        for d in &docs {
            full_coll.add_xml(d).unwrap();
        }
        let full = Database::index_plain(full_coll);
        // Incremental build.
        let mut coll = Collection::new();
        coll.add_xml(docs[0]).unwrap();
        let mut inc = Database::index_plain(coll);
        for d in &docs[1..] {
            inc.add_xml(d).unwrap();
        }
        assert_eq!(full.inverted.num_docs(), inc.inverted.num_docs());
        assert_eq!(
            full.inverted.vocabulary_size(),
            inc.inverted.vocabulary_size()
        );
        for term in ["good", "condition", "rusty", "mileage", "100"] {
            assert_eq!(
                full.inverted.postings(term),
                inc.inverted.postings(term),
                "{term}"
            );
            assert_eq!(
                full.inverted.doc_freq(term),
                inc.inverted.doc_freq(term),
                "{term}"
            );
        }
        let car = full.coll.tag("car").unwrap();
        let car_i = inc.coll.tag("car").unwrap();
        assert_eq!(full.tags.elements(car), inc.tags.elements(car_i));
    }

    #[test]
    fn queries_see_incrementally_added_documents() {
        let mut coll = Collection::new();
        coll.add_xml("<dealer><car><d>good condition</d></car></dealer>")
            .unwrap();
        let mut db = Database::index_plain(coll);
        db.add_xml("<dealer><car><d>good condition in NYC</d></car></dealer>")
            .unwrap();
        let car = db.coll.tag("car").unwrap();
        assert_eq!(db.tags.count(car), 2);
        let nyc = db.inverted.analyze("NYC");
        let hits: Vec<_> = db
            .tags
            .elements(car)
            .iter()
            .filter(|e| pimento_index::ft_contains(&db.inverted, e, &nyc))
            .collect();
        assert_eq!(hits.len(), 1);
    }
}
