//! Pattern matching of a personalized TPQ against the indexed collection:
//! the pipelined, index-backed embedding test at the bottom of every plan
//! (paper §6.4: indexed nested-loop joins over the tag and keyword
//! indexes).
//!
//! [`Matcher::match_answer`] decides whether a candidate element is an
//! answer of the **required** part of a [`PersonalizedQuery`] and, if so,
//! returns its base query score `S` (the sum of the required keyword
//! predicates' contributions). Optional (SR-contributed) parts are
//! evaluated by the `SrPredJoin` operators above, via
//! [`Matcher::eval_pred_near`].

use crate::context::Database;
use pimento_index::{content_value, ft_contains, ElemEntry, ElemRef, FieldValue};
use pimento_profile::PersonalizedQuery;
use pimento_tpq::{Axis, Predicate, RelOp, TagTest, TpqNodeId, Value};
use pimento_xml::nav;
use pimento_xml::{NodeId, NodeKind, SymbolId};
use std::collections::HashMap;

/// A pattern node's tag test resolved against the collection's symbol
/// table at matcher build (tag tests are case-sensitive, so resolution is
/// an exact interning lookup); per candidate, matching is a symbol-id
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompiledTag {
    /// `*` — matches every element.
    Star,
    /// An interned name: elements match by symbol id.
    Sym(SymbolId),
    /// A name the collection never interned: no element can match.
    Unmatchable,
}

/// Analyzed (tokenized) keyword predicate with its exact score ceiling.
#[derive(Debug, Clone)]
pub struct PreparedPhrase {
    /// Pattern node carrying the predicate.
    pub node: TpqNodeId,
    /// Predicate index on that node.
    pub idx: usize,
    /// What kind of full-text check this is.
    pub kind: PreparedKind,
    /// Exact maximum score this predicate can contribute (its `nidf`
    /// times its weight; the tf component saturates below 1).
    pub bound: f64,
    /// Score multiplier from the weighted-SR extension (1.0 by default).
    pub weight: f64,
}

/// The analyzed form of a keyword predicate.
#[derive(Debug, Clone)]
pub enum PreparedKind {
    /// `ftcontains`: a single phrase (normalized tokens).
    Phrase(Vec<String>),
    /// `ftall`: every term present, optional window/order.
    All {
        /// Per-term analyzed tokens.
        terms: Vec<Vec<String>>,
        /// Maximum token span.
        window: Option<u32>,
        /// Terms must occur in the listed order.
        ordered: bool,
    },
}

impl PreparedPhrase {
    /// Does the predicate hold on `elem`?
    pub fn matches(&self, db: &Database, elem: &ElemEntry) -> bool {
        match &self.kind {
            PreparedKind::Phrase(tokens) => ft_contains(&db.inverted, elem, tokens),
            PreparedKind::All {
                terms,
                window,
                ordered,
            } => pimento_index::ft_all(&db.inverted, elem, terms, *window, *ordered),
        }
    }

    /// Score contribution on `elem` (0.0 when the predicate fails), already
    /// weighted. For `ftall`, the score is the mean of the per-term phrase
    /// scores — keeping it within the declared `bound`.
    pub fn score(&self, db: &Database, elem: &ElemEntry) -> f64 {
        match &self.kind {
            PreparedKind::Phrase(tokens) => {
                self.weight * db.scorer.ft_score(&db.inverted, elem, tokens)
            }
            PreparedKind::All {
                terms,
                window,
                ordered,
            } => {
                if !pimento_index::ft_all(&db.inverted, elem, terms, *window, *ordered) {
                    return 0.0;
                }
                let sum: f64 = terms
                    .iter()
                    .map(|t| db.scorer.ft_score(&db.inverted, elem, t))
                    .sum();
                self.weight * sum / terms.len() as f64
            }
        }
    }

    /// Display text for explain output.
    pub fn describe(&self) -> String {
        match &self.kind {
            PreparedKind::Phrase(tokens) => tokens.join(" "),
            PreparedKind::All {
                terms,
                window,
                ordered,
            } => {
                let mut s = format!(
                    "all({})",
                    terms
                        .iter()
                        .map(|t| t.join(" "))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                if let Some(w) = window {
                    s.push_str(&format!(" window {w}"));
                }
                if *ordered {
                    s.push_str(" ordered");
                }
                s
            }
        }
    }
}

/// Precompiled matcher for one personalized query.
#[derive(Debug)]
pub struct Matcher {
    pq: PersonalizedQuery,
    /// Tokens for every keyword predicate, keyed by (node, pred index).
    kw_tokens: HashMap<(TpqNodeId, usize), PreparedPhrase>,
    /// Root → distinguished node path.
    path: Vec<TpqNodeId>,
    /// Per pattern node (indexed by [`TpqNodeId`]), its tag test compiled
    /// to a symbol id.
    tags: Vec<CompiledTag>,
}

impl Matcher {
    /// Analyze `pq` against the database's tokenizer and scorer.
    pub fn new(db: &Database, pq: PersonalizedQuery) -> Self {
        let mut kw_tokens = HashMap::new();
        for id in pq.tpq.node_ids() {
            for (i, p) in pq.tpq.node(id).predicates.iter().enumerate() {
                let weight = pq.pred_weight(id, i);
                let prepared = match p {
                    Predicate::FtContains { phrase } => {
                        let tokens = db.inverted.analyze(phrase);
                        let bound = db.scorer.nidf(&db.inverted, &tokens) * weight;
                        PreparedPhrase {
                            node: id,
                            idx: i,
                            kind: PreparedKind::Phrase(tokens),
                            bound,
                            weight,
                        }
                    }
                    Predicate::FtAll {
                        terms,
                        window,
                        ordered,
                    } => {
                        let term_tokens: Vec<Vec<String>> =
                            terms.iter().map(|t| db.inverted.analyze(t)).collect();
                        let bound = weight
                            * term_tokens
                                .iter()
                                .map(|t| db.scorer.nidf(&db.inverted, t))
                                .sum::<f64>()
                            / term_tokens.len().max(1) as f64;
                        PreparedPhrase {
                            node: id,
                            idx: i,
                            kind: PreparedKind::All {
                                terms: term_tokens,
                                window: *window,
                                ordered: *ordered,
                            },
                            bound,
                            weight,
                        }
                    }
                    Predicate::Compare { .. } => continue,
                };
                kw_tokens.insert((id, i), prepared);
            }
        }
        let mut path = vec![pq.tpq.distinguished()];
        let mut cursor = pq.tpq.distinguished();
        while let Some(p) = pq.tpq.node(cursor).parent {
            path.push(p);
            cursor = p;
        }
        path.reverse();
        let tags = pq
            .tpq
            .node_ids()
            .map(|id| match &pq.tpq.node(id).tag {
                TagTest::Star => CompiledTag::Star,
                TagTest::Name(name) => match db.coll.symbols().get(name) {
                    Some(sym) => CompiledTag::Sym(sym),
                    None => CompiledTag::Unmatchable,
                },
            })
            .collect();
        Matcher {
            pq,
            kw_tokens,
            path,
            tags,
        }
    }

    /// The personalized query being matched.
    pub fn personalized(&self) -> &PersonalizedQuery {
        &self.pq
    }

    /// The distinguished node's tag name (what the bottom scan iterates).
    pub fn distinguished_tag(&self) -> Option<&str> {
        self.pq.tpq.node(self.pq.tpq.distinguished()).tag.name()
    }

    /// All *optional* keyword predicates, each a score contributor realized
    /// as an `SrPredJoin` in the plan.
    pub fn optional_keywords(&self) -> Vec<PreparedPhrase> {
        let mut out: Vec<PreparedPhrase> = self
            .kw_tokens
            .values()
            .filter(|p| self.pq.pred_is_optional(p.node, p.idx))
            .cloned()
            .collect();
        out.sort_by_key(|p| (p.node, p.idx));
        out
    }

    /// Does `elem` match the required part? Returns the base `S` if so.
    /// `ft_probes` counts keyword containment checks for the stats.
    pub fn match_answer(
        &self,
        db: &Database,
        elem: &ElemEntry,
        ft_probes: &mut u64,
    ) -> Option<f64> {
        // Downward: the distinguished node's own subtree.
        let down = self.embed_down(db, self.pq.tpq.distinguished(), elem, ft_probes)?;
        // Upward: assign the ancestors along the root path.
        let up = self.match_up(db, self.path.len() - 1, elem, ft_probes)?;
        Some(down + up)
    }

    /// Local check of one pattern node at `elem`: tag and required
    /// predicates; returns the node's own required-keyword score.
    fn check_local(
        &self,
        db: &Database,
        nid: TpqNodeId,
        elem: &ElemEntry,
        ft_probes: &mut u64,
    ) -> Option<f64> {
        let node = self.pq.tpq.node(nid);
        match (
            self.tags.get(nid.0 as usize).copied(),
            db.coll.node(elem.elem_ref()).tag(),
        ) {
            (Some(CompiledTag::Star), _) => {}
            (Some(CompiledTag::Sym(want)), Some(have)) if want == have => {}
            _ => return None,
        }
        let mut score = 0.0;
        for (i, pred) in node.predicates.iter().enumerate() {
            if self.pq.pred_is_optional(nid, i) {
                continue;
            }
            match pred {
                Predicate::FtContains { .. } | Predicate::FtAll { .. } => {
                    // Compiled for every required keyword predicate; a miss
                    // means the node can't satisfy it.
                    let prepared = self.kw_tokens.get(&(nid, i))?;
                    *ft_probes += 1;
                    if !prepared.matches(db, elem) {
                        return None;
                    }
                    score += prepared.score(db, elem);
                }
                Predicate::Compare { op, value } => {
                    if !compare_content(db, elem.elem_ref(), *op, value) {
                        return None;
                    }
                }
            }
        }
        Some(score)
    }

    /// Embed the required subtree rooted at `nid` with `nid ↦ elem`.
    fn embed_down(
        &self,
        db: &Database,
        nid: TpqNodeId,
        elem: &ElemEntry,
        ft_probes: &mut u64,
    ) -> Option<f64> {
        let mut score = self.check_local(db, nid, elem, ft_probes)?;
        for &child in &self.pq.tpq.node(nid).children {
            if self.pq.optional_nodes.contains(&child) {
                continue; // optional branch: handled by SrPredJoin above
            }
            score += self.find_child_match(db, child, elem, ft_probes)?;
        }
        Some(score)
    }

    /// Best-scoring element for pattern child `child` under `parent_elem`.
    fn find_child_match(
        &self,
        db: &Database,
        child: TpqNodeId,
        parent_elem: &ElemEntry,
        ft_probes: &mut u64,
    ) -> Option<f64> {
        let axis = self.pq.tpq.node(child).axis;
        let mut best: Option<f64> = None;
        let mut consider = |m: &Matcher, cand: ElemEntry, probes: &mut u64| {
            if let Some(s) = m.embed_down(db, child, &cand, probes) {
                best = Some(best.map_or(s, |b: f64| b.max(s)));
            }
        };
        match (self.tags.get(child.0 as usize).copied(), axis) {
            (Some(CompiledTag::Sym(sym)), Axis::Descendant) => {
                for cand in db.tags.elements_within(
                    sym,
                    parent_elem.doc,
                    parent_elem.start,
                    parent_elem.end,
                ) {
                    consider(self, cand, ft_probes);
                }
            }
            (Some(CompiledTag::Sym(sym)), Axis::Child) => {
                let doc = db.coll.doc(parent_elem.doc);
                for c in nav::children_with_tag(doc, parent_elem.node, sym) {
                    consider(self, entry_of(db, parent_elem.doc, c), ft_probes);
                }
            }
            (Some(CompiledTag::Star), Axis::Child) => {
                let doc = db.coll.doc(parent_elem.doc);
                for c in nav::child_elements(doc, parent_elem.node) {
                    consider(self, entry_of(db, parent_elem.doc, c), ft_probes);
                }
            }
            (Some(CompiledTag::Star), Axis::Descendant) => {
                let doc = db.coll.doc(parent_elem.doc);
                for c in doc.descendant_elements(parent_elem.node) {
                    consider(self, entry_of(db, parent_elem.doc, c), ft_probes);
                }
            }
            (Some(CompiledTag::Unmatchable) | None, _) => {}
        }
        best
    }

    /// Assign elements to the root-path ancestors of the distinguished
    /// node: `path[idx]` is mapped to `elem`; choose matching ancestors for
    /// `path[..idx]` recursively, maximizing branch scores.
    fn match_up(
        &self,
        db: &Database,
        idx: usize,
        elem: &ElemEntry,
        ft_probes: &mut u64,
    ) -> Option<f64> {
        // Branch subtrees hanging off path[idx] (its non-path required
        // children) must embed under `elem`.
        let nid = *self.path.get(idx)?;
        let next_on_path = self.path.get(idx + 1).copied();
        let mut score = 0.0;
        for &child in &self.pq.tpq.node(nid).children {
            if Some(child) == next_on_path || self.pq.optional_nodes.contains(&child) {
                continue;
            }
            score += self.find_child_match(db, child, elem, ft_probes)?;
        }
        if idx == 0 {
            // Root anchoring: Child-anchored root must be the document root.
            let node = self.pq.tpq.node(nid);
            if node.axis == Axis::Child && db.coll.doc(elem.doc).root() != elem.node {
                return None;
            }
            return Some(score);
        }
        // Choose an element for path[idx - 1] among elem's ancestors.
        let axis = self.pq.tpq.node(nid).axis; // axis of the edge into path[idx]
        let doc = db.coll.doc(elem.doc);
        let parent_nid = *self.path.get(idx - 1)?;
        let candidates: Vec<NodeId> = match axis {
            Axis::Child => doc.node(elem.node).parent.into_iter().collect(),
            Axis::Descendant => nav::ancestors(doc, elem.node).collect(),
        };
        let mut best: Option<f64> = None;
        for anc in candidates {
            let cand = entry_of(db, elem.doc, anc);
            if let Some(local) = self.check_local(db, parent_nid, &cand, ft_probes) {
                if let Some(up) = self.match_up(db, idx - 1, &cand, ft_probes) {
                    let total = local + up;
                    best = Some(best.map_or(total, |b: f64| b.max(total)));
                }
            }
        }
        best.map(|b| b + score)
    }

    /// Evaluate an optional keyword predicate "near" an answer: on the
    /// answer itself when the predicate sits on the distinguished node or
    /// one of its pattern ancestors (resolved through the answer's element
    /// ancestors), otherwise on the best-scoring element with the
    /// predicate-node's tag inside the enclosing scope. Returns the score
    /// contribution (0.0 when absent — outer-join semantics).
    pub fn eval_pred_near(
        &self,
        db: &Database,
        phrase: &PreparedPhrase,
        answer: &ElemEntry,
        ft_probes: &mut u64,
    ) -> f64 {
        *ft_probes += 1;
        let node = phrase.node;
        let tpq = &self.pq.tpq;
        let dist = tpq.distinguished();
        // Case 1: on the distinguished node itself.
        if node == dist {
            return phrase.score(db, answer);
        }
        // Case 2: on a pattern ancestor of the distinguished node.
        if self.path.contains(&node) {
            if let Some(CompiledTag::Sym(sym)) = self.tags.get(node.0 as usize).copied() {
                let doc = db.coll.doc(answer.doc);
                if let Some(anc) = nav::ancestor_or_self_with_tag(doc, answer.node, sym) {
                    let e = entry_of(db, answer.doc, anc);
                    return phrase.score(db, &e);
                }
            }
            return 0.0;
        }
        // Case 3: a branch node — search within the scope of its deepest
        // path ancestor.
        let scope = self.branch_scope(db, node, answer);
        let Some(scope) = scope else { return 0.0 };
        let Some(CompiledTag::Sym(sym)) = self.tags.get(node.0 as usize).copied() else {
            return 0.0;
        };
        let mut best = 0.0f64;
        for cand in db
            .tags
            .elements_within(sym, scope.doc, scope.start, scope.end)
        {
            best = best.max(phrase.score(db, &cand));
        }
        // The scope element itself may carry the tag.
        if db.coll.node(scope.elem_ref()).tag() == Some(sym) {
            best = best.max(phrase.score(db, &scope));
        }
        best
    }

    /// Element corresponding to the deepest root-path pattern ancestor of
    /// `node`, resolved against `answer`'s ancestors-or-self by tag.
    fn branch_scope(
        &self,
        db: &Database,
        node: TpqNodeId,
        answer: &ElemEntry,
    ) -> Option<ElemEntry> {
        let tpq = &self.pq.tpq;
        let mut cur = tpq.node(node).parent;
        let anchor = loop {
            let c = cur?;
            if self.path.contains(&c) {
                break c;
            }
            cur = tpq.node(c).parent;
        };
        let Some(CompiledTag::Sym(sym)) = self.tags.get(anchor.0 as usize).copied() else {
            return None;
        };
        let doc = db.coll.doc(answer.doc);
        let anc = nav::ancestor_or_self_with_tag(doc, answer.node, sym)?;
        Some(entry_of(db, answer.doc, anc))
    }
}

/// Build an [`ElemEntry`] for a node.
pub fn entry_of(db: &Database, doc: pimento_index::DocId, node: NodeId) -> ElemEntry {
    let n = db.coll.doc(doc).node(node);
    debug_assert!(matches!(n.kind, NodeKind::Element { .. }));
    ElemEntry {
        doc,
        node,
        start: n.start,
        end: n.end,
        level: n.level,
    }
}

/// Evaluate `content relOp value` on the element's text content.
pub fn compare_content(db: &Database, elem: ElemRef, op: RelOp, value: &Value) -> bool {
    let content = content_value(&db.coll, elem);
    match (content, value) {
        (FieldValue::Num(a), Value::Num(b)) => op.eval_num(a, *b),
        (FieldValue::Str(a), Value::Str(b)) => match op {
            RelOp::Eq => a.eq_ignore_ascii_case(b),
            RelOp::Ne => !a.eq_ignore_ascii_case(b),
            RelOp::Lt => a.to_lowercase() < b.to_lowercase(),
            RelOp::Le => a.to_lowercase() <= b.to_lowercase(),
            RelOp::Gt => a.to_lowercase() > b.to_lowercase(),
            RelOp::Ge => a.to_lowercase() >= b.to_lowercase(),
        },
        (FieldValue::Str(a), Value::Num(b)) => a
            .trim()
            .parse::<f64>()
            .map(|n| op.eval_num(n, *b))
            .unwrap_or(false),
        (FieldValue::Num(a), Value::Str(b)) => b
            .trim()
            .parse::<f64>()
            .map(|n| op.eval_num(a, n))
            .unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;
    use pimento_profile::PersonalizedQuery;
    use pimento_tpq::parse_tpq;

    fn db(xml: &str) -> Database {
        let mut coll = Collection::new();
        coll.add_xml(xml).unwrap();
        Database::index_plain(coll)
    }

    fn matcher(db: &Database, query: &str) -> Matcher {
        Matcher::new(
            db,
            PersonalizedQuery::unpersonalized(parse_tpq(query).unwrap()),
        )
    }

    fn candidates(db: &Database, m: &Matcher) -> Vec<(ElemEntry, f64)> {
        let mut probes = 0;
        let entries: Vec<ElemEntry> = match m.distinguished_tag().and_then(|t| db.coll.tag(t)) {
            Some(sym) => db.tags.elements(sym).to_vec(),
            None => db
                .coll
                .iter()
                .flat_map(|(doc_id, doc)| {
                    let db = &db;
                    doc.node_ids()
                        .filter(move |&n| doc.node(n).tag().is_some())
                        .map(move |n| entry_of(db, doc_id, n))
                })
                .collect(),
        };
        entries
            .into_iter()
            .filter_map(|e| m.match_answer(db, &e, &mut probes).map(|s| (e, s)))
            .collect()
    }

    const DEALER: &str = r#"<dealer>
        <car><description>good condition low mileage</description><price>500</price><color>red</color></car>
        <car><description>good condition</description><price>3000</price></car>
        <car><description>needs work</description><price>100</price></car>
    </dealer>"#;

    #[test]
    fn paper_query_q_matches_first_car_only() {
        let db = db(DEALER);
        let m = matcher(
            &db,
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
        );
        let found = candidates(&db, &m);
        assert_eq!(found.len(), 1);
        assert!(found[0].1 > 0.0, "keyword predicates contribute to S");
    }

    #[test]
    fn price_constraint_filters() {
        let db = db(DEALER);
        let m = matcher(&db, "//car[./price < 2000]");
        assert_eq!(candidates(&db, &m).len(), 2);
        let m = matcher(&db, "//car[./price >= 3000]");
        assert_eq!(candidates(&db, &m).len(), 1);
    }

    #[test]
    fn descendant_axis_and_upward_path() {
        let db = db(DEALER);
        // Distinguished node is price; ancestors must include car & dealer.
        let m = matcher(&db, "/dealer//car/price[. < 200]");
        let found = candidates(&db, &m);
        assert_eq!(found.len(), 1);
        assert_eq!(db.coll.text_content(found[0].0.elem_ref()), "100");
    }

    #[test]
    fn root_anchoring_enforced() {
        let db = db(DEALER);
        let m = matcher(&db, "/car");
        assert!(
            candidates(&db, &m).is_empty(),
            "car is not the document root"
        );
        let m = matcher(&db, "/dealer");
        assert_eq!(candidates(&db, &m).len(), 1);
    }

    #[test]
    fn ancestor_keyword_contributes_score() {
        let db = db(
            r#"<j><article><au>Jiawei Han</au><abs>data mining methods</abs></article>
               <article><au>Someone Else</au><abs>data mining here</abs></article></j>"#,
        );
        let m = matcher(
            &db,
            r#"//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]"#,
        );
        let found = candidates(&db, &m);
        assert_eq!(found.len(), 1, "only Han's abstract qualifies");
    }

    #[test]
    fn star_patterns() {
        let db = db(DEALER);
        let m = matcher(&db, "//car/*");
        let found = candidates(&db, &m);
        assert_eq!(found.len(), 7); // description+price per car, plus one color
    }

    #[test]
    fn optional_branch_skipped_in_required_match() {
        let db = db(DEALER);
        let q = parse_tpq(r#"//car[./price < 2000]"#).unwrap();
        let mut pq = PersonalizedQuery::unpersonalized(q);
        // Add an optional node with an impossible tag — must not filter.
        let extra = pq
            .tpq
            .add_child(pq.tpq.root(), pimento_tpq::Axis::Child, "nonexistent");
        pq.optional_nodes.insert(extra);
        let m = Matcher::new(&db, pq);
        assert_eq!(candidates(&db, &m).len(), 2);
    }

    #[test]
    fn optional_pred_skipped_but_scored_nearby() {
        let db = db(DEALER);
        let q = parse_tpq(r#"//car[./description[ftcontains(., "good condition")]]"#).unwrap();
        let mut pq = PersonalizedQuery::unpersonalized(q);
        let d = pq.tpq.find_by_tag("description").unwrap();
        pq.tpq.add_predicate(d, Predicate::ft("low mileage"));
        pq.optional_preds.insert((d, 1));
        let m = Matcher::new(&db, pq);
        let found = candidates(&db, &m);
        assert_eq!(found.len(), 2, "optional predicate does not filter");
        // Evaluate the optional predicate near each answer.
        let opt = m.optional_keywords();
        assert_eq!(opt.len(), 1);
        let mut probes = 0;
        let scores: Vec<f64> = found
            .iter()
            .map(|(e, _)| m.eval_pred_near(&db, &opt[0], e, &mut probes))
            .collect();
        assert!(scores[0] > 0.0, "first car has low mileage");
        assert_eq!(scores[1], 0.0, "second car does not");
    }

    #[test]
    fn eval_pred_near_on_distinguished_and_ancestor() {
        let db = db(r#"<a><b>alpha beta</b></a>"#);
        // Pred on distinguished:
        let q = parse_tpq("//b").unwrap();
        let mut pq = PersonalizedQuery::unpersonalized(q);
        pq.tpq.add_predicate(pq.tpq.root(), Predicate::ft("alpha"));
        pq.optional_preds.insert((pq.tpq.root(), 0));
        let m = Matcher::new(&db, pq);
        let b = db.coll.tag("b").unwrap();
        let elem = db.tags.elements(b).at(0);
        let opt = m.optional_keywords();
        let mut probes = 0;
        assert!(m.eval_pred_near(&db, &opt[0], &elem, &mut probes) > 0.0);
        // Pred on an ancestor (a) of distinguished (b):
        let q2 = parse_tpq("//a/b").unwrap();
        let mut pq2 = PersonalizedQuery::unpersonalized(q2);
        pq2.tpq.add_predicate(pq2.tpq.root(), Predicate::ft("beta"));
        pq2.optional_preds.insert((pq2.tpq.root(), 0));
        let m2 = Matcher::new(&db, pq2);
        let opt2 = m2.optional_keywords();
        assert!(m2.eval_pred_near(&db, &opt2[0], &elem, &mut probes) > 0.0);
    }

    #[test]
    fn compare_content_string_and_coercion() {
        let db = db("<a><x>red</x><y>42</y></a>");
        let x = db.coll.tag("x").unwrap();
        let y = db.coll.tag("y").unwrap();
        let ex = db.tags.elements(x).at(0).elem_ref();
        let ey = db.tags.elements(y).at(0).elem_ref();
        assert!(compare_content(
            &db,
            ex,
            RelOp::Eq,
            &Value::Str("Red".into())
        ));
        assert!(compare_content(
            &db,
            ex,
            RelOp::Ne,
            &Value::Str("blue".into())
        ));
        assert!(compare_content(&db, ey, RelOp::Lt, &Value::Num(100.0)));
        assert!(!compare_content(&db, ey, RelOp::Gt, &Value::Num(100.0)));
        assert!(compare_content(
            &db,
            ey,
            RelOp::Eq,
            &Value::Str("42".into())
        ));
    }
}
