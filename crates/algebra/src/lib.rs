//! # pimento-algebra
//!
//! The query algebra and evaluation engine of the PIMENTO reproduction
//! (paper §6): pull-based operators ([`ops`]), the pattern-matching
//! [`eval`]uator over the tag/keyword indexes, answer [`rank`]ing
//! (`K,V,S` / `V,K,S`), the OR-aware [`topk`]Prune operator implementing
//! Algorithms 1–3, and the [`plan`] builder assembling the paper's four
//! strategies (NtpkP, NS-ILtpkP, S-ILtpkP, PtpkP).
//!
//! ```
//! use pimento_algebra::{Database, Matcher, RankContext, build_plan, PlanSpec, PlanStrategy};
//! use pimento_index::Collection;
//! use pimento_profile::{KeywordOrderingRule, PersonalizedQuery, RankOrder};
//! use pimento_tpq::parse_tpq;
//! use std::sync::Arc;
//!
//! let mut coll = Collection::new();
//! coll.add_xml("<cars><car><d>red NYC</d></car><car><d>blue</d></car></cars>").unwrap();
//! let db = Database::index_plain(coll);
//! let query = parse_tpq("//car").unwrap();
//! let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(query)));
//! let rank = RankContext::new(vec![], RankOrder::Kvs);
//! let kors = vec![KeywordOrderingRule::new("nyc", "car", "NYC")];
//! let plan = build_plan(&db, matcher, &kors, rank, PlanSpec::new(1, PlanStrategy::Push));
//! let (top, _stats) = plan.execute(&db);
//! assert_eq!(top.len(), 1);
//! assert_eq!(top[0].k, 1.0); // the NYC car wins on the KOR score
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod context;
pub mod eval;
pub mod ops;
pub mod par;
pub mod plan;
pub mod rank;
pub mod structural;
pub mod topk;
pub mod trace;

pub use answer::{Answer, VorKey};
pub use context::{Database, ExecStats, Indexes, MutateError};
pub use eval::{compare_content, entry_of, Matcher, PreparedKind, PreparedPhrase};
pub use ops::{
    gather_candidates, BoxedOp, KorJoin, Operator, QueryEval, Sort, SrPredJoin, VorFetch,
};
pub use par::{execute_parallel, execute_with_workers, merge_survivors, run_in_lanes};
pub use plan::{
    build_merge_safe_plan, build_plan, choose_spec, EvalMode, KorOrder, Plan, PlanShape, PlanSpec,
    PlanStrategy, PlanVerifyError, Stage,
};
pub use rank::RankContext;
pub use structural::prefilter_candidates;
pub use topk::{TopkConfig, TopkPrune};
pub use trace::{render as render_trace, TraceEntry};

#[cfg(test)]
mod oracle_tests {
    //! Soundness: every plan strategy must return exactly what a
    //! no-pruning oracle (materialize everything, rank, cut) returns —
    //! on randomized documents, profiles, and k.

    use crate::answer::Answer;
    use crate::context::Database;
    use crate::eval::Matcher;
    use crate::plan::{build_plan, PlanSpec, PlanStrategy};
    use crate::rank::RankContext;
    use pimento_index::Collection;
    use pimento_profile::{KeywordOrderingRule, PersonalizedQuery, RankOrder, ValueOrderingRule};
    use pimento_tpq::parse_tpq;
    use proptest::prelude::*;
    use std::sync::Arc;

    const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon"];
    const COLORS: &[&str] = &["red", "blue", "green"];

    /// Build a small synthetic document from a recipe.
    fn build_doc(recipe: &[(u8, u8, u8)]) -> Database {
        let mut xml = String::from("<items>");
        for &(w1, w2, color) in recipe {
            xml.push_str(&format!(
                "<item><color>{}</color><text>{} {}</text><num>{}</num></item>",
                COLORS[color as usize % COLORS.len()],
                WORDS[w1 as usize % WORDS.len()],
                WORDS[w2 as usize % WORDS.len()],
                w1 as u32 + w2 as u32,
            ));
        }
        xml.push_str("</items>");
        let mut coll = Collection::new();
        coll.add_xml(&xml).unwrap();
        Database::index_plain(coll)
    }

    /// Independent oracle: match everything with the Matcher directly,
    /// apply KOR scores and VOR keys by hand, rank, cut at k.
    fn oracle(
        db: &Database,
        matcher: &Matcher,
        kors: &[KeywordOrderingRule],
        rank: &RankContext,
        k: usize,
    ) -> Vec<(u32, u32)> {
        use pimento_index::{field_value, ft_contains, FieldValue};
        use pimento_profile::AttrValue;
        let sym = db.coll.tag("item").expect("items exist");
        let mut probes = 0u64;
        let mut answers: Vec<Answer> = Vec::new();
        for e in db.tags.elements(sym) {
            let Some(mut s) = matcher.match_answer(db, &e, &mut probes) else {
                continue;
            };
            for p in matcher.optional_keywords() {
                s += matcher.eval_pred_near(db, &p, &e, &mut probes);
            }
            let mut a = Answer::new(e, s);
            for kor in kors {
                let tokens = db.inverted.analyze(&kor.phrase);
                if ft_contains(&db.inverted, &e, &tokens) {
                    a.k += kor.weight;
                }
            }
            let key = rank.make_key("item", |_, attr| {
                field_value(&db.coll, e.elem_ref(), attr).map(|v| match v {
                    FieldValue::Num(n) => AttrValue::Num(n),
                    FieldValue::Str(s) => AttrValue::Str(s),
                })
            });
            a.vor = Some(Arc::new(key));
            answers.push(a);
        }
        let mut stats = Default::default();
        rank.rank(&mut answers, &mut stats);
        answers.into_iter().take(k).map(|a| a.tiebreak()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn strategies_match_oracle(
            recipe in proptest::collection::vec((0u8..5, 0u8..5, 0u8..3), 1..25),
            k in 1usize..8,
            use_vor in any::<bool>(),
            n_kors in 0usize..3,
            with_s in any::<bool>(),
            vks in any::<bool>(),
        ) {
            let db = build_doc(&recipe);
            // Optionally give answers a real S spread via a required
            // keyword predicate ("alpha" is planted in most items).
            let query = if with_s {
                parse_tpq(r#"//item[ftcontains(., "alpha")]"#).unwrap()
            } else {
                parse_tpq("//item").unwrap()
            };
            let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(query)));
            let kors: Vec<KeywordOrderingRule> = WORDS[..n_kors]
                .iter()
                .enumerate()
                .map(|(i, w)| KeywordOrderingRule::weighted(w, "item", w, 1.0 + i as f64))
                .collect();
            let vors = if use_vor {
                vec![
                    ValueOrderingRule::prefer_value("c", "item", "color", "red").with_priority(0),
                    ValueOrderingRule::prefer_smaller("n", "item", "num").with_priority(1),
                ]
            } else {
                vec![]
            };
            let order = if vks { RankOrder::Vks } else { RankOrder::Kvs };
            let rank = RankContext::new(vors, order);
            let expect = oracle(&db, &matcher, &kors, &rank, k);
            for strategy in PlanStrategy::all() {
                let plan = build_plan(
                    &db,
                    Arc::clone(&matcher),
                    &kors,
                    Arc::clone(&rank),
                    PlanSpec::new(k, strategy),
                );
                let (out, _) = plan.execute(&db);
                let got: Vec<(u32, u32)> = out.iter().map(|a| a.tiebreak()).collect();
                prop_assert_eq!(&got, &expect, "strategy {}", strategy.paper_name());
            }
            // The structural-join evaluation mode must agree too.
            let sj_spec = PlanSpec {
                eval_mode: crate::plan::EvalMode::StructuralJoin,
                ..PlanSpec::new(k, PlanStrategy::Push)
            };
            let plan = build_plan(&db, Arc::clone(&matcher), &kors, Arc::clone(&rank), sj_spec);
            let (out, _) = plan.execute(&db);
            let got: Vec<(u32, u32)> = out.iter().map(|a| a.tiebreak()).collect();
            prop_assert_eq!(&got, &expect, "structural-join eval mode");
        }
    }
}
