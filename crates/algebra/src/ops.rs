//! The physical operators of the PIMENTO algebra (paper Fig. 3): the
//! bottom query-evaluation scan, SR outer-joins, `kor`, `vor`, and
//! parametric `sort`. `topkPrune` lives in [`crate::topk`].

use crate::answer::Answer;
use crate::context::{Database, ExecStats};
use crate::eval::{entry_of, Matcher, PreparedPhrase};
use crate::plan::EvalMode;
use crate::rank::RankContext;
use pimento_index::{field_value_sym, ft_contains, ElemEntry, FieldValue};
use pimento_profile::{AttrValue, KeywordOrderingRule};
use pimento_xml::SymbolId;
use std::sync::Arc;

/// A pull-based operator producing answers one at a time.
pub trait Operator {
    /// Produce the next answer, or `None` when exhausted.
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer>;

    /// One-line description for explain output.
    fn describe(&self) -> String;
}

/// Boxed operator, the unit plans are built from.
pub type BoxedOp = Box<dyn Operator>;

// ---------------------------------------------------------------------------

/// Bottom of every plan: enumerate candidate bindings of the distinguished
/// node from the tag index and keep those matching the query's required
/// part, with their base score `S`.
pub struct QueryEval {
    matcher: Arc<Matcher>,
    mode: EvalMode,
    candidates: Vec<ElemEntry>,
    cursor: usize,
    initialized: bool,
}

impl QueryEval {
    /// Create the scan for `matcher`'s query (per-candidate matching).
    pub fn new(matcher: Arc<Matcher>) -> Self {
        Self::with_mode(matcher, EvalMode::IndexedNestedLoop)
    }

    /// Create the scan with an explicit evaluation mode.
    pub fn with_mode(matcher: Arc<Matcher>, mode: EvalMode) -> Self {
        QueryEval {
            matcher,
            mode,
            candidates: Vec::new(),
            cursor: 0,
            initialized: false,
        }
    }

    /// Scan over a precomputed candidate list (the sharded parallel path:
    /// candidates are gathered once and split across workers).
    pub fn over_candidates(matcher: Arc<Matcher>, candidates: Vec<ElemEntry>) -> Self {
        QueryEval {
            matcher,
            mode: EvalMode::IndexedNestedLoop,
            candidates,
            cursor: 0,
            initialized: true,
        }
    }

    fn init(&mut self, db: &Database) {
        self.initialized = true;
        self.candidates = gather_candidates(db, &self.matcher, self.mode);
    }
}

/// The candidate bindings of `matcher`'s distinguished node that
/// [`QueryEval`] scans under `mode`, in document order. Tombstoned
/// documents are filtered out here, at the base of the plan — before any
/// prune sees an answer — so deleting candidates only ever *relaxes*
/// top-k bounds and every pruning strategy stays sound.
pub fn gather_candidates(db: &Database, matcher: &Matcher, mode: EvalMode) -> Vec<ElemEntry> {
    let mut candidates = raw_candidates(db, matcher, mode);
    if let Some(tombs) = db.tombstones() {
        if !tombs.is_empty() {
            candidates.retain(|e| !tombs.contains(e.doc));
        }
    }
    candidates
}

fn raw_candidates(db: &Database, matcher: &Matcher, mode: EvalMode) -> Vec<ElemEntry> {
    match mode {
        EvalMode::StructuralJoin => crate::structural::prefilter_candidates(db, matcher),
        EvalMode::IndexedNestedLoop => match matcher.distinguished_tag() {
            Some(tag) => match db.coll.tag(tag) {
                Some(sym) => db.tags.elements(sym).to_vec(),
                None => Vec::new(),
            },
            // Star distinguished node: every element in the collection.
            None => db
                .coll
                .iter()
                .flat_map(|(doc_id, doc)| {
                    doc.node_ids()
                        .filter(move |&n| doc.node(n).tag().is_some())
                        .map(move |n| (doc_id, n))
                })
                .map(|(d, n)| entry_of(db, d, n))
                .collect(),
        },
    }
}

impl Operator for QueryEval {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        if !self.initialized {
            self.init(db);
        }
        while let Some(&elem) = self.candidates.get(self.cursor) {
            self.cursor += 1;
            if let Some(s) = self.matcher.match_answer(db, &elem, &mut stats.ft_probes) {
                stats.base_answers += 1;
                return Some(Answer::new(elem, s));
            }
        }
        None
    }

    fn describe(&self) -> String {
        format!(
            "QueryEval({}{})",
            self.matcher.distinguished_tag().unwrap_or("*"),
            match self.mode {
                EvalMode::IndexedNestedLoop => "",
                EvalMode::StructuralJoin => ", structural-join",
            }
        )
    }
}

// ---------------------------------------------------------------------------

/// Outer-join enforcing one optional (SR-contributed) keyword predicate:
/// answers satisfying it gain its score, others pass through unchanged —
/// the paper's encoding of scoping rules in a single plan (§6.2).
pub struct SrPredJoin {
    input: BoxedOp,
    matcher: Arc<Matcher>,
    phrase: PreparedPhrase,
}

impl SrPredJoin {
    /// Wrap `input` with the optional predicate `phrase`.
    pub fn new(input: BoxedOp, matcher: Arc<Matcher>, phrase: PreparedPhrase) -> Self {
        SrPredJoin {
            input,
            matcher,
            phrase,
        }
    }

    /// Exact maximum score this operator can add to any answer.
    pub fn bound(&self) -> f64 {
        self.phrase.bound
    }
}

impl Operator for SrPredJoin {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        let mut a = self.input.next(db, stats)?;
        a.s += self
            .matcher
            .eval_pred_near(db, &self.phrase, &a.elem, &mut stats.ft_probes);
        Some(a)
    }

    fn describe(&self) -> String {
        format!(
            "SrPredJoin({:?}) -> {}",
            self.phrase.describe(),
            self.input.describe()
        )
    }
}

// ---------------------------------------------------------------------------

/// The `kor` operator (paper Fig. 3): applies one keyword-based ordering
/// rule, raising the `K` score of answers containing the keyword.
pub struct KorJoin {
    input: BoxedOp,
    rule: KeywordOrderingRule,
    tokens: Vec<String>,
    /// `tag_match[sym]` ⇔ the rule applies to elements with that interned
    /// tag — the case-insensitive name comparison runs once per symbol at
    /// plan build instead of once per answer.
    tag_match: Box<[bool]>,
}

impl KorJoin {
    /// Wrap `input` with `rule` (tokens analyzed against `db`'s index at
    /// first use would race the pull model, so analysis happens here).
    pub fn new(input: BoxedOp, db: &Database, rule: KeywordOrderingRule) -> Self {
        let tokens = db.inverted.analyze(&rule.phrase);
        let all = rule.tag == "*";
        let tag_match = db
            .coll
            .symbols()
            .iter()
            .map(|name| all || name.eq_ignore_ascii_case(&rule.tag))
            .collect();
        KorJoin {
            input,
            rule,
            tokens,
            tag_match,
        }
    }

    /// The rule's weight — its contribution to upstream kor-scorebounds.
    pub fn weight(&self) -> f64 {
        self.rule.weight
    }
}

impl Operator for KorJoin {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        let mut a = self.input.next(db, stats)?;
        let tag_matches = match db.coll.node(a.elem.elem_ref()).tag() {
            Some(t) => self.tag_match.get(t.0 as usize).copied().unwrap_or(false),
            None => false,
        };
        if tag_matches {
            stats.ft_probes += 1;
            if ft_contains(&db.inverted, &a.elem, &self.tokens) {
                a.k += self.rule.weight;
            }
        }
        Some(a)
    }

    fn describe(&self) -> String {
        format!(
            "kor[{}]({:?}) -> {}",
            self.rule.id,
            self.rule.phrase,
            self.input.describe()
        )
    }
}

// ---------------------------------------------------------------------------

/// The `vor` operator (paper Fig. 3): augments answers with the compiled
/// key the value-based ordering rules compare on. Attribute names resolve
/// to interned symbols once at plan build; per answer the fetch probes by
/// [`SymbolId`] and compiles the values into slot order.
pub struct VorFetch {
    input: BoxedOp,
    rank: Arc<RankContext>,
    /// Interned symbol per slot of [`RankContext::vor_attrs`]; `None`
    /// when the attribute name never occurs in the collection (the value
    /// is then absent from every key, as with the string path).
    attr_syms: Vec<Option<SymbolId>>,
}

impl VorFetch {
    /// Fetch every attribute mentioned by the context's VORs.
    pub fn new(input: BoxedOp, db: &Database, rank: &Arc<RankContext>) -> Self {
        let attr_syms = rank
            .vor_attrs()
            .iter()
            .map(|a| db.coll.symbols().get(a))
            .collect();
        VorFetch {
            input,
            rank: Arc::clone(rank),
            attr_syms,
        }
    }
}

impl Operator for VorFetch {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        let mut a = self.input.next(db, stats)?;
        let elem = a.elem.elem_ref();
        let tag = db
            .coll
            .node(elem)
            .tag()
            .map(|t| db.coll.symbols().name(t))
            .unwrap_or("");
        let attr_syms = &self.attr_syms;
        let key = self.rank.make_key(tag, |slot, _| {
            attr_syms
                .get(slot)
                .copied()
                .flatten()
                .and_then(|sym| field_value_sym(&db.coll, elem, sym))
                .map(|v| match v {
                    FieldValue::Num(n) => AttrValue::Num(n),
                    FieldValue::Str(s) => AttrValue::Str(s),
                })
        });
        a.vor = Some(Arc::new(key));
        Some(a)
    }

    fn describe(&self) -> String {
        format!(
            "vor({}) -> {}",
            self.rank.vor_attrs().join(","),
            self.input.describe()
        )
    }
}

// ---------------------------------------------------------------------------

/// The parametric `sort` operator (paper Fig. 3): materializes its input
/// and emits it in the context's ranking order.
pub struct Sort {
    input: BoxedOp,
    rank: Arc<RankContext>,
    /// `Some` once the input has been drained and ranked; answers are
    /// then moved out one at a time (no per-emit clone).
    sorted: Option<std::vec::IntoIter<Answer>>,
}

impl Sort {
    /// Sort `input` by `rank`'s order.
    pub fn new(input: BoxedOp, rank: Arc<RankContext>) -> Self {
        Sort {
            input,
            rank,
            sorted: None,
        }
    }
}

impl Operator for Sort {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        if self.sorted.is_none() {
            let mut buffer = Vec::new();
            while let Some(a) = self.input.next(db, stats) {
                buffer.push(a);
            }
            self.rank.rank(&mut buffer, stats);
            self.sorted = Some(buffer.into_iter());
        }
        self.sorted.as_mut()?.next()
    }

    fn describe(&self) -> String {
        format!("sort -> {}", self.input.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;
    use pimento_profile::{PersonalizedQuery, RankOrder};
    use pimento_tpq::parse_tpq;

    fn db() -> Database {
        let mut coll = Collection::new();
        coll.add_xml(
            r#"<people>
                <person><name>a</name><profile>male United States</profile><age>33</age></person>
                <person><name>b</name><profile>female College</profile><age>40</age></person>
                <person><name>c</name><profile>male Phoenix College</profile><age>33</age></person>
            </people>"#,
        )
        .unwrap();
        Database::index_plain(coll)
    }

    fn scan(db: &Database, q: &str) -> BoxedOp {
        let m = Arc::new(Matcher::new(
            db,
            PersonalizedQuery::unpersonalized(parse_tpq(q).unwrap()),
        ));
        Box::new(QueryEval::new(m))
    }

    fn drain(mut op: BoxedOp, db: &Database) -> (Vec<Answer>, ExecStats) {
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        while let Some(a) = op.next(db, &mut stats) {
            out.push(a);
        }
        (out, stats)
    }

    #[test]
    fn query_eval_produces_matches() {
        let db = db();
        let (out, stats) = drain(scan(&db, r#"//person[ftcontains(., "male")]"#), &db);
        // "female" is a single token, so only persons a and c contain the
        // token "male".
        assert_eq!(out.len(), 2);
        assert_eq!(stats.base_answers, 2);
        assert!(out.iter().all(|a| a.s > 0.0));
    }

    #[test]
    fn kor_join_adds_weight() {
        let db = db();
        let base = scan(&db, "//person");
        let kor = KeywordOrderingRule::weighted("pi4", "person", "Phoenix", 2.0);
        let op = Box::new(KorJoin::new(base, &db, kor));
        let (out, _) = drain(op, &db);
        assert_eq!(out.len(), 3);
        let ks: Vec<f64> = out.iter().map(|a| a.k).collect();
        assert_eq!(ks.iter().filter(|&&k| k == 2.0).count(), 1);
        assert_eq!(ks.iter().filter(|&&k| k == 0.0).count(), 2);
    }

    #[test]
    fn kor_join_respects_tag() {
        let db = db();
        let base = scan(&db, "//person");
        let kor = KeywordOrderingRule::new("x", "article", "male");
        let op = Box::new(KorJoin::new(base, &db, kor));
        let (out, _) = drain(op, &db);
        assert!(out.iter().all(|a| a.k == 0.0), "tag mismatch never scores");
    }

    #[test]
    fn vor_fetch_populates_fields() {
        let db = db();
        let rank = RankContext::new(
            vec![pimento_profile::ValueOrderingRule::prefer_value(
                "pi5", "person", "age", "33",
            )],
            RankOrder::Kvs,
        );
        let op = Box::new(VorFetch::new(scan(&db, "//person"), &db, &rank));
        let (out, _) = drain(op, &db);
        assert_eq!(out.len(), 3);
        for a in &out {
            let key = a.vor.as_ref().unwrap();
            assert_eq!(key.tag(), "person");
            assert!(rank.key_has(key, "age"));
        }
    }

    #[test]
    fn sort_materializes_and_orders() {
        let db = db();
        let base = scan(&db, "//person");
        let kor = KeywordOrderingRule::new("pi1", "person", "College");
        let with_k = Box::new(KorJoin::new(base, &db, kor));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let op = Box::new(Sort::new(with_k, rank));
        let (out, _) = drain(op, &db);
        assert_eq!(out.len(), 3);
        assert!(out[0].k >= out[1].k && out[1].k >= out[2].k);
    }

    #[test]
    fn sr_pred_join_outer_semantics() {
        let db = db();
        let q = parse_tpq("//person").unwrap();
        let mut pq = PersonalizedQuery::unpersonalized(q);
        pq.tpq
            .add_predicate(pq.tpq.root(), pimento_tpq::Predicate::ft("Phoenix"));
        pq.optional_preds.insert((pq.tpq.root(), 0));
        let m = Arc::new(Matcher::new(&db, pq));
        let base: BoxedOp = Box::new(QueryEval::new(Arc::clone(&m)));
        let phrase = m.optional_keywords().remove(0);
        let op = Box::new(SrPredJoin::new(base, m, phrase));
        let (out, _) = drain(op, &db);
        assert_eq!(out.len(), 3, "outer join keeps all answers");
        assert_eq!(
            out.iter().filter(|a| a.s > 0.0).count(),
            1,
            "only Phoenix answer scores"
        );
    }
}

#[cfg(test)]
mod op_edge_tests {
    use super::*;
    use crate::eval::Matcher;
    use pimento_index::Collection;
    use pimento_profile::{PersonalizedQuery, RankOrder};
    use pimento_tpq::parse_tpq;

    fn db(xml: &str) -> Database {
        let mut coll = Collection::new();
        coll.add_xml(xml).unwrap();
        Database::index_plain(coll)
    }

    fn drain(mut op: BoxedOp, db: &Database) -> Vec<Answer> {
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        while let Some(a) = op.next(db, &mut stats) {
            out.push(a);
        }
        out
    }

    #[test]
    fn sort_on_empty_input() {
        let db = db("<a/>");
        let m = Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq("//missing").unwrap()),
        ));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let op: BoxedOp = Box::new(Sort::new(Box::new(QueryEval::new(m)), rank));
        assert!(drain(op, &db).is_empty());
    }

    #[test]
    fn kor_star_tag_matches_any_element() {
        let db = db("<a><b>NYC here</b><c>elsewhere</c></a>");
        let m = Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq("//a/*").unwrap()),
        ));
        let base: BoxedOp = Box::new(QueryEval::new(m));
        let kor = KeywordOrderingRule::new("any", "*", "NYC");
        let out = drain(Box::new(KorJoin::new(base, &db, kor)), &db);
        assert_eq!(out.len(), 2);
        assert_eq!(out.iter().filter(|a| a.k > 0.0).count(), 1);
    }

    #[test]
    fn vor_fetch_missing_attributes_leave_fields_absent() {
        let db = db("<a><car><color>red</color></car><car/></a>");
        let rank = RankContext::new(
            vec![pimento_profile::ValueOrderingRule::prefer_value(
                "c", "car", "color", "red",
            )],
            RankOrder::Kvs,
        );
        let m = Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq("//car").unwrap()),
        ));
        let op: BoxedOp = Box::new(VorFetch::new(Box::new(QueryEval::new(m)), &db, &rank));
        let out = drain(op, &db);
        assert_eq!(out.len(), 2);
        let keys: Vec<bool> = out
            .iter()
            .map(|a| rank.key_has(a.vor.as_ref().unwrap(), "color"))
            .collect();
        assert_eq!(keys.iter().filter(|&&b| b).count(), 1);
    }
}
