//! Parallel query execution: sharded candidate scan with per-worker
//! top-k pruning.
//!
//! The candidate list the bottom [`QueryEval`] scan would enumerate is
//! gathered once, split into contiguous shards, and each shard runs the
//! full match/score/`kor` pipeline — including mid-plan `topkPrune`s with
//! a worker-local list and worker-local [`ExecStats`] — on its own thread.
//!
//! ## Why the merge is exact
//!
//! Mid-plan prunes drop an answer only when `k` list members *certainly
//! outrank* it (see [`crate::topk`]). That check is pairwise and
//! set-independent, so it holds regardless of which shard the `k`
//! witnesses live in: every answer dropped by any worker has `k` answers
//! above it in the full ranking and cannot be in the global top-k.
//!
//! The per-shard *final* stage is where parallelism could go wrong. With
//! no VORs the final order is total, so each shard's positional top-k cut
//! is exact and the union of shard top-k lists contains the global top-k.
//! With VORs, `≺_V` dominance layering is set-dependent — removing a
//! shard-mate can lift a dominated answer into an earlier layer — so a
//! positional cut at `k` inside one shard could drop an answer the global
//! ranking keeps. Worker plans therefore end in a *survivor* prune
//! (`merge_safe` in [`crate::plan`]): keep everything not certainly
//! outranked by `k` shard answers, which is the same invariant the
//! mid-plan prunes rely on. The merge re-ranks the union of survivors
//! under the exact `K, V, S` order and cuts at `k`; because every pruned
//! answer provably sits below `k` surviving answers in any superset
//! ranking, the cut equals the sequential result bit for bit.

use crate::answer::Answer;
use crate::context::{Database, ExecStats};
use crate::eval::Matcher;
use crate::ops::{gather_candidates, BoxedOp, QueryEval};
use crate::plan::{assemble, build_plan, PlanSpec};
use crate::rank::RankContext;
use pimento_index::effective_workers;
use pimento_profile::KeywordOrderingRule;
use std::sync::Arc;

/// Run `spec`'s plan over `threads` workers, returning the answers, the
/// aggregated counters, and the per-worker counter breakdown (one entry
/// per worker actually spawned; a single entry on the sequential path).
///
/// Results are identical to [`build_plan`] + [`crate::plan::Plan::execute`]
/// for every strategy, KOR order, and rank order. Tracing is not supported
/// here (trace registries are single-threaded); callers wanting a trace
/// should run sequentially.
pub fn execute_parallel(
    db: &Database,
    matcher: Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: Arc<RankContext>,
    spec: PlanSpec,
    threads: usize,
) -> (Vec<Answer>, ExecStats, Vec<ExecStats>) {
    let candidates = gather_candidates(db, &matcher, spec.eval_mode);
    let workers = effective_workers(threads, candidates.len());
    execute_sharded(db, matcher, kors, rank, spec, workers, candidates)
}

/// The unclamped worker path (benchmarks and tests exercise multi-worker
/// merging even on single-core machines). Workers beyond the candidate
/// count are never spawned; `0` or `1` runs the sequential plan.
pub fn execute_with_workers(
    db: &Database,
    matcher: Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: Arc<RankContext>,
    spec: PlanSpec,
    workers: usize,
) -> (Vec<Answer>, ExecStats, Vec<ExecStats>) {
    let candidates = gather_candidates(db, &matcher, spec.eval_mode);
    execute_sharded(db, matcher, kors, rank, spec, workers, candidates)
}

fn execute_sharded(
    db: &Database,
    matcher: Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: Arc<RankContext>,
    spec: PlanSpec,
    workers: usize,
    candidates: Vec<pimento_index::ElemEntry>,
) -> (Vec<Answer>, ExecStats, Vec<ExecStats>) {
    if workers <= 1 || candidates.len() <= 1 || spec.trace {
        // The candidates are re-gathered by the plan's own scan; for the
        // one-worker path that duplication is the sharding overhead we
        // are skipping anyway.
        let (out, stats) = build_plan(db, matcher, kors, rank, spec).execute(db);
        return (out, stats, vec![stats]);
    }

    let worker_spec = PlanSpec {
        trace: false,
        ..spec
    };
    let chunk = candidates.len().div_ceil(workers);
    let shard_count = candidates.len().div_ceil(chunk);
    // Slots are pre-filled with the empty result so the merge below never
    // needs to unwrap: a shard that somehow produced nothing contributes
    // nothing (scope joins every worker before returning, so in practice
    // each slot is written exactly once).
    let mut shards: Vec<(Vec<Answer>, ExecStats)> = (0..shard_count)
        .map(|_| (Vec::new(), ExecStats::default()))
        .collect();
    std::thread::scope(|scope| {
        for (shard, slot) in candidates.chunks(chunk).zip(shards.iter_mut()) {
            let matcher = Arc::clone(&matcher);
            let rank = Arc::clone(&rank);
            scope.spawn(move || {
                let source: BoxedOp = Box::new(QueryEval::over_candidates(
                    Arc::clone(&matcher),
                    shard.to_vec(),
                ));
                let plan = assemble(db, source, matcher, kors, rank, worker_spec, true);
                *slot = plan.execute(db);
            });
        }
    });

    merge_survivors(shards, &rank, spec.k)
}

/// Run `tasks` in waves of at most `lanes` scoped threads, returning each
/// task's result in task order. `lanes <= 1` runs them sequentially on
/// the calling thread. Slots are pre-filled with `T::default()`, so a
/// task that somehow never ran contributes the empty result instead of a
/// panic (scope joins every thread, so in practice each slot is written
/// exactly once). The scatter-gather segment executor uses this; it lives
/// here because all thread creation is confined to this module.
pub fn run_in_lanes<'a, T>(tasks: Vec<Box<dyn FnOnce() -> T + Send + 'a>>, lanes: usize) -> Vec<T>
where
    T: Default + Send,
{
    let mut slots: Vec<T> = tasks.iter().map(|_| T::default()).collect();
    if lanes <= 1 {
        for (task, slot) in tasks.into_iter().zip(slots.iter_mut()) {
            *slot = task();
        }
        return slots;
    }
    let mut tasks = tasks.into_iter();
    for slot_wave in slots.chunks_mut(lanes) {
        std::thread::scope(|scope| {
            for slot in slot_wave.iter_mut() {
                if let Some(task) = tasks.next() {
                    scope.spawn(move || {
                        *slot = task();
                    });
                }
            }
        });
    }
    slots
}

/// Merge per-shard survivor sets into the exact global top-`k`: rank the
/// union under the exact final `K, V, S` order and cut at `k` — the same
/// order and cut the sequential final sort + `topkPrune(final)` apply.
/// Exact for *any* partition of the answer space across shards (candidate
/// chunks or doc-range segments), provided each shard ran a merge-safe
/// plan ([`crate::plan::build_merge_safe_plan`]); see the module docs for
/// the soundness argument. Returns the merged answers, the aggregated
/// counters (`emitted` reset to the merged length), and the per-shard
/// counter breakdown.
pub fn merge_survivors(
    shards: Vec<(Vec<Answer>, ExecStats)>,
    rank: &RankContext,
    k: usize,
) -> (Vec<Answer>, ExecStats, Vec<ExecStats>) {
    let mut merged: Vec<Answer> = Vec::new();
    let mut agg = ExecStats::default();
    let mut worker_stats = Vec::with_capacity(shards.len());
    for (answers, stats) in shards {
        merged.extend(answers);
        agg.absorb(&stats);
        worker_stats.push(stats);
    }
    rank.rank(&mut merged, &mut agg);
    merged.truncate(k);
    agg.emitted = merged.len() as u64;
    (merged, agg, worker_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{EvalMode, KorOrder, PlanStrategy};
    use pimento_index::Collection;
    use pimento_profile::{PersonalizedQuery, RankOrder, ValueOrderingRule};
    use pimento_tpq::parse_tpq;

    fn db() -> Database {
        let mut coll = Collection::new();
        let mut xml = String::from("<people>");
        for i in 0..60 {
            let gender = if i % 2 == 0 { "male" } else { "female" };
            let state = if i % 3 == 0 {
                "United States"
            } else {
                "Elsewhere"
            };
            let edu = if i % 5 == 0 { "College" } else { "School" };
            let city = if i % 7 == 0 { "Phoenix" } else { "Springfield" };
            let age = 20 + (i % 20);
            xml.push_str(&format!(
                "<person><profile>{gender} {state} {edu} {city}</profile><age>{age}</age><business>{}</business></person>",
                if i % 2 == 0 { "Yes" } else { "No" }
            ));
        }
        xml.push_str("</people>");
        coll.add_xml(&xml).unwrap();
        Database::index_plain(coll)
    }

    fn kors() -> Vec<KeywordOrderingRule> {
        vec![
            KeywordOrderingRule::weighted("pi1", "person", "male", 1.0),
            KeywordOrderingRule::weighted("pi2", "person", "United States", 2.0),
            KeywordOrderingRule::weighted("pi3", "person", "College", 0.5),
            KeywordOrderingRule::weighted("pi4", "person", "Phoenix", 1.5),
        ]
    }

    fn full_key(answers: &[Answer]) -> Vec<(u32, u32, String, String)> {
        answers
            .iter()
            .map(|a| {
                let t = a.tiebreak();
                (t.0, t.1, format!("{:.12}", a.k), format!("{:.12}", a.s))
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_for_all_strategies_and_orders() {
        let db = db();
        let q = parse_tpq(r#"//person[ftcontains(./business, "Yes")]"#).unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        for rank_order in [RankOrder::Kvs, RankOrder::Vks] {
            let rank = RankContext::new(
                vec![ValueOrderingRule::prefer_value(
                    "pi5", "person", "age", "33",
                )],
                rank_order,
            );
            for strategy in PlanStrategy::all() {
                let spec = PlanSpec::new(7, strategy);
                let seq = build_plan(&db, Arc::clone(&matcher), &kors(), Arc::clone(&rank), spec)
                    .execute(&db)
                    .0;
                for threads in [2, 3, 8] {
                    let (par, _, _) = execute_with_workers(
                        &db,
                        Arc::clone(&matcher),
                        &kors(),
                        Arc::clone(&rank),
                        spec,
                        threads,
                    );
                    assert_eq!(
                        full_key(&seq),
                        full_key(&par),
                        "{} x{threads} ({rank_order:?})",
                        strategy.paper_name()
                    );
                }
            }
        }
    }

    #[test]
    fn structural_join_candidates_shard_too() {
        let db = db();
        let q = parse_tpq(r#"//person[ftcontains(./business, "Yes")]"#).unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let spec = PlanSpec {
            eval_mode: EvalMode::StructuralJoin,
            kor_order: KorOrder::HighestWeightFirst,
            ..PlanSpec::new(5, PlanStrategy::Push)
        };
        let seq = build_plan(&db, Arc::clone(&matcher), &kors(), Arc::clone(&rank), spec)
            .execute(&db)
            .0;
        let (par, _, workers) = execute_with_workers(&db, matcher, &kors(), rank, spec, 4);
        assert_eq!(full_key(&seq), full_key(&par));
        assert!(workers.len() > 1, "sharded run expected");
    }

    #[test]
    fn stats_aggregate_sums_workers() {
        let db = db();
        let q = parse_tpq("//person").unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let (out, agg, workers) = execute_with_workers(
            &db,
            matcher,
            &kors(),
            rank,
            PlanSpec::new(5, PlanStrategy::Push),
            4,
        );
        assert_eq!(out.len(), 5);
        assert_eq!(agg.emitted, 5);
        let base: u64 = workers.iter().map(|w| w.base_answers).sum();
        assert_eq!(agg.base_answers, base);
        assert_eq!(agg.base_answers, 60, "every person matches //person");
    }

    #[test]
    fn zero_and_one_thread_fall_back_to_sequential() {
        let db = db();
        let q = parse_tpq("//person").unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        for threads in [0, 1] {
            let (out, stats, workers) = execute_with_workers(
                &db,
                Arc::clone(&matcher),
                &kors(),
                Arc::clone(&rank),
                PlanSpec::new(4, PlanStrategy::Naive),
                threads,
            );
            assert_eq!(out.len(), 4);
            assert_eq!(workers.len(), 1);
            assert_eq!(workers[0].emitted, stats.emitted);
        }
    }
}
