//! Plan generation (paper §6.2, Fig. 4 and §7.2): assembling the operators
//! into the four evaluated strategies.
//!
//! * **NtpkP** (NaiveTopkPrune) — `topkPrune` only at the very top, after
//!   the final sort.
//! * **NS-ILtpkP** (InterleaveTopkPrune, unsorted) — additionally prune
//!   after *each* `kor`.
//! * **S-ILtpkP** (InterleaveTopkPrune, sorted) — sort before each
//!   interleaved prune, enabling bulk pruning.
//! * **PtpkP** (PushTopkPrune) — prune pushed all the way down: directly
//!   above the query evaluation (using the full `kor-scorebound` and the
//!   SR score bound) and again after each `kor`.
//!
//! All four produce identical top-k answers (the bounds make pruning
//! safe); they differ only in how much intermediate work survives — which
//! is exactly what Figures 6 and 7 measure.

use crate::context::{Database, ExecStats};
use crate::eval::Matcher;
use crate::ops::{BoxedOp, KorJoin, QueryEval, Sort, SrPredJoin, VorFetch};
use crate::rank::RankContext;
use crate::topk::{TopkConfig, TopkPrune};
use crate::trace::{new_registry, traced, TraceRegistry};
use pimento_profile::KeywordOrderingRule;
use std::sync::Arc;

/// Which of the paper's four plans to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// `NtpkP`: prune only at the top.
    Naive,
    /// `NS-ILtpkP`: prune after each `kor`, unsorted.
    InterleaveUnsorted,
    /// `S-ILtpkP`: sort + prune after each `kor` (bulk pruning).
    InterleaveSorted,
    /// `PtpkP`: prune pushed below the `kor`s too.
    Push,
}

impl PlanStrategy {
    /// The paper's abbreviation for the strategy.
    pub fn paper_name(&self) -> &'static str {
        match self {
            PlanStrategy::Naive => "NtpkP",
            PlanStrategy::InterleaveUnsorted => "NS-ILtpkP",
            PlanStrategy::InterleaveSorted => "S-ILtpkP",
            PlanStrategy::Push => "PtpkP",
        }
    }

    /// All four strategies, in the paper's Fig. 7 order.
    pub fn all() -> [PlanStrategy; 4] {
        [
            PlanStrategy::Naive,
            PlanStrategy::InterleaveUnsorted,
            PlanStrategy::InterleaveSorted,
            PlanStrategy::Push,
        ]
    }
}

/// In what order the `kor` operators are applied (§7.2: "applying the KOR
/// which contributes the highest score first is beneficial as it increases
/// the pruning threshold").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KorOrder {
    /// Keep the profile's order.
    #[default]
    AsGiven,
    /// Highest weight first (the paper's recommendation).
    HighestWeightFirst,
    /// Lowest weight first (the adversarial baseline for the ablation).
    LowestWeightFirst,
}

/// How the bottom query-evaluation operator finds matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Per-candidate indexed nested-loop matching (paper §6.4's pipelined
    /// indexed nested-loop joins).
    #[default]
    IndexedNestedLoop,
    /// Bulk sort-merge structural-join pre-filter, then exact matching of
    /// the survivors (see [`crate::structural`]).
    StructuralJoin,
}

/// Full plan specification.
#[derive(Debug, Clone, Copy)]
pub struct PlanSpec {
    /// Result size.
    pub k: usize,
    /// Pruning strategy.
    pub strategy: PlanStrategy,
    /// KOR application order.
    pub kor_order: KorOrder,
    /// Bottom evaluation mode.
    pub eval_mode: EvalMode,
    /// Collect per-operator row/time traces (`EXPLAIN ANALYZE`).
    pub trace: bool,
}

impl PlanSpec {
    /// Spec with the given `k` and strategy, KORs as given.
    pub fn new(k: usize, strategy: PlanStrategy) -> Self {
        PlanSpec {
            k,
            strategy,
            kor_order: KorOrder::AsGiven,
            eval_mode: EvalMode::IndexedNestedLoop,
            trace: false,
        }
    }
}

/// One stage of an assembled plan, recorded bottom-to-top while
/// [`assemble`] builds the operator chain. The executable operators are an
/// opaque [`BoxedOp`] chain; this parallel IR is what [`PlanShape::verify`]
/// checks *before* execution (DESIGN.md §9).
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Bottom candidate scan (`QueryEval`, whole-collection or per-shard).
    Scan,
    /// VOR attribute fetch (`vor`): `≺_V` is decidable above this stage.
    VorFetch,
    /// SR-contributed optional predicate join, adding at most `bound` to
    /// the answer's `S` score.
    SrJoin {
        /// Exact score ceiling of this predicate.
        bound: f64,
    },
    /// KOR join, adding at most `weight` to the answer's `K` score.
    KorJoin {
        /// The rule's weight.
        weight: f64,
    },
    /// Sort by the final ranking order.
    Sort,
    /// `topkPrune` placement with its exact configuration.
    Prune(TopkConfig),
}

/// The statically-checkable shape of an assembled plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanShape {
    /// Stages bottom-to-top (index 0 is the scan, last is the final prune).
    pub stages: Vec<Stage>,
    /// Result size every prune must agree on.
    pub k: usize,
    /// Worker sub-plan for parallel execution: with VORs present it must
    /// terminate in the ≺_V-sound *survivor* prune, never a positional cut
    /// (DESIGN.md §8).
    pub merge_safe: bool,
    /// Number of VORs in the rank context.
    pub vors: usize,
    /// Rank order is `V,K,S` (`≺_V` outranks `K`, so no prune may decide
    /// on `K` alone).
    pub vks: bool,
}

/// A structural soundness defect found by [`PlanShape::verify`]. `index`
/// fields are positions into [`PlanShape::stages`] (0 = bottom scan).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanVerifyError {
    /// No stages at all.
    Empty,
    /// The bottom stage is not the candidate scan.
    ScanNotAtBottom,
    /// More than one scan stage.
    MultipleScans,
    /// Wrong number of `vor` fetch stages for the rank context.
    VorFetchCount {
        /// Fetch stages required by the rank context (0 or 1).
        expected: usize,
        /// Fetch stages found.
        found: usize,
    },
    /// The top stage is not a `topkPrune`.
    MissingFinalPrune,
    /// Worker sub-plan (merge-safe, VORs present) ends in a positional cut
    /// instead of the ≺_V-sound survivor prune — a shard-local cut can
    /// drop answers that belong to the global top-k.
    MissingSurvivorPrune,
    /// Sequential plan whose top prune does not cut (`last` unset).
    FinalPruneNotLast,
    /// The top prune claims score can still be added above it.
    FinalPruneWithBounds,
    /// The top prune does not assume rank-sorted input.
    FinalPruneUnsorted,
    /// A mid-plan prune with the final cut flag set.
    MidPruneLast {
        /// Stage index.
        index: usize,
    },
    /// Two prunes with no scoring stage between them.
    AdjacentPrunes {
        /// Stage index of the upper prune.
        index: usize,
    },
    /// A prune cutting at a different `k` than the plan's.
    WrongK {
        /// Stage index.
        index: usize,
        /// The prune's `k`.
        found: usize,
        /// The plan's `k`.
        expected: usize,
    },
    /// A prune's bound admits less score than the stages above it can
    /// still add — it could discard answers that belong to the top-k.
    BoundTooLow {
        /// Stage index.
        index: usize,
        /// Which bound (`query_scorebound` or `kor_scorebound`).
        which: &'static str,
        /// The prune's bound.
        have: f64,
        /// Minimum sound value (sum of contributions above).
        need: f64,
    },
    /// Algorithm-3 placement: a prune claiming `kor_scorebound = 0` (all
    /// `K` known) sits below a KOR join that still adds weight.
    KPruneBeforeAllKors {
        /// Stage index.
        index: usize,
    },
    /// A prune claims sorted input (bulk pruning) without a sort
    /// immediately below it.
    SortedClaimWithoutSort {
        /// Stage index.
        index: usize,
    },
    /// A prune compares `≺_V` but no `vor` fetch runs below it.
    UseVWithoutFetchBelow {
        /// Stage index.
        index: usize,
    },
    /// Under the `V,K,S` rank order (or at the top with VORs present) a
    /// prune decides without `≺_V` — unsound, `K` alone cannot outrank.
    PruneIgnoresV {
        /// Stage index.
        index: usize,
    },
}

impl std::fmt::Display for PlanVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use PlanVerifyError as E;
        match self {
            E::Empty => write!(f, "plan has no stages"),
            E::ScanNotAtBottom => write!(f, "bottom stage is not the candidate scan"),
            E::MultipleScans => write!(f, "plan has more than one scan stage"),
            E::VorFetchCount { expected, found } => {
                write!(f, "expected {expected} vor fetch stage(s), found {found}")
            }
            E::MissingFinalPrune => write!(f, "top stage is not a topkPrune"),
            E::MissingSurvivorPrune => write!(
                f,
                "worker sub-plan must end in the ≺_V-sound survivor prune, not a positional cut"
            ),
            E::FinalPruneNotLast => write!(f, "final prune does not cut at k (`last` unset)"),
            E::FinalPruneWithBounds => {
                write!(f, "final prune claims score can still be added above it")
            }
            E::FinalPruneUnsorted => write!(f, "final prune does not assume sorted input"),
            E::MidPruneLast { index } => {
                write!(f, "stage {index}: mid-plan prune sets the final cut flag")
            }
            E::AdjacentPrunes { index } => {
                write!(f, "stage {index}: prune directly above another prune")
            }
            E::WrongK {
                index,
                found,
                expected,
            } => {
                write!(
                    f,
                    "stage {index}: prune cuts at k={found}, plan wants k={expected}"
                )
            }
            E::BoundTooLow {
                index,
                which,
                have,
                need,
            } => write!(
                f,
                "stage {index}: {which}={have} admits less than the {need} still addable above"
            ),
            E::KPruneBeforeAllKors { index } => write!(
                f,
                "stage {index}: Algorithm-3 K-prune (kor_scorebound=0) below an unapplied KOR"
            ),
            E::SortedClaimWithoutSort { index } => {
                write!(
                    f,
                    "stage {index}: prune claims sorted input without a sort below it"
                )
            }
            E::UseVWithoutFetchBelow { index } => {
                write!(
                    f,
                    "stage {index}: prune compares ≺_V but no vor fetch runs below it"
                )
            }
            E::PruneIgnoresV { index } => {
                write!(
                    f,
                    "stage {index}: prune ignores ≺_V although VORs outrank its key"
                )
            }
        }
    }
}

impl std::error::Error for PlanVerifyError {}

/// Bound-coverage slack: `assemble` computes `remaining` by repeated
/// subtraction while the verifier sums the suffix fresh, so the two can
/// differ by float rounding (never by a real weight).
const BOUND_EPS: f64 = 1e-9;

impl PlanShape {
    /// Check every static soundness invariant of the assembled shape.
    /// Returns the first defect found, bottom-up per category.
    pub fn verify(&self) -> Result<(), PlanVerifyError> {
        use PlanVerifyError as E;
        let n = self.stages.len();
        if n == 0 {
            return Err(E::Empty);
        }
        if self.stages[0] != Stage::Scan {
            return Err(E::ScanNotAtBottom);
        }
        if self.stages[1..].iter().any(|s| matches!(s, Stage::Scan)) {
            return Err(E::MultipleScans);
        }

        let fetches = self
            .stages
            .iter()
            .filter(|s| matches!(s, Stage::VorFetch))
            .count();
        let expected_fetches = usize::from(self.vors > 0);
        if fetches != expected_fetches {
            return Err(E::VorFetchCount {
                expected: expected_fetches,
                found: fetches,
            });
        }
        let vor_pos = self
            .stages
            .iter()
            .position(|s| matches!(s, Stage::VorFetch));

        // Top stage: the final prune (positional cut, or the survivor
        // prune for merge-safe worker plans with VORs).
        let top = n - 1;
        let Stage::Prune(top_cfg) = &self.stages[top] else {
            return Err(E::MissingFinalPrune);
        };
        let survivor_required = self.merge_safe && self.vors > 0;
        if survivor_required {
            if top_cfg.last || !top_cfg.use_v {
                return Err(E::MissingSurvivorPrune);
            }
        } else if !top_cfg.last {
            return Err(E::FinalPruneNotLast);
        }
        if top_cfg.query_scorebound != 0.0 || top_cfg.kor_scorebound != 0.0 {
            return Err(E::FinalPruneWithBounds);
        }
        if !top_cfg.sorted_input {
            return Err(E::FinalPruneUnsorted);
        }
        if self.vors > 0 && !top_cfg.use_v {
            return Err(E::PruneIgnoresV { index: top });
        }

        // Per-prune checks against the suffix strictly above each stage.
        let mut s_above = 0.0f64;
        let mut k_above = 0.0f64;
        let mut kors_above = 0usize; // with nonzero weight
        for i in (0..n).rev() {
            match &self.stages[i] {
                Stage::Prune(cfg) => {
                    let TopkConfig {
                        k,
                        query_scorebound,
                        kor_scorebound,
                        use_v,
                        sorted_input,
                        last,
                    } = cfg.clone();
                    let expected = self.k;
                    if k != expected {
                        return Err(E::WrongK {
                            index: i,
                            found: k,
                            expected,
                        });
                    }
                    if i < top && last {
                        return Err(E::MidPruneLast { index: i });
                    }
                    if kor_scorebound == 0.0 && kors_above > 0 {
                        return Err(E::KPruneBeforeAllKors { index: i });
                    }
                    if query_scorebound + BOUND_EPS < s_above {
                        return Err(E::BoundTooLow {
                            index: i,
                            which: "query_scorebound",
                            have: query_scorebound,
                            need: s_above,
                        });
                    }
                    if kor_scorebound + BOUND_EPS < k_above {
                        return Err(E::BoundTooLow {
                            index: i,
                            which: "kor_scorebound",
                            have: kor_scorebound,
                            need: k_above,
                        });
                    }
                    // `i >= 1` here: a prune at index 0 already failed the
                    // scan-at-bottom check.
                    match &self.stages[i - 1] {
                        Stage::Prune(_) => return Err(E::AdjacentPrunes { index: i }),
                        Stage::Sort => {}
                        _ if sorted_input => return Err(E::SortedClaimWithoutSort { index: i }),
                        _ => {}
                    }
                    if use_v && self.vors > 0 && !matches!(vor_pos, Some(p) if p < i) {
                        return Err(E::UseVWithoutFetchBelow { index: i });
                    }
                    if self.vks && self.vors > 0 && !use_v {
                        return Err(E::PruneIgnoresV { index: i });
                    }
                }
                Stage::SrJoin { bound } => s_above += bound,
                Stage::KorJoin { weight } => {
                    k_above += weight;
                    if *weight > 0.0 {
                        kors_above += 1;
                    }
                }
                Stage::Scan | Stage::VorFetch | Stage::Sort => {}
            }
        }
        Ok(())
    }
}

/// An executable plan.
pub struct Plan {
    root: BoxedOp,
    traces: Option<TraceRegistry>,
    shape: PlanShape,
}

impl Plan {
    /// Run to completion, returning the top-k answers and the counters.
    pub fn execute(mut self, db: &Database) -> (Vec<crate::answer::Answer>, ExecStats) {
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        while let Some(a) = self.root.next(db, &mut stats) {
            out.push(a);
        }
        stats.emitted = out.len() as u64;
        (out, stats)
    }

    /// Like [`Plan::execute`], additionally returning the rendered
    /// per-operator trace (empty string when the spec disabled tracing).
    pub fn execute_analyzed(
        self,
        db: &Database,
    ) -> (Vec<crate::answer::Answer>, ExecStats, String) {
        let traces = self.traces.clone();
        let (out, stats) = self.execute(db);
        let report = traces.map(|t| crate::trace::render(&t)).unwrap_or_default();
        (out, stats, report)
    }

    /// Operator-tree description, top-down.
    pub fn explain(&self) -> String {
        self.root.describe()
    }

    /// The statically-checkable stage list recorded during assembly.
    pub fn shape(&self) -> &PlanShape {
        &self.shape
    }

    /// Statically check the plan's soundness invariants (see
    /// [`PlanShape::verify`]); cheap, runs before execution.
    pub fn verify(&self) -> Result<(), PlanVerifyError> {
        self.shape.verify()
    }
}

/// Build a plan for the prepared `matcher` under `kors` + `rank` (VORs and
/// rank order), per `spec`.
pub fn build_plan(
    db: &Database,
    matcher: Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: Arc<RankContext>,
    spec: PlanSpec,
) -> Plan {
    let source: BoxedOp = Box::new(QueryEval::with_mode(Arc::clone(&matcher), spec.eval_mode));
    assemble(db, source, matcher, kors, rank, spec, false)
}

/// Build the merge-safe (per-shard) variant of `spec`'s plan: identical to
/// [`build_plan`] except that, when VORs are in play, the final stage is a
/// *survivor* prune instead of a positional top-k cut — the form whose
/// shard-local outputs [`crate::par::merge_survivors`] can recombine into
/// the exact global top-k (see [`crate::par`] for the soundness argument).
/// This is the plan a sharded engine runs against each doc-range segment.
pub fn build_merge_safe_plan(
    db: &Database,
    matcher: Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: Arc<RankContext>,
    spec: PlanSpec,
) -> Plan {
    let source: BoxedOp = Box::new(QueryEval::with_mode(Arc::clone(&matcher), spec.eval_mode));
    assemble(db, source, matcher, kors, rank, spec, true)
}

/// Assemble the operator tree above an arbitrary `source` scan.
///
/// `merge_safe` builds the per-shard variant of the plan for parallel
/// execution: when VORs are in play the final prune keeps *every* answer
/// not certainly outranked by `k` others instead of cutting at position
/// `k` — `≺_V` layering is set-dependent, so a shard-local positional cut
/// could drop an answer that belongs to the global top-k. The shard
/// survivor sets can then be merged and re-cut exactly (see
/// [`crate::par`]).
pub(crate) fn assemble(
    db: &Database,
    source: BoxedOp,
    matcher: Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: Arc<RankContext>,
    spec: PlanSpec,
    merge_safe: bool,
) -> Plan {
    let k = spec.k;
    let registry = spec.trace.then(new_registry);
    let wrap = |op: BoxedOp, label: String| -> BoxedOp {
        match &registry {
            Some(r) => traced(op, label, r),
            None => op,
        }
    };
    let mut op: BoxedOp = wrap(source, "QueryEval".to_string());
    // The stage list mirrors the operator chain bottom-to-top; it is the
    // IR that `PlanShape::verify` checks before execution.
    let mut stages: Vec<Stage> = vec![Stage::Scan];
    let mid_cfg =
        |query_scorebound: f64, kor_scorebound: f64, use_v: bool, sorted_input: bool| TopkConfig {
            k,
            query_scorebound,
            kor_scorebound,
            use_v,
            sorted_input,
            last: false,
        };

    // Optional (SR-contributed) keyword predicates and their exact bounds.
    let optional = matcher.optional_keywords();
    let sr_bound: f64 = optional.iter().map(|p| p.bound).sum();
    let kor_total: f64 = kors.iter().map(|r| r.weight).sum();

    // Under the V,K,S ranking order, `≺_V` has top priority, so no prune
    // can fire before the VOR attributes are known: fetch them at the
    // bottom. Under K,V,S the fetch can wait until after the kors (the
    // paper's plan shape), because mid-plan prunes decide on K alone.
    let vor_at_bottom = !rank.vors.is_empty() && rank.order == pimento_profile::RankOrder::Vks;
    if vor_at_bottom {
        op = Box::new(VorFetch::new(op, db, &rank));
        op = wrap(op, "vor(bottom)".to_string());
        stages.push(Stage::VorFetch);
    }
    let use_v_mid = vor_at_bottom;

    // PtpkP: prune at the very bottom, before the SR joins and kors, with
    // the full remaining bounds.
    if spec.strategy == PlanStrategy::Push {
        let cfg = mid_cfg(sr_bound, kor_total, use_v_mid, false);
        stages.push(Stage::Prune(cfg.clone()));
        op = prune(op, &rank, cfg);
        op = wrap(op, "topkPrune(bottom)".to_string());
    }

    for phrase in optional {
        let label = format!("SrPredJoin({})", phrase.describe());
        stages.push(Stage::SrJoin {
            bound: phrase.bound,
        });
        op = Box::new(SrPredJoin::new(op, Arc::clone(&matcher), phrase));
        op = wrap(op, label);
    }

    // PtpkP: prune again once all S contributions are in.
    if spec.strategy == PlanStrategy::Push && sr_bound > 0.0 {
        let cfg = mid_cfg(0.0, kor_total, use_v_mid, false);
        stages.push(Stage::Prune(cfg.clone()));
        op = prune(op, &rank, cfg);
        op = wrap(op, "topkPrune(post-SR)".to_string());
    }

    // Apply kors in the configured order, interleaving prunes per strategy.
    let mut ordered: Vec<KeywordOrderingRule> = kors.to_vec();
    match spec.kor_order {
        KorOrder::AsGiven => {}
        KorOrder::HighestWeightFirst => {
            ordered.sort_by(|a, b| crate::rank::cmp_f64_desc(a.weight, b.weight))
        }
        KorOrder::LowestWeightFirst => {
            ordered.sort_by(|a, b| crate::rank::cmp_f64_desc(b.weight, a.weight))
        }
    }
    let mut remaining = kor_total;
    for kor in ordered {
        remaining -= kor.weight;
        let kor_label = format!("kor[{}]", kor.id);
        stages.push(Stage::KorJoin { weight: kor.weight });
        op = Box::new(KorJoin::new(op, db, kor));
        op = wrap(op, kor_label.clone());
        match spec.strategy {
            PlanStrategy::Naive => {}
            PlanStrategy::InterleaveUnsorted | PlanStrategy::Push => {
                let cfg = mid_cfg(0.0, remaining, use_v_mid, false);
                stages.push(Stage::Prune(cfg.clone()));
                op = prune(op, &rank, cfg);
                op = wrap(op, format!("topkPrune(after {kor_label})"));
            }
            PlanStrategy::InterleaveSorted => {
                op = Box::new(Sort::new(op, Arc::clone(&rank)));
                op = wrap(op, format!("sort(after {kor_label})"));
                stages.push(Stage::Sort);
                // Bulk pruning needs a prune-monotone sort order; V
                // dominance is not monotone, so sorted early-exit is only
                // claimed when V does not participate mid-plan.
                let cfg = mid_cfg(0.0, remaining, use_v_mid, !use_v_mid);
                stages.push(Stage::Prune(cfg.clone()));
                op = prune(op, &rank, cfg);
                op = wrap(op, format!("topkPrune(sorted, after {kor_label})"));
            }
        }
    }

    // vor (unless fetched at the bottom), final sort, final topkPrune —
    // common to all strategies.
    if !rank.vors.is_empty() && !vor_at_bottom {
        op = Box::new(VorFetch::new(op, db, &rank));
        op = wrap(op, "vor".to_string());
        stages.push(Stage::VorFetch);
    }
    op = Box::new(Sort::new(op, Arc::clone(&rank)));
    op = wrap(op, "sort(final)".to_string());
    stages.push(Stage::Sort);
    let final_cfg = if merge_safe && !rank.vors.is_empty() {
        // Shard-local survivor prune: drop only answers that `k` others
        // certainly outrank (the pairwise check is set-independent, so
        // anything dropped here is provably outside the global top-k).
        // `use_v: true` also disables the sorted bulk-prune early exit,
        // which a positional argument under `≺_V` cannot justify.
        TopkConfig {
            k,
            query_scorebound: 0.0,
            kor_scorebound: 0.0,
            use_v: true,
            sorted_input: true,
            last: false,
        }
    } else {
        // Without VORs the final order is total, so a shard's own top-k is
        // exact and the sequential cut applies unchanged.
        TopkConfig::final_prune(k)
    };
    stages.push(Stage::Prune(final_cfg.clone()));
    let shape = PlanShape {
        stages,
        k,
        merge_safe,
        vors: rank.vors.len(),
        vks: rank.order == pimento_profile::RankOrder::Vks,
    };
    // Every assembled plan must pass its own static verifier — a failure
    // here is an assembly bug, caught in debug builds before any query
    // runs on the broken shape.
    if cfg!(debug_assertions) {
        if let Err(err) = shape.verify() {
            debug_assert!(false, "assembled an unsound plan: {err}");
        }
    }
    op = Box::new(TopkPrune::new(op, rank, final_cfg));
    op = wrap(op, "topkPrune(final)".to_string());
    Plan {
        root: op,
        traces: registry,
        shape,
    }
}

fn prune(input: BoxedOp, rank: &Arc<RankContext>, cfg: TopkConfig) -> BoxedOp {
    Box::new(TopkPrune::new(input, Arc::clone(rank), cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;
    use pimento_profile::{PersonalizedQuery, RankOrder, ValueOrderingRule};
    use pimento_tpq::parse_tpq;

    fn db() -> Database {
        let mut coll = Collection::new();
        let mut xml = String::from("<people>");
        for i in 0..40 {
            let gender = if i % 2 == 0 { "male" } else { "female" };
            let state = if i % 3 == 0 {
                "United States"
            } else {
                "Elsewhere"
            };
            let edu = if i % 5 == 0 { "College" } else { "School" };
            let city = if i % 7 == 0 { "Phoenix" } else { "Springfield" };
            let age = 20 + (i % 20);
            xml.push_str(&format!(
                "<person><profile>{gender} {state} {edu} {city}</profile><age>{age}</age><business>{}</business></person>",
                if i % 2 == 0 { "Yes" } else { "No" }
            ));
        }
        xml.push_str("</people>");
        coll.add_xml(&xml).unwrap();
        Database::index_plain(coll)
    }

    fn kors() -> Vec<KeywordOrderingRule> {
        vec![
            KeywordOrderingRule::weighted("pi1", "person", "male", 1.0),
            KeywordOrderingRule::weighted("pi2", "person", "United States", 1.0),
            KeywordOrderingRule::weighted("pi3", "person", "College", 1.0),
            KeywordOrderingRule::weighted("pi4", "person", "Phoenix", 1.0),
        ]
    }

    fn answers_key(answers: &[crate::answer::Answer]) -> Vec<(u32, u32)> {
        answers.iter().map(|a| a.tiebreak()).collect()
    }

    #[test]
    fn all_strategies_agree_on_topk() {
        let db = db();
        let q = parse_tpq(r#"//person[ftcontains(./business, "Yes")]"#).unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(
            vec![ValueOrderingRule::prefer_value(
                "pi5", "person", "age", "33",
            )],
            RankOrder::Kvs,
        );
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for strategy in PlanStrategy::all() {
            let plan = build_plan(
                &db,
                Arc::clone(&matcher),
                &kors(),
                Arc::clone(&rank),
                PlanSpec::new(5, strategy),
            );
            let (out, _) = plan.execute(&db);
            assert_eq!(out.len(), 5, "{}", strategy.paper_name());
            let key = answers_key(&out);
            match &reference {
                Some(r) => assert_eq!(&key, r, "{} differs", strategy.paper_name()),
                None => reference = Some(key),
            }
        }
    }

    #[test]
    fn push_prunes_more_than_naive() {
        let db = db();
        let q = parse_tpq("//person").unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let naive = build_plan(
            &db,
            Arc::clone(&matcher),
            &kors(),
            Arc::clone(&rank),
            PlanSpec::new(3, PlanStrategy::Naive),
        );
        let (_, naive_stats) = naive.execute(&db);
        let push = build_plan(
            &db,
            Arc::clone(&matcher),
            &kors(),
            Arc::clone(&rank),
            PlanSpec::new(3, PlanStrategy::Push),
        );
        let (_, push_stats) = push.execute(&db);
        assert_eq!(naive_stats.pruned, 0, "naive never prunes mid-plan");
        assert!(push_stats.pruned > 0, "push prunes mid-plan");
    }

    #[test]
    fn kor_order_affects_plan_shape_not_results() {
        let db = db();
        let q = parse_tpq("//person").unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut weighted = kors();
        weighted[3] = KeywordOrderingRule::weighted("pi4", "person", "Phoenix", 5.0);
        let mut outputs = Vec::new();
        for order in [
            KorOrder::AsGiven,
            KorOrder::HighestWeightFirst,
            KorOrder::LowestWeightFirst,
        ] {
            let spec = PlanSpec {
                kor_order: order,
                ..PlanSpec::new(4, PlanStrategy::Push)
            };
            let plan = build_plan(
                &db,
                Arc::clone(&matcher),
                &weighted,
                Arc::clone(&rank),
                spec,
            );
            let (out, _) = plan.execute(&db);
            outputs.push(answers_key(&out));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn eval_modes_agree() {
        let db = db();
        let q = parse_tpq(r#"//person[ftcontains(., "College")]"#).unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut outs = Vec::new();
        for mode in [EvalMode::IndexedNestedLoop, EvalMode::StructuralJoin] {
            let spec = PlanSpec {
                eval_mode: mode,
                ..PlanSpec::new(5, PlanStrategy::Push)
            };
            let plan = build_plan(&db, Arc::clone(&matcher), &kors(), Arc::clone(&rank), spec);
            let (out, _) = plan.execute(&db);
            outs.push(answers_key(&out));
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn explain_mentions_operators() {
        let db = db();
        let q = parse_tpq("//person").unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let plan = build_plan(
            &db,
            matcher,
            &kors()[..1],
            rank,
            PlanSpec::new(2, PlanStrategy::Push),
        );
        let text = plan.explain();
        assert!(text.contains("topkPrune"), "{text}");
        assert!(text.contains("kor[pi1]"), "{text}");
        assert!(text.contains("QueryEval"), "{text}");
    }

    #[test]
    fn empty_kors_and_vors_degenerates_cleanly() {
        let db = db();
        let q = parse_tpq(r#"//person[ftcontains(., "College")]"#).unwrap();
        let matcher = Arc::new(Matcher::new(&db, PersonalizedQuery::unpersonalized(q)));
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        for strategy in PlanStrategy::all() {
            let plan = build_plan(
                &db,
                Arc::clone(&matcher),
                &[],
                Arc::clone(&rank),
                PlanSpec::new(3, strategy),
            );
            let (out, _) = plan.execute(&db);
            assert_eq!(out.len(), 3);
            // Ranked by S descending.
            assert!(out[0].s >= out[1].s && out[1].s >= out[2].s);
        }
    }
}

/// Heuristic plan choice: inspect the query and profile shape and pick the
/// strategy, evaluation mode, and KOR order a reasonable optimizer would.
///
/// * Strategy: `PtpkP` whenever KORs exist (it never lost to the
///   alternatives in the paper's Fig. 7 or our reproduction); plain
///   `NtpkP` otherwise — with no kors the interleaved prunes have nothing
///   to do and the final sorted prune is already exact.
/// * Evaluation mode: the structural-join pre-filter pays off when the
///   required pattern has structure to join on (more than one required
///   node) — a single-node pattern degenerates to the same tag scan.
/// * KOR order: highest contribution first (§7.2's recommendation).
pub fn choose_spec(matcher: &Matcher, kors: &[KeywordOrderingRule], k: usize) -> PlanSpec {
    let pq = matcher.personalized();
    let required_nodes = pq
        .tpq
        .node_ids()
        .filter(|&n| !pq.node_is_optional(n))
        .count();
    PlanSpec {
        k,
        strategy: if kors.is_empty() {
            PlanStrategy::Naive
        } else {
            PlanStrategy::Push
        },
        kor_order: KorOrder::HighestWeightFirst,
        eval_mode: if required_nodes > 1 {
            EvalMode::StructuralJoin
        } else {
            EvalMode::IndexedNestedLoop
        },
        trace: false,
    }
}

#[cfg(test)]
mod choose_tests {
    use super::*;
    use pimento_index::Collection;
    use pimento_profile::PersonalizedQuery;
    use pimento_tpq::parse_tpq;

    fn matcher_for(q: &str) -> (Database, Arc<Matcher>) {
        let mut coll = Collection::new();
        coll.add_xml("<a><b><c>x</c></b></a>").unwrap();
        let db = Database::index_plain(coll);
        let m = Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq(q).unwrap()),
        ));
        (db, m)
    }

    #[test]
    fn auto_uses_push_only_with_kors() {
        let (_, m) = matcher_for("//b");
        let none = choose_spec(&m, &[], 5);
        assert_eq!(none.strategy, PlanStrategy::Naive);
        let kors = vec![KeywordOrderingRule::new("k", "b", "x")];
        let some = choose_spec(&m, &kors, 5);
        assert_eq!(some.strategy, PlanStrategy::Push);
        assert_eq!(some.kor_order, KorOrder::HighestWeightFirst);
    }

    #[test]
    fn auto_uses_structural_join_for_twigs() {
        let (_, single) = matcher_for("//b");
        assert_eq!(
            choose_spec(&single, &[], 5).eval_mode,
            EvalMode::IndexedNestedLoop
        );
        let (_, twig) = matcher_for("//a/b[./c]");
        assert_eq!(
            choose_spec(&twig, &[], 5).eval_mode,
            EvalMode::StructuralJoin
        );
    }
}
