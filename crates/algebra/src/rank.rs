//! Answer ranking: the `K, V, S` / `V, K, S` orders of paper §3.3.
//!
//! `K` and `S` are numeric (descending). `V` is the strict partial order
//! `≺_V` induced by the value-based ordering rules; inside a ranking it is
//! realized by **dominance layering**: within a tie group, answers no
//! other remaining answer is preferred to form layer 0, then layer 1, and
//! so on — a deterministic linear extension of `≺_V`. Ties and
//! incomparabilities fall through to the next component, and `(doc,
//! start)` breaks final ties so every plan produces the same output.

use crate::answer::{Answer, VorKey};
use crate::context::ExecStats;
use pimento_profile::{AttrValue, CompiledVors, RankOrder, ValueOrderingRule, VorOutcome};
use std::cmp::Ordering;
use std::sync::Arc;

/// Shared ranking context: the VOR set (both as source rules and compiled
/// into id-based tables) and the configured rank order.
#[derive(Debug, Clone, Default)]
pub struct RankContext {
    /// Value-based ordering rules (with priorities) — the source form,
    /// kept for plan explanation and result annotation.
    pub vors: Vec<ValueOrderingRule>,
    /// `K,V,S` or `V,K,S`.
    pub order: RankOrder,
    /// The rules compiled for slot/id-based `≺_V` — see
    /// [`pimento_profile::CompiledVors`].
    compiled: CompiledVors,
}

impl RankContext {
    /// Context with no VORs (V compares Equal everywhere).
    pub fn new(vors: Vec<ValueOrderingRule>, order: RankOrder) -> Arc<Self> {
        let compiled = CompiledVors::compile(&vors);
        Arc::new(RankContext {
            vors,
            order,
            compiled,
        })
    }

    /// Sorted, deduplicated attribute names the VOR set reads; slot `i`
    /// of a [`VorKey`] holds the value of `vor_attrs()[i]`.
    pub fn vor_attrs(&self) -> &[String] {
        self.compiled.attrs()
    }

    /// Compile an answer's `≺_V` key. `get(slot, attr)` supplies the
    /// answer's value for each attribute in [`Self::vor_attrs`] order.
    pub fn make_key(&self, tag: &str, get: impl FnMut(usize, &str) -> Option<AttrValue>) -> VorKey {
        self.compiled.make_key(tag, get)
    }

    /// Does `key` carry a value for `attr`?
    pub fn key_has(&self, key: &VorKey, attr: &str) -> bool {
        self.compiled.key_has(key, attr)
    }

    /// `≺_V` on two answers. Answers whose VOR key has not been fetched
    /// yet compare Equal when there are no rules, Incomparable otherwise.
    pub fn vor_compare(&self, a: &Answer, b: &Answer, stats: &mut ExecStats) -> VorOutcome {
        if self.vors.is_empty() {
            return VorOutcome::Equal;
        }
        stats.vor_comparisons += 1;
        match (&a.vor, &b.vor) {
            (Some(ka), Some(kb)) => self.compiled.compare(ka, kb),
            _ => VorOutcome::Incomparable,
        }
    }

    /// Full-materialization ranking: order `answers` by the configured
    /// order, deterministically.
    pub fn rank(&self, answers: &mut Vec<Answer>, stats: &mut ExecStats) {
        match self.order {
            RankOrder::Kvs => {
                sort_numeric_desc(answers, |a| a.k);
                // Layer V within K-tie groups, then S within layers.
                let mut out = Vec::with_capacity(answers.len());
                for group in split_groups(std::mem::take(answers), |a| a.k) {
                    out.extend(self.layer_and_sort_s(group, stats));
                }
                *answers = out;
            }
            RankOrder::Vks => {
                // Layer V over everything, then K desc, then S desc.
                let layered = self.layer(std::mem::take(answers), stats);
                let mut out = Vec::new();
                for mut layer in layered {
                    layer.sort_by(|a, b| {
                        cmp_f64_desc(a.k, b.k)
                            .then_with(|| cmp_f64_desc(a.s, b.s))
                            .then_with(|| a.tiebreak().cmp(&b.tiebreak()))
                    });
                    out.extend(layer);
                }
                *answers = out;
            }
        }
    }

    /// Mid-plan sort by current `(K, V, S)` — what `S-ILtpkP` inserts
    /// before each interleaved prune.
    pub fn sort_current(&self, answers: &mut Vec<Answer>, stats: &mut ExecStats) {
        self.rank(answers, stats);
    }

    /// Chomicki's **winnow** (paper §2's qualitative-preference operator):
    /// keep only the `≺_V`-maximal answers — those no other answer is
    /// strictly preferred to — ordered by the remaining components.
    pub fn winnow(&self, answers: Vec<Answer>, stats: &mut ExecStats) -> Vec<Answer> {
        let mut layers = self.layer(answers, stats);
        let mut top = if layers.is_empty() {
            Vec::new()
        } else {
            layers.swap_remove(0)
        };
        top.sort_by(|a, b| {
            cmp_f64_desc(a.k, b.k)
                .then_with(|| cmp_f64_desc(a.s, b.s))
                .then_with(|| a.tiebreak().cmp(&b.tiebreak()))
        });
        top
    }

    fn layer_and_sort_s(&self, group: Vec<Answer>, stats: &mut ExecStats) -> Vec<Answer> {
        let mut out = Vec::with_capacity(group.len());
        for mut layer in self.layer(group, stats) {
            layer.sort_by(|a, b| {
                cmp_f64_desc(a.s, b.s).then_with(|| a.tiebreak().cmp(&b.tiebreak()))
            });
            out.extend(layer);
        }
        out
    }

    /// Dominance layering: repeatedly peel off the answers that no
    /// remaining answer is strictly preferred to.
    fn layer(&self, mut pool: Vec<Answer>, stats: &mut ExecStats) -> Vec<Vec<Answer>> {
        if self.vors.is_empty() || pool.len() <= 1 {
            return vec![pool];
        }
        let mut layers = Vec::new();
        while !pool.is_empty() {
            // Decide dominance with an immutable pairwise pass, then move
            // the answers out of the pool — no per-round clones.
            let mut dominated = vec![false; pool.len()];
            'next: for i in 0..pool.len() {
                for j in 0..pool.len() {
                    let (Some(pj), Some(pi)) = (pool.get(j), pool.get(i)) else {
                        continue;
                    };
                    if i != j && self.vor_compare(pj, pi, stats) == VorOutcome::PreferA {
                        if let Some(d) = dominated.get_mut(i) {
                            *d = true;
                        }
                        continue 'next;
                    }
                }
            }
            let mut maximal = Vec::new();
            let mut rest = Vec::new();
            for (a, dom) in pool.into_iter().zip(dominated) {
                if dom {
                    rest.push(a);
                } else {
                    maximal.push(a);
                }
            }
            if maximal.is_empty() {
                // Defensive: a preference cycle (only possible if static
                // analysis was skipped on an ambiguous profile) — emit the
                // remainder as one layer rather than looping forever.
                layers.push(rest);
                break;
            }
            layers.push(maximal);
            pool = rest;
        }
        layers
    }
}

/// Descending f64 comparison with total order semantics (NaN never occurs:
/// scores are sums of bounded non-negative terms).
pub fn cmp_f64_desc(a: f64, b: f64) -> Ordering {
    b.partial_cmp(&a).unwrap_or(Ordering::Equal)
}

fn sort_numeric_desc(answers: &mut [Answer], key: impl Fn(&Answer) -> f64) {
    answers
        .sort_by(|a, b| cmp_f64_desc(key(a), key(b)).then_with(|| a.tiebreak().cmp(&b.tiebreak())));
}

/// Split a sorted-by-key vector into maximal runs of equal key.
fn split_groups(answers: Vec<Answer>, key: impl Fn(&Answer) -> f64) -> Vec<Vec<Answer>> {
    let mut groups: Vec<Vec<Answer>> = Vec::new();
    for a in answers {
        match groups.last_mut() {
            Some(g) if g.last().is_some_and(|last| key(last) == key(&a)) => g.push(a),
            _ => groups.push(vec![a]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::{DocId, ElemEntry};
    use pimento_xml::NodeId;
    use std::collections::HashMap;

    fn mk(
        ctx: &RankContext,
        start: u32,
        s: f64,
        k: f64,
        color: Option<&str>,
        mileage: Option<f64>,
    ) -> Answer {
        let elem = ElemEntry {
            doc: DocId(0),
            node: NodeId(start),
            start,
            end: start + 1,
            level: 1,
        };
        let mut fields = HashMap::new();
        if let Some(c) = color {
            fields.insert("color".to_string(), AttrValue::Str(c.to_string()));
        }
        if let Some(m) = mileage {
            fields.insert("mileage".to_string(), AttrValue::Num(m));
        }
        let key = ctx.make_key("car", |_, attr| fields.get(attr).cloned());
        Answer {
            elem,
            s,
            k,
            vor: Some(Arc::new(key)),
        }
    }

    fn red_rule() -> ValueOrderingRule {
        ValueOrderingRule::prefer_value("pi1", "car", "color", "red")
    }

    #[test]
    fn kvs_orders_k_first() {
        let ctx = RankContext::new(vec![], RankOrder::Kvs);
        let mut ans = vec![
            mk(&ctx, 1, 0.9, 0.0, None, None),
            mk(&ctx, 2, 0.1, 1.0, None, None),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 2, "higher K wins despite lower S");
    }

    #[test]
    fn kvs_v_breaks_k_ties() {
        let ctx = RankContext::new(vec![red_rule()], RankOrder::Kvs);
        let mut ans = vec![
            mk(&ctx, 1, 0.9, 1.0, Some("blue"), None),
            mk(&ctx, 2, 0.1, 1.0, Some("red"), None),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 2, "red preferred at equal K");
        assert!(st.vor_comparisons > 0);
    }

    #[test]
    fn s_breaks_remaining_ties() {
        let ctx = RankContext::new(vec![red_rule()], RankOrder::Kvs);
        let mut ans = vec![
            mk(&ctx, 1, 0.2, 0.0, Some("red"), None),
            mk(&ctx, 2, 0.8, 0.0, Some("red"), None),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 2);
    }

    #[test]
    fn vks_orders_v_before_k() {
        let ctx = RankContext::new(vec![red_rule()], RankOrder::Vks);
        let mut ans = vec![
            mk(&ctx, 1, 0.0, 5.0, Some("blue"), None),
            mk(&ctx, 2, 0.0, 0.0, Some("red"), None),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 2, "V precedes K in V,K,S");
        // And under K,V,S the blue car with K=5 wins.
        let ctx2 = RankContext::new(vec![red_rule()], RankOrder::Kvs);
        ctx2.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 1);
    }

    #[test]
    fn layering_handles_incomparables() {
        // red preferred; two non-red incomparable answers fall in layer 0
        // together with... no: red dominates nothing? π1: red ≺ non-red,
        // so red answers dominate non-red ones.
        let ctx = RankContext::new(vec![red_rule()], RankOrder::Kvs);
        let mut ans = vec![
            mk(&ctx, 1, 0.9, 0.0, Some("blue"), None),
            mk(&ctx, 2, 0.5, 0.0, Some("red"), None),
            mk(&ctx, 3, 0.7, 0.0, Some("green"), None),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 2, "red in layer 0");
        assert_eq!(ans[1].elem.start, 1, "non-red ordered by S within layer 1");
        assert_eq!(ans[2].elem.start, 3);
    }

    #[test]
    fn deterministic_tiebreak() {
        let ctx = RankContext::new(vec![], RankOrder::Kvs);
        let mut ans = vec![
            mk(&ctx, 2, 0.5, 0.0, None, None),
            mk(&ctx, 1, 0.5, 0.0, None, None),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 1, "document order breaks exact ties");
    }

    #[test]
    fn multi_priority_layering() {
        // priority 0: lower mileage; priority 1: red.
        let r1 = ValueOrderingRule::prefer_smaller("m", "car", "mileage").with_priority(0);
        let r2 = red_rule().with_priority(1);
        let ctx = RankContext::new(vec![r1, r2], RankOrder::Kvs);
        let mut ans = vec![
            mk(&ctx, 1, 0.0, 0.0, Some("red"), Some(90.0)),
            mk(&ctx, 2, 0.0, 0.0, Some("blue"), Some(10.0)),
            mk(&ctx, 3, 0.0, 0.0, Some("red"), Some(10.0)),
        ];
        let mut st = ExecStats::default();
        ctx.rank(&mut ans, &mut st);
        assert_eq!(ans[0].elem.start, 3, "low mileage + red");
        assert_eq!(ans[1].elem.start, 2, "low mileage blue");
        assert_eq!(ans[2].elem.start, 1, "high mileage last");
    }

    #[test]
    fn unfetched_vor_keys_are_incomparable() {
        let ctx = RankContext::new(vec![red_rule()], RankOrder::Kvs);
        let mut a = mk(&ctx, 1, 0.0, 0.0, Some("red"), None);
        a.vor = None;
        let b = mk(&ctx, 2, 0.0, 0.0, Some("blue"), None);
        let mut st = ExecStats::default();
        assert_eq!(ctx.vor_compare(&a, &b, &mut st), VorOutcome::Incomparable);
    }
}
