//! Bulk structural-join evaluation: a sort-merge alternative to the
//! per-candidate indexed nested-loop matcher.
//!
//! The classical XML join literature (Stack-Tree, structural joins over
//! region-encoded element lists) evaluates a tree pattern bottom-up with
//! merge-based **semijoins** over the per-tag element lists, exploiting
//! that the lists are sorted by `(doc, start)` and that regions are
//! well-nested. This module implements that pipeline as a *pre-filter*:
//!
//! 1. per pattern node, list elements passing the node's required local
//!    predicates;
//! 2. bottom-up, semijoin each node's list with its required children
//!    (`pc` via parent pointers, `ad` via an O(n+m) merge);
//! 3. top-down along the root path, keep only elements with a surviving
//!    ancestor chain;
//! 4. hand the surviving distinguished-node candidates to the exact
//!    [`Matcher`] for verification and scoring.
//!
//! Because the pre-filter is a superset of the true answers (it decomposes
//! the twig into edge semijoins without enforcing a single coherent
//! embedding — the classical precision/cost trade-off), the matcher pass
//! keeps the result exact while the joins slash the candidate count.

use crate::context::Database;
use crate::eval::Matcher;
use pimento_index::{ft_all, ft_contains, ElemEntry, RangeOp};
use pimento_tpq::{Axis, Predicate, RelOp, TagTest, TpqNodeId, Value};
use std::collections::HashSet;

/// Compute the pre-filtered candidate list for the matcher's distinguished
/// node, sorted by `(doc, start)`.
pub fn prefilter_candidates(db: &Database, matcher: &Matcher) -> Vec<ElemEntry> {
    let pq = matcher.personalized();
    let tpq = &pq.tpq;

    // Recursive bottom-up satisfaction lists, memoized per node.
    fn sat(
        db: &Database,
        matcher: &Matcher,
        node: TpqNodeId,
        memo: &mut Vec<Option<Vec<ElemEntry>>>,
    ) -> Vec<ElemEntry> {
        if let Some(Some(v)) = memo.get(node.0 as usize) {
            return v.clone();
        }
        let pq = matcher.personalized();
        let tpq = &pq.tpq;
        let mut list = base_list(db, matcher, node);
        for &child in &tpq.node(node).children {
            if pq.node_is_optional(child) {
                continue;
            }
            let child_sat = sat(db, matcher, child, memo);
            list = match tpq.node(child).axis {
                Axis::Descendant => keep_ancestors_of(&list, &child_sat),
                Axis::Child => keep_parents_of(db, &list, &child_sat),
            };
            if list.is_empty() {
                break;
            }
        }
        if let Some(slot) = memo.get_mut(node.0 as usize) {
            *slot = Some(list.clone());
        }
        list
    }

    let mut memo: Vec<Option<Vec<ElemEntry>>> = vec![None; tpq.len()];
    // Root-to-distinguished path.
    let mut path = vec![tpq.distinguished()];
    let mut cursor = tpq.distinguished();
    while let Some(p) = tpq.node(cursor).parent {
        path.push(p);
        cursor = p;
    }
    path.reverse();
    let Some(&root) = path.first() else {
        return Vec::new();
    };

    // Top-down chain filtering.
    let mut current = sat(db, matcher, root, &mut memo);
    // Root anchoring: a Child-anchored root must be the document root.
    if tpq.node(root).axis == Axis::Child {
        current.retain(|e| db.coll.doc(e.doc).root() == e.node);
    }
    for pair in path.windows(2) {
        let &[_, child_node] = pair else { continue };
        let child_sat = sat(db, matcher, child_node, &mut memo);
        current = match tpq.node(child_node).axis {
            Axis::Descendant => keep_descendants_of(&child_sat, &current),
            Axis::Child => keep_children_of(db, &child_sat, &current),
        };
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Elements matching `node`'s tag test and required local predicates.
/// When the node carries a required numeric comparison, the value index
/// seeds the list with a range scan instead of the full tag list.
fn base_list(db: &Database, matcher: &Matcher, node: TpqNodeId) -> Vec<ElemEntry> {
    let pq = matcher.personalized();
    let tpq_node = pq.tpq.node(node);
    let base: Vec<ElemEntry> = match &tpq_node.tag {
        TagTest::Name(tag) => match db.coll.tag(tag) {
            Some(sym) => {
                let range_seed = tpq_node.predicates.iter().enumerate().find_map(|(i, p)| {
                    if pq.pred_is_optional(node, i) {
                        return None;
                    }
                    let Predicate::Compare {
                        op,
                        value: Value::Num(c),
                    } = p
                    else {
                        return None;
                    };
                    let op = match op {
                        RelOp::Lt => RangeOp::Lt,
                        RelOp::Le => RangeOp::Le,
                        RelOp::Gt => RangeOp::Gt,
                        RelOp::Ge => RangeOp::Ge,
                        RelOp::Eq => RangeOp::Eq,
                        RelOp::Ne => return None,
                    };
                    Some((op, *c))
                });
                // Soundness guard: seed from the value index only when it
                // covers every element of the tag (elements with nested or
                // non-numeric content are not value-indexed but could still
                // satisfy the comparison through their full text content).
                let fully_indexed = db.values.count(sym) == db.tags.count(sym);
                match range_seed {
                    Some((op, c)) if fully_indexed => {
                        let mut seeded = db.values.range(sym, op, c);
                        // Restore (doc, start) order for the merge joins.
                        seeded.sort_by_key(|e| (e.doc, e.start));
                        seeded
                    }
                    _ => db.tags.elements(sym).to_vec(),
                }
            }
            None => Vec::new(),
        },
        TagTest::Star => {
            let mut all = Vec::new();
            for (doc_id, doc) in db.coll.iter() {
                for n in doc.node_ids() {
                    if doc.node(n).tag().is_some() {
                        all.push(crate::eval::entry_of(db, doc_id, n));
                    }
                }
            }
            all
        }
    };
    base.into_iter()
        .filter(|e| {
            tpq_node.predicates.iter().enumerate().all(|(i, p)| {
                if pq.pred_is_optional(node, i) {
                    return true;
                }
                match p {
                    Predicate::FtContains { phrase } => {
                        let tokens = db.inverted.analyze(phrase);
                        ft_contains(&db.inverted, e, &tokens)
                    }
                    Predicate::FtAll {
                        terms,
                        window,
                        ordered,
                    } => {
                        let tt: Vec<Vec<String>> =
                            terms.iter().map(|t| db.inverted.analyze(t)).collect();
                        ft_all(&db.inverted, e, &tt, *window, *ordered)
                    }
                    Predicate::Compare { op, value } => {
                        crate::eval::compare_content(db, e.elem_ref(), *op, value)
                    }
                }
            })
        })
        .collect()
}

/// Ancestor-side semijoin: the elements of `parents` that strictly contain
/// at least one element of `descs`. Both lists are `(doc, start)`-sorted;
/// the merge is O(n + m).
pub fn keep_ancestors_of(parents: &[ElemEntry], descs: &[ElemEntry]) -> Vec<ElemEntry> {
    let mut out = Vec::new();
    let mut di = 0usize;
    for p in parents {
        // Advance to the first descendant candidate starting after p.start
        // in p's document.
        while descs
            .get(di)
            .is_some_and(|d| d.doc < p.doc || (d.doc == p.doc && d.start <= p.start))
        {
            di += 1;
        }
        if descs
            .get(di)
            .is_some_and(|d| d.doc == p.doc && d.start < p.end)
        {
            out.push(*p);
        }
        // `di` must not advance past candidates needed by later parents:
        // later parents have larger starts, so the monotone advance is safe.
    }
    out
}

/// Descendant-side semijoin: the elements of `descs` strictly contained in
/// at least one element of `ancs`. Uses well-nestedness: an ancestor
/// starting before `e` either ends before `e.start` or contains `e`
/// entirely, so tracking the max end among started ancestors suffices.
pub fn keep_descendants_of(descs: &[ElemEntry], ancs: &[ElemEntry]) -> Vec<ElemEntry> {
    let mut out = Vec::new();
    let mut ai = 0usize;
    let mut max_end: Option<(pimento_index::DocId, u32)> = None;
    for e in descs {
        while let Some(a) = ancs.get(ai) {
            if !(a.doc < e.doc || (a.doc == e.doc && a.start < e.start)) {
                break;
            }
            max_end = match max_end {
                Some((doc, end)) if doc == a.doc => Some((doc, end.max(a.end))),
                _ => Some((a.doc, a.end)),
            };
            ai += 1;
        }
        if let Some((doc, end)) = max_end {
            if doc == e.doc && end > e.end {
                out.push(*e);
            }
        }
    }
    out
}

/// Parent-side `pc` semijoin: the elements of `parents` that are the XML
/// parent of at least one element of `children`.
pub fn keep_parents_of(
    db: &Database,
    parents: &[ElemEntry],
    children: &[ElemEntry],
) -> Vec<ElemEntry> {
    let parent_keys: HashSet<(u32, u32)> = children
        .iter()
        .filter_map(|c| {
            db.coll
                .doc(c.doc)
                .node(c.node)
                .parent
                .map(|p| (c.doc.0, p.0))
        })
        .collect();
    parents
        .iter()
        .filter(|p| parent_keys.contains(&(p.doc.0, p.node.0)))
        .copied()
        .collect()
}

/// Child-side `pc` semijoin: the elements of `children` whose XML parent is
/// in `parents`.
pub fn keep_children_of(
    db: &Database,
    children: &[ElemEntry],
    parents: &[ElemEntry],
) -> Vec<ElemEntry> {
    let parent_keys: HashSet<(u32, u32)> = parents.iter().map(|p| (p.doc.0, p.node.0)).collect();
    children
        .iter()
        .filter(|c| {
            db.coll
                .doc(c.doc)
                .node(c.node)
                .parent
                .is_some_and(|p| parent_keys.contains(&(c.doc.0, p.0)))
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;
    use pimento_profile::PersonalizedQuery;
    use pimento_tpq::parse_tpq;
    use std::sync::Arc;

    fn db(xml: &str) -> Database {
        let mut coll = Collection::new();
        coll.add_xml(xml).unwrap();
        Database::index_plain(coll)
    }

    fn matcher(db: &Database, q: &str) -> Arc<Matcher> {
        Arc::new(Matcher::new(
            db,
            PersonalizedQuery::unpersonalized(parse_tpq(q).unwrap()),
        ))
    }

    const DEALER: &str = r#"<dealer>
        <car><description>good condition low mileage</description><price>500</price></car>
        <car><description>good condition</description><price>3000</price></car>
        <other><price>10</price></other>
    </dealer>"#;

    type Keys = Vec<(u32, u32)>;

    /// Candidate pre-filter followed by exact matching must equal the
    /// brute-force per-candidate evaluation.
    fn both_ways(db: &Database, q: &str) -> (Keys, Keys) {
        let m = matcher(db, q);
        let mut probes = 0u64;
        let pre: Keys = prefilter_candidates(db, &m)
            .into_iter()
            .filter(|e| m.match_answer(db, e, &mut probes).is_some())
            .map(|e| (e.doc.0, e.start))
            .collect();
        // Brute force: all elements of the distinguished tag.
        let brute: Keys = match m.distinguished_tag().and_then(|t| db.coll.tag(t)) {
            Some(sym) => db
                .tags
                .elements(sym)
                .iter()
                .filter(|e| m.match_answer(db, e, &mut probes).is_some())
                .map(|e| (e.doc.0, e.start))
                .collect(),
            None => Vec::new(),
        };
        (pre, brute)
    }

    #[test]
    fn prefilter_agrees_with_bruteforce_on_paper_query() {
        let db = db(DEALER);
        let (pre, brute) = both_ways(
            &db,
            r#"//car[./description[ftcontains(., "good condition")] and ./price < 2000]"#,
        );
        assert_eq!(pre, brute);
        assert_eq!(pre.len(), 1);
    }

    #[test]
    fn prefilter_handles_upward_path() {
        let db = db(DEALER);
        let (pre, brute) = both_ways(&db, "//dealer/car/price[. < 1000]");
        assert_eq!(pre, brute);
        assert_eq!(pre.len(), 1);
    }

    #[test]
    fn prefilter_never_misses_answers() {
        // The pre-filter must be a superset before verification.
        let db = db(DEALER);
        let m = matcher(&db, r#"//car[ftcontains(., "good condition")]"#);
        let pre = prefilter_candidates(&db, &m);
        let mut probes = 0;
        let car = db.coll.tag("car").unwrap();
        for e in db.tags.elements(car) {
            if m.match_answer(&db, &e, &mut probes).is_some() {
                assert!(
                    pre.iter().any(|c| c.node == e.node && c.doc == e.doc),
                    "pre-filter dropped a true answer"
                );
            }
        }
    }

    #[test]
    fn semijoin_primitives() {
        let db = db("<a><b><c/></b><b/><c/></a>");
        let b = db.coll.tag("b").unwrap();
        let c = db.coll.tag("c").unwrap();
        let bs = db.tags.elements(b).to_vec();
        let cs = db.tags.elements(c).to_vec();
        // b elements containing a c descendant: only the first b.
        let with_c = keep_ancestors_of(&bs, &cs);
        assert_eq!(with_c.len(), 1);
        assert_eq!(with_c[0], bs[0]);
        // c elements inside a b: only the first c.
        let inside_b = keep_descendants_of(&cs, &bs);
        assert_eq!(inside_b.len(), 1);
        // pc variants agree here (depth 1).
        assert_eq!(keep_parents_of(&db, &bs, &cs), with_c);
        assert_eq!(keep_children_of(&db, &cs, &bs), inside_b);
    }

    #[test]
    fn pc_vs_ad_semijoin_difference() {
        let db = db("<a><b><x><c/></x></b></a>");
        let b = db.coll.tag("b").unwrap();
        let c = db.coll.tag("c").unwrap();
        let bs = db.tags.elements(b).to_vec();
        let cs = db.tags.elements(c).to_vec();
        assert_eq!(
            keep_ancestors_of(&bs, &cs).len(),
            1,
            "ad: c is a descendant"
        );
        assert_eq!(
            keep_parents_of(&db, &bs, &cs).len(),
            0,
            "pc: c is not a direct child"
        );
    }

    #[test]
    fn root_anchored_prefilter() {
        let db = db(DEALER);
        let m = matcher(&db, "/dealer");
        assert_eq!(prefilter_candidates(&db, &m).len(), 1);
        let m2 = matcher(&db, "/car");
        assert!(prefilter_candidates(&db, &m2).is_empty());
    }

    #[test]
    fn empty_tag_prefilter() {
        let db = db(DEALER);
        let m = matcher(&db, "//nonexistent");
        assert!(prefilter_candidates(&db, &m).is_empty());
    }
}

#[cfg(test)]
mod value_seed_tests {
    use super::*;
    use pimento_index::Collection;
    use pimento_profile::PersonalizedQuery;
    use pimento_tpq::parse_tpq;
    use std::sync::Arc;

    fn db(xml: &str) -> Database {
        let mut coll = Collection::new();
        coll.add_xml(xml).unwrap();
        Database::index_plain(coll)
    }

    #[test]
    fn value_index_seeds_numeric_prefilter() {
        let db = db(
            "<dealer><car><price>100</price></car><car><price>5000</price></car>\
             <car><price>900</price></car></dealer>",
        );
        let m = Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq("//car/price[. < 1000]").unwrap()),
        ));
        let pre = prefilter_candidates(&db, &m);
        assert_eq!(pre.len(), 2, "range scan keeps only prices below 1000");
        assert!(pre
            .windows(2)
            .all(|w| (w[0].doc, w[0].start) < (w[1].doc, w[1].start)));
    }

    #[test]
    fn nested_numeric_content_falls_back_to_full_scan() {
        // One price has an element child: the value index does not cover
        // every price element, so the seed must be disabled — the
        // pre-filter still finds the nested-content answer.
        let db = db("<dealer><car><price>500</price></car>\
             <car><price><amount>700</amount></price></car></dealer>");
        let price = db.coll.tag("price").unwrap();
        assert_eq!(
            db.values.count(price),
            1,
            "only the leaf price is value-indexed"
        );
        let m = Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq("//car/price[. < 1000]").unwrap()),
        ));
        let pre = prefilter_candidates(&db, &m);
        let mut probes = 0;
        let verified: Vec<_> = pre
            .iter()
            .filter(|e| m.match_answer(&db, e, &mut probes).is_some())
            .collect();
        assert_eq!(
            verified.len(),
            2,
            "both prices (leaf and nested) are answers"
        );
    }
}
