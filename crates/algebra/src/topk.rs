//! OR-aware `topkPrune` (paper §6.3, Algorithms 1–3).
//!
//! The operator maintains a list of the current top-k answers and lets an
//! incoming answer pass only when it cannot be *proven* to miss the final
//! top k. The proof uses two exact bounds over the plan suffix above the
//! operator:
//!
//! * `query_scorebound` — the maximum `S` any answer can still gain
//!   (sum of the remaining optional-predicate score ceilings), and
//! * `kor_scorebound` — the maximum `K` it can still gain (sum of the
//!   remaining KOR weights) — the quantity Algorithm 3 introduces.
//!
//! **Algorithm selection is positional**: a prune below every `kor` uses
//! the full `kor_scorebound` (Algorithm 3); one above all `kor`s but with
//! VORs applied compares `≺_V` first (Algorithm 2); with no ORs at all the
//! check degenerates to Algorithm 1's `a.S + bound < kth.S`.
//!
//! One deviation from the paper's pseudocode, for soundness under *partial*
//! orders: Algorithm 2 prunes `a` when `kth ≺_V a`. With genuinely
//! incomparable answers in the list this can discard an answer that a
//! linear extension would still rank in the top k. We therefore prune only
//! when **every** list member *certainly outranks* `a` (on `K` bounds, then
//! `≺_V`, then `S` bounds). For total preorders — every ambiguity-resolved
//! single-attribute VOR set, e.g. the paper's π5 — the two conditions
//! coincide, and the check degenerates to exactly the paper's Algorithms
//! 1 and 3 when the respective components are absent.
//!
//! With **sorted input** (the `S-ILtpkP` and final-prune positions), one
//! pruned answer implies every later answer is prunable too, so the
//! operator stops its input early — the paper's *bulk pruning*. Bulk
//! pruning is disabled when `≺_V` participates mid-plan, because dominance
//! is not monotone along the sort order.

use crate::answer::Answer;
use crate::context::{Database, ExecStats};
use crate::ops::{BoxedOp, Operator};
use crate::rank::{cmp_f64_desc, RankContext};
use pimento_profile::{RankOrder, VorOutcome};
use std::cmp::Ordering;
use std::sync::Arc;

/// Configuration of one `topkPrune` placement.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkConfig {
    /// How many answers the user wants.
    pub k: usize,
    /// Exact max `S` still addable above this operator.
    pub query_scorebound: f64,
    /// Exact max `K` still addable above this operator.
    pub kor_scorebound: f64,
    /// Compare `≺_V` (only valid above the `vor` operator).
    pub use_v: bool,
    /// Input arrives sorted by the final ranking order → bulk pruning.
    pub sorted_input: bool,
    /// Emit at most `k` answers and stop (the final prune at the plan
    /// root; requires `sorted_input` and zero bounds).
    pub last: bool,
}

impl TopkConfig {
    /// A final prune: sorted input, no remaining bounds, cut at `k`.
    pub fn final_prune(k: usize) -> Self {
        TopkConfig {
            k,
            query_scorebound: 0.0,
            kor_scorebound: 0.0,
            use_v: true,
            sorted_input: true,
            last: true,
        }
    }
}

/// The `topkPrune` operator.
pub struct TopkPrune {
    input: BoxedOp,
    cfg: TopkConfig,
    rank: Arc<RankContext>,
    /// Current top-k candidates, best first by current values.
    list: Vec<Answer>,
    emitted: u64,
    done: bool,
}

impl TopkPrune {
    /// Wrap `input`.
    pub fn new(input: BoxedOp, rank: Arc<RankContext>, cfg: TopkConfig) -> Self {
        TopkPrune {
            input,
            cfg,
            rank,
            list: Vec::new(),
            emitted: 0,
            done: false,
        }
    }

    /// Current-value comparator used to keep the threshold list ordered,
    /// following the configured rank order (`K,V,S` or `V,K,S`); a `≺_V`
    /// tie or incomparability falls through to the next component.
    fn current_cmp(&self, a: &Answer, b: &Answer, stats: &mut ExecStats) -> Ordering {
        let by_v = |this: &Self, stats: &mut ExecStats| -> Ordering {
            if !this.cfg.use_v {
                return Ordering::Equal;
            }
            match this.rank.vor_compare(a, b, stats) {
                VorOutcome::PreferA => Ordering::Less,
                VorOutcome::PreferB => Ordering::Greater,
                VorOutcome::Equal | VorOutcome::Incomparable => Ordering::Equal,
            }
        };
        let primary = match self.rank.order {
            RankOrder::Kvs => cmp_f64_desc(a.k, b.k).then_with(|| by_v(self, stats)),
            RankOrder::Vks => by_v(self, stats).then_with(|| cmp_f64_desc(a.k, b.k)),
        };
        primary
            .then_with(|| cmp_f64_desc(a.s, b.s))
            .then_with(|| a.tiebreak().cmp(&b.tiebreak()))
    }

    /// Does list member `m` certainly rank above `a` in the final order,
    /// whatever scores the plan suffix still adds?
    ///
    /// * `K` is bounded: `m` final ≥ `m.k`, `a` final ≤ `a.k + kb`.
    /// * `≺_V` is stable once fetched; **unknown V blocks certainty** when
    ///   VORs exist and could still reorder the pair (the fix Algorithm 2
    ///   makes to Algorithm 1).
    /// * `S` is bounded by `sb` and only decides once the higher-priority
    ///   components are certainly tied.
    fn certainly_outranks(&self, m: &Answer, a: &Answer, stats: &mut ExecStats) -> bool {
        let kb = self.cfg.kor_scorebound;
        let sb = self.cfg.query_scorebound;
        // Certainty on the K component: Win (m always higher), Tie (can
        // only tie, and only if the suffix maximally favours a), or
        // unknown (no certainty at all).
        let k_win = m.k > a.k + kb;
        let k_tie = m.k == a.k + kb;
        // Certainty on the V component (when VORs exist).
        enum VCert {
            Win,
            Tie,
            Unknown,
        }
        let v = if self.rank.vors.is_empty() {
            VCert::Tie
        } else if !self.cfg.use_v {
            VCert::Unknown
        } else {
            match self.rank.vor_compare(m, a, stats) {
                VorOutcome::PreferA => VCert::Win,
                VorOutcome::Equal => VCert::Tie,
                VorOutcome::PreferB | VorOutcome::Incomparable => VCert::Unknown,
            }
        };
        let s_win = m.s > a.s + sb;
        match self.rank.order {
            RankOrder::Kvs => {
                k_win
                    || (k_tie
                        && match v {
                            VCert::Win => true,
                            VCert::Tie => s_win,
                            VCert::Unknown => false,
                        })
            }
            RankOrder::Vks => match v {
                VCert::Win => true,
                VCert::Tie => k_win || (k_tie && s_win),
                VCert::Unknown => false,
            },
        }
    }

    /// Insert `a` into the threshold list if it beats the current k-th.
    fn maybe_insert(&mut self, a: &Answer, stats: &mut ExecStats) {
        if self.list.len() < self.cfg.k {
            let pos = self.insertion_point(a, stats);
            self.list.insert(pos, a.clone());
            return;
        }
        let kth_idx = self.cfg.k - 1;
        let Some(kth) = self.list.get(kth_idx) else {
            return;
        };
        let cmp = self.current_cmp(a, kth, stats);
        if cmp == Ordering::Less {
            // a ranks above the current kth: insert, drop the kth from the
            // list (it stays in the flow — Algorithms 1–3, lines "kth
            // answer is no longer in topkList / keep kth in the flow").
            let pos = self.insertion_point(a, stats);
            self.list.insert(pos, a.clone());
            self.list.truncate(self.cfg.k);
        }
    }

    fn insertion_point(&mut self, a: &Answer, stats: &mut ExecStats) -> usize {
        let list = std::mem::take(&mut self.list);
        let mut pos = list.len();
        for (i, m) in list.iter().enumerate() {
            // Re-borrow self immutably per comparison.
            if self.current_cmp(a, m, stats) == Ordering::Less {
                pos = i;
                break;
            }
        }
        self.list = list;
        pos
    }

    /// The prune decision for one incoming answer.
    fn prunable(&mut self, a: &Answer, stats: &mut ExecStats) -> bool {
        if self.list.len() < self.cfg.k {
            return false;
        }
        let list = std::mem::take(&mut self.list);
        let all_outrank = list.iter().all(|m| self.certainly_outranks(m, a, stats));
        self.list = list;
        all_outrank
    }
}

impl Operator for TopkPrune {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        if self.done {
            return None;
        }
        loop {
            if self.cfg.last && self.emitted >= self.cfg.k as u64 {
                // Final prune: k answers delivered — bulk-prune the rest.
                self.done = true;
                stats.bulk_pruned += 1;
                return None;
            }
            let Some(a) = self.input.next(db, stats) else {
                self.done = true;
                return None;
            };
            if self.prunable(&a, stats) {
                stats.pruned += 1;
                if self.cfg.sorted_input && !self.cfg.use_v {
                    // Bulk pruning: every later answer ranks no better.
                    self.done = true;
                    stats.bulk_pruned += 1;
                    return None;
                }
                continue;
            }
            self.maybe_insert(&a, stats);
            self.emitted += 1;
            return Some(a);
        }
    }

    fn describe(&self) -> String {
        format!(
            "topkPrune(k={}, kor_bound={:.2}, s_bound={:.2}, V={}, sorted={}{}) -> {}",
            self.cfg.k,
            // +0.0 normalizes IEEE negative zero for display.
            self.cfg.kor_scorebound + 0.0,
            self.cfg.query_scorebound + 0.0,
            self.cfg.use_v,
            self.cfg.sorted_input,
            if self.cfg.last { ", last" } else { "" },
            self.input.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::{Collection, DocId, ElemEntry};
    use pimento_profile::{AttrValue, RankOrder, ValueOrderingRule};
    use pimento_xml::NodeId;

    /// A stub source yielding preset answers.
    struct Stub(Vec<Answer>, usize);
    impl Operator for Stub {
        fn next(&mut self, _db: &Database, _stats: &mut ExecStats) -> Option<Answer> {
            let a = self.0.get(self.1).cloned();
            self.1 += 1;
            a
        }
        fn describe(&self) -> String {
            "stub".into()
        }
    }

    fn tiny_db() -> Database {
        let mut coll = Collection::new();
        coll.add_xml("<x/>").unwrap();
        Database::index_plain(coll)
    }

    fn mk(start: u32, s: f64, k: f64) -> Answer {
        let elem = ElemEntry {
            doc: DocId(0),
            node: NodeId(0),
            start,
            end: start + 1,
            level: 1,
        };
        Answer {
            elem,
            s,
            k,
            vor: None,
        }
    }

    fn mk_v(ctx: &RankContext, start: u32, s: f64, k: f64, color: &str) -> Answer {
        let mut a = mk(start, s, k);
        let key = ctx.make_key("car", |_, attr| {
            (attr == "color").then(|| AttrValue::Str(color.to_string()))
        });
        a.vor = Some(Arc::new(key));
        a
    }

    fn run(op: &mut dyn Operator) -> (Vec<Answer>, ExecStats) {
        let db = tiny_db();
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        while let Some(a) = op.next(&db, &mut stats) {
            out.push(a);
        }
        (out, stats)
    }

    fn cfg(k: usize, sb: f64, kb: f64, use_v: bool) -> TopkConfig {
        TopkConfig {
            k,
            query_scorebound: sb,
            kor_scorebound: kb,
            use_v,
            sorted_input: false,
            last: false,
        }
    }

    #[test]
    fn algorithm1_prunes_on_s_bound() {
        // k=2, no bounds: third-best and worse get pruned.
        let answers = vec![
            mk(1, 0.9, 0.0),
            mk(2, 0.8, 0.0),
            mk(3, 0.1, 0.0),
            mk(4, 0.05, 0.0),
        ];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.0, false));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.pruned, 2);
    }

    #[test]
    fn algorithm1_bound_blocks_pruning() {
        // With query_scorebound = 1.0, the weak answer could still catch
        // up — it must pass.
        let answers = vec![mk(1, 0.9, 0.0), mk(2, 0.8, 0.0), mk(3, 0.1, 0.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 1.0, 0.0, false));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 3);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn list_smaller_than_k_never_prunes() {
        let answers = vec![mk(1, 0.1, 0.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(5, 0.0, 0.0, false));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn algorithm3_kor_bound_pruning() {
        // kor_scorebound = 0.5: an answer with k=0 against a list of k=1.0
        // answers is provably out (0 + 0.5 < 1.0).
        let answers = vec![mk(1, 0.0, 1.0), mk(2, 0.0, 1.0), mk(3, 0.9, 0.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.5, false));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn algorithm3_kor_bound_blocks_pruning() {
        // kor_scorebound = 2.0: k=0 answers could still overtake.
        let answers = vec![mk(1, 0.0, 1.0), mk(2, 0.0, 1.0), mk(3, 0.9, 0.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 2.0, false));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 3);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn kor_tie_falls_through_to_s() {
        // kb = 0, equal K: S decides with sb margin.
        let answers = vec![mk(1, 0.9, 1.0), mk(2, 0.8, 1.0), mk(3, 0.1, 1.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.0, false));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn algorithm2_vor_dominance_prunes() {
        let red_rule = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let rank = RankContext::new(vec![red_rule], RankOrder::Kvs);
        // Two red answers fill the list; a blue answer with lower S is
        // dominated by both → pruned even though S bound alone would not
        // prune it at sb=0 (S: 0.1 < 0.5 prunes anyway; use S equal to
        // isolate V).
        let answers = vec![
            mk_v(&rank, 1, 0.5, 0.0, "red"),
            mk_v(&rank, 2, 0.5, 0.0, "red"),
            mk_v(&rank, 3, 0.5, 0.0, "blue"),
        ];
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.0, true));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn algorithm2_incomparable_passes() {
        // List holds red cars; an answer *without* a fetched VOR key (or
        // otherwise incomparable) must not be pruned on V grounds when S
        // ties.
        let red_rule = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let rank = RankContext::new(vec![red_rule], RankOrder::Kvs);
        let mut no_key = mk(3, 0.5, 0.0);
        no_key.vor = None;
        let answers = vec![
            mk_v(&rank, 1, 0.5, 0.0, "red"),
            mk_v(&rank, 2, 0.5, 0.0, "red"),
            no_key,
        ];
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.0, true));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 3);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn algorithm2_equal_v_falls_to_s() {
        let red_rule = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let rank = RankContext::new(vec![red_rule], RankOrder::Kvs);
        let answers = vec![
            mk_v(&rank, 1, 0.9, 0.0, "red"),
            mk_v(&rank, 2, 0.8, 0.0, "red"),
            mk_v(&rank, 3, 0.1, 0.0, "red"),
        ];
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.0, true));
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn bulk_pruning_on_sorted_input() {
        let answers: Vec<Answer> = (0..100)
            .map(|i| mk(i, 1.0 - i as f64 / 100.0, 0.0))
            .collect();
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut c = cfg(5, 0.0, 0.0, false);
        c.sorted_input = true;
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, c);
        let (out, stats) = run(&mut op);
        assert_eq!(out.len(), 5);
        assert_eq!(stats.pruned, 1, "one prune triggers the early exit");
        assert_eq!(stats.bulk_pruned, 1);
    }

    #[test]
    fn final_prune_emits_exactly_k() {
        let answers: Vec<Answer> = (0..10).map(|i| mk(i, 1.0 - i as f64 / 10.0, 0.0)).collect();
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, TopkConfig::final_prune(3));
        let (out, _) = run(&mut op);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].s, 1.0);
    }

    #[test]
    fn final_prune_with_fewer_answers_than_k() {
        let answers = vec![mk(1, 0.5, 0.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(
            Box::new(Stub(answers, 0)),
            rank,
            TopkConfig::final_prune(10),
        );
        let (out, _) = run(&mut op);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn kicked_out_kth_stays_in_flow() {
        // A strong late answer displaces the kth; the displaced answer was
        // already emitted downstream (all unpruned answers flow).
        let answers = vec![mk(1, 0.5, 0.0), mk(2, 0.4, 0.0), mk(3, 0.9, 0.0)];
        let rank = RankContext::new(vec![], RankOrder::Kvs);
        let mut op = TopkPrune::new(Box::new(Stub(answers, 0)), rank, cfg(2, 0.0, 0.0, false));
        let (out, _) = run(&mut op);
        assert_eq!(
            out.len(),
            3,
            "nothing prunable here; list just tracks the threshold"
        );
    }
}
