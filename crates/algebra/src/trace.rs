//! Execution tracing: per-operator row counts and wall time, the
//! `EXPLAIN ANALYZE` view of a plan. Enabled per [`crate::plan::PlanSpec`]
//! (`trace: true`); the overhead of an untraced plan is zero (operators
//! are only wrapped when tracing is on).

use crate::answer::Answer;
use crate::context::{Database, ExecStats};
use crate::ops::{BoxedOp, Operator};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Measurements of one traced operator.
#[derive(Debug, Clone, Default)]
pub struct TraceEntry {
    /// Short operator label (`kor[pi4]`, `topkPrune#2`, …).
    pub label: String,
    /// Answers the operator produced.
    pub rows_out: u64,
    /// Time spent inside this operator *and everything below it* — the
    /// cumulative pull time, like `EXPLAIN ANALYZE`'s actual time.
    pub cumulative: Duration,
    /// Number of `next()` calls served.
    pub calls: u64,
}

/// Shared registry the plan builder hands each traced wrapper.
pub type TraceRegistry = Rc<RefCell<Vec<Rc<RefCell<TraceEntry>>>>>;

/// New, empty registry.
pub fn new_registry() -> TraceRegistry {
    Rc::new(RefCell::new(Vec::new()))
}

/// Wrap `inner` with a tracing shim registered under `label`.
pub fn traced(inner: BoxedOp, label: impl Into<String>, registry: &TraceRegistry) -> BoxedOp {
    let entry = Rc::new(RefCell::new(TraceEntry {
        label: label.into(),
        ..Default::default()
    }));
    registry.borrow_mut().push(Rc::clone(&entry));
    Box::new(Traced { inner, entry })
}

struct Traced {
    inner: BoxedOp,
    entry: Rc<RefCell<TraceEntry>>,
}

impl Operator for Traced {
    fn next(&mut self, db: &Database, stats: &mut ExecStats) -> Option<Answer> {
        let t0 = Instant::now();
        let out = self.inner.next(db, stats);
        let dt = t0.elapsed();
        let mut e = self.entry.borrow_mut();
        e.cumulative += dt;
        e.calls += 1;
        if out.is_some() {
            e.rows_out += 1;
        }
        out
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

/// Render a registry bottom-up (build order) as an analyze report.
pub fn render(registry: &TraceRegistry) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>12}\n",
        "operator", "rows out", "calls", "cum time(ms)"
    ));
    for entry in registry.borrow().iter() {
        let e = entry.borrow();
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>12.3}\n",
            e.label,
            e.rows_out,
            e.calls,
            e.cumulative.as_secs_f64() * 1e3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Matcher;
    use crate::ops::QueryEval;
    use pimento_index::Collection;
    use pimento_profile::PersonalizedQuery;
    use pimento_tpq::parse_tpq;

    #[test]
    fn traced_wrapper_counts_rows_and_calls() {
        let mut coll = Collection::new();
        coll.add_xml("<a><b/><b/><b/></a>").unwrap();
        let db = Database::index_plain(coll);
        let m = std::sync::Arc::new(Matcher::new(
            &db,
            PersonalizedQuery::unpersonalized(parse_tpq("//b").unwrap()),
        ));
        let registry = new_registry();
        let mut op = traced(Box::new(QueryEval::new(m)), "scan", &registry);
        let mut stats = ExecStats::default();
        while op.next(&db, &mut stats).is_some() {}
        let entries = registry.borrow();
        let e = entries[0].borrow();
        assert_eq!(e.rows_out, 3);
        assert_eq!(e.calls, 4, "three rows plus the exhausting call");
        assert_eq!(e.label, "scan");
    }

    #[test]
    fn render_contains_labels() {
        let registry = new_registry();
        registry.borrow_mut().push(Rc::new(RefCell::new(TraceEntry {
            label: "kor[pi4]".into(),
            ..Default::default()
        })));
        let text = render(&registry);
        assert!(text.contains("kor[pi4]"));
        assert!(text.contains("rows out"));
    }
}
