//! Criterion version of the Fig. 6 experiment: PushTopkPrune query time
//! as document size and #KORs grow. Uses the smaller sizes so `cargo
//! bench` stays tractable; the `fig6` binary runs the full 101K-10M sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_bench::workloads::{fig5_profile, FIG5_QUERY};
use pimento_datagen::xmark;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_push_scaling");
    group.sample_size(10);
    for (label, bytes) in [
        ("101K", 101 * 1024),
        ("212K", 212 * 1024),
        ("468K", 468 * 1024),
    ] {
        let xml = xmark::generate(2007, bytes);
        let engine = Engine::from_xml_docs(&[&xml]).expect("xmark parses");
        for n_kors in [1usize, 4] {
            let profile = fig5_profile(n_kors, false);
            let opts = SearchOptions::top(10).with_strategy(PlanStrategy::Push);
            group.bench_with_input(
                BenchmarkId::new(label.to_string(), format!("kors{n_kors}")),
                &n_kors,
                |b, _| {
                    b.iter(|| {
                        let res = engine.search(FIG5_QUERY, &profile, &opts).expect("runs");
                        assert!(!res.hits.is_empty());
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
