//! Criterion version of the Fig. 7 experiment: the four plan strategies
//! (NtpkP / NS-ILtpkP / S-ILtpkP / PtpkP) on one document, 4 KORs. The
//! `fig7` binary runs the paper-faithful 10 MB x {1..4} KORs grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_bench::workloads::{fig5_profile, FIG5_QUERY};
use pimento_datagen::xmark;

fn bench_fig7(c: &mut Criterion) {
    let xml = xmark::generate(2007, 512 * 1024);
    let engine = Engine::from_xml_docs(&[&xml]).expect("xmark parses");
    let profile = fig5_profile(4, false);
    let mut group = c.benchmark_group("fig7_plan_comparison");
    group.sample_size(10);
    for strategy in PlanStrategy::all() {
        let opts = SearchOptions::top(10).with_strategy(strategy);
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.paper_name()),
            &strategy,
            |b, _| {
                b.iter(|| {
                    let res = engine.search(FIG5_QUERY, &profile, &opts).expect("runs");
                    assert_eq!(res.hits.len(), 10);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
