//! Micro-benchmarks of the building blocks: XML parsing + index build,
//! TPQ containment, SR conflict analysis, VOR ambiguity detection, and a
//! personalized end-to-end query over the dealer corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use pimento::algebra::Database;
use pimento::index::Collection;
use pimento::profile::{analyze_conflicts, detect_ambiguity, Atom, ScopingRule, ValueOrderingRule};
use pimento::tpq::{contains, minimized, parse_tpq};
use pimento_datagen::{carsale, xmark};

fn bench_parse_index(c: &mut Criterion) {
    let xml = xmark::generate(7, 256 * 1024);
    c.bench_function("parse_and_index_256K", |b| {
        b.iter(|| {
            let mut coll = Collection::new();
            coll.add_xml(&xml).expect("parses");
            let db = Database::index_plain(coll);
            assert!(db.inverted.num_docs() == 1);
        })
    });
}

fn bench_containment(c: &mut Criterion) {
    let wide = parse_tpq(r#"//car[.//description and ./price < 2000]"#).unwrap();
    let narrow = parse_tpq(
        r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 1500 and ./owner]"#,
    )
    .unwrap();
    c.bench_function("tpq_containment", |b| {
        b.iter(|| {
            assert!(contains(&wide, &narrow));
            assert!(!contains(&narrow, &wide));
        })
    });
    let redundant = parse_tpq("//car[./price and ./price and .//price and ./color]").unwrap();
    c.bench_function("tpq_minimization", |b| {
        b.iter(|| {
            let m = minimized(&redundant);
            assert_eq!(m.len(), 3);
        })
    });
}

fn bench_static_analysis(c: &mut Criterion) {
    let query = parse_tpq(
        r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
    )
    .unwrap();
    let rules = vec![
        ScopingRule::delete(
            "rho1",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "low mileage"),
            ],
            vec![Atom::ft("description", "good condition")],
        )
        .with_priority(2),
        ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        )
        .with_priority(1),
        ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        )
        .with_priority(3),
    ];
    c.bench_function("sr_conflict_analysis", |b| {
        b.iter(|| {
            let a = analyze_conflicts(&rules, &query).expect("priorities resolve");
            assert_eq!(a.order.len(), 3);
        })
    });

    let vors: Vec<ValueOrderingRule> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                ValueOrderingRule::prefer_value(&format!("v{i}"), "car", &format!("a{i}"), "x")
            } else {
                ValueOrderingRule::prefer_smaller(&format!("v{i}"), "car", &format!("a{i}"))
            }
        })
        .collect();
    c.bench_function("vor_ambiguity_detection", |b| {
        b.iter(|| {
            let r = detect_ambiguity(&vors);
            assert!(r.is_ambiguous());
        })
    });
}

fn bench_end_to_end_dealer(c: &mut Criterion) {
    let xml = carsale::generate_dealer(3, 2000);
    let engine = pimento::Engine::from_xml_docs(&[&xml]).expect("parses");
    let profile = pimento::profile::UserProfile::new()
        .with_vor(ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        ))
        .with_kor(pimento::profile::KeywordOrderingRule::new(
            "pi5", "car", "NYC",
        ));
    c.bench_function("dealer_personalized_top10", |b| {
        b.iter(|| {
            let res = engine
                .search(
                    r#"//car[ftcontains(., "good condition") and ./price < 3000]"#,
                    &profile,
                    &pimento::SearchOptions::top(10),
                )
                .expect("runs");
            assert!(!res.hits.is_empty());
        })
    });
}

fn bench_eval_modes(c: &mut Criterion) {
    // Ablation: per-candidate indexed nested loops vs the bulk
    // structural-join pre-filter, on a selective twig query.
    let xml = xmark::generate(11, 512 * 1024);
    let engine = pimento::Engine::from_xml_docs(&[&xml]).expect("parses");
    let query = r#"//person[ftcontains(.//business, "Yes") and .//city[ftcontains(., "Phoenix")]]"#;
    let mut group = c.benchmark_group("eval_mode_ablation");
    group.sample_size(10);
    for (label, mode) in [
        ("indexed-nested-loop", pimento::EvalMode::IndexedNestedLoop),
        ("structural-join", pimento::EvalMode::StructuralJoin),
    ] {
        let opts = pimento::SearchOptions::top(10).with_eval_mode(mode);
        group.bench_function(label, |b| {
            b.iter(|| {
                let res = engine
                    .search(query, &pimento::profile::UserProfile::new(), &opts)
                    .expect("runs");
                assert!(!res.hits.is_empty());
            })
        });
    }
    group.finish();
}

fn bench_profile_io(c: &mut Criterion) {
    let registry = pimento::profile::PrefRelRegistry::new();
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../profiles/fig2.rules"
    ))
    .expect("fig2.rules exists");
    c.bench_function("rule_language_parse_fig2", |b| {
        b.iter(|| {
            let p = pimento::profile::parse_profile(&text, &registry).expect("parses");
            assert_eq!(p.kors.len(), 2);
        })
    });
}

fn bench_persistence(c: &mut Criterion) {
    let xml = xmark::generate(5, 256 * 1024);
    let mut coll = Collection::new();
    coll.add_xml(&xml).unwrap();
    let snapshot = pimento::index::save_collection(&coll);
    c.bench_function("snapshot_save_256K", |b| {
        b.iter(|| {
            let s = pimento::index::save_collection(&coll);
            assert!(!s.is_empty());
        })
    });
    c.bench_function("snapshot_load_256K", |b| {
        b.iter(|| {
            let loaded = pimento::index::load_collection(&snapshot).expect("loads");
            assert_eq!(loaded.len(), 1);
        })
    });
}

fn bench_parallel_ingest(c: &mut Criterion) {
    let docs: Vec<String> = (0..16).map(|i| xmark::generate(i, 64 * 1024)).collect();
    let mut group = c.benchmark_group("parallel_ingest_16x64K");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| {
                let coll =
                    pimento::index::build_collection_parallel(&docs, threads).expect("parses");
                assert_eq!(coll.len(), 16);
            })
        });
    }
    group.finish();
}

fn bench_par_scan(c: &mut Criterion) {
    use pimento::algebra::{execute_with_workers, Matcher, PlanSpec, PlanStrategy, RankContext};
    use pimento::Engine;
    use pimento_bench::workloads::{fig5_profile, FIG5_QUERY};
    use std::sync::Arc;

    let xml = xmark::generate(42, 512 * 1024);
    let engine = Engine::from_xml_docs(&[&xml]).expect("xmark parses");
    let profile = fig5_profile(4, true);
    let pq = engine
        .personalize(FIG5_QUERY, &profile)
        .expect("valid query");
    let matcher = Arc::new(Matcher::new(engine.db(), pq));
    let rank = RankContext::new(profile.vors.clone(), profile.rank_order);
    let spec = PlanSpec::new(10, PlanStrategy::Push);
    let mut group = c.benchmark_group("par_scan_512K");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("workers{workers}"), |b| {
            b.iter(|| {
                let (out, _, _) = execute_with_workers(
                    engine.db(),
                    Arc::clone(&matcher),
                    &profile.kors,
                    Arc::clone(&rank),
                    spec,
                    workers,
                );
                assert_eq!(out.len(), 10);
            })
        });
    }
    group.finish();
}

fn bench_topk_prune(c: &mut Criterion) {
    // §6.3 ablation: the three pruning regimes over a synthetic stream of
    // 10k answers (Algorithm 1: S only; Algorithm 3: K bound; Algorithm 2:
    // V comparisons on K ties).
    use pimento::algebra::{
        Answer, Database, ExecStats, Operator, RankContext, TopkConfig, TopkPrune,
    };
    use pimento::index::{DocId, ElemEntry};
    use pimento::profile::{AttrValue, RankOrder, ValueOrderingRule};
    use std::sync::Arc;

    struct Stub(Vec<Answer>, usize);
    impl Operator for Stub {
        fn next(&mut self, _db: &Database, _s: &mut ExecStats) -> Option<Answer> {
            let a = self.0.get(self.1).cloned();
            self.1 += 1;
            a
        }
        fn describe(&self) -> String {
            "stub".into()
        }
    }

    let mut coll = Collection::new();
    coll.add_xml("<x/>").unwrap();
    let db = Database::index_plain(coll);
    // Compile the VOR keys against the rule set the V-aware regime uses
    // (contexts with no rules never inspect the keys).
    let key_ctx = RankContext::new(
        vec![ValueOrderingRule::prefer_value(
            "red", "car", "color", "red",
        )],
        RankOrder::Kvs,
    );
    let answers: Vec<Answer> = (0..10_000u32)
        .map(|i| {
            let elem = ElemEntry {
                doc: DocId(0),
                node: pimento::xml::NodeId(0),
                start: i,
                end: i + 1,
                level: 1,
            };
            let mut a = Answer::new(elem, ((i * 7919) % 1000) as f64 / 1000.0);
            a.k = (i % 5) as f64;
            let key = key_ctx.make_key("car", |_, attr| {
                (attr == "color")
                    .then(|| AttrValue::Str(if i % 3 == 0 { "red" } else { "blue" }.into()))
            });
            a.vor = Some(Arc::new(key));
            a
        })
        .collect();

    let mut group = c.benchmark_group("topk_prune_10k");
    group.sample_size(20);
    for (label, kor_bound, use_v, vors) in [
        ("alg1_s_only", 0.0, false, vec![]),
        ("alg3_k_bound", 2.0, false, vec![]),
        (
            "alg2_v_aware",
            0.0,
            true,
            vec![ValueOrderingRule::prefer_value(
                "red", "car", "color", "red",
            )],
        ),
    ] {
        let rank = RankContext::new(vors.clone(), RankOrder::Kvs);
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = TopkConfig {
                    k: 10,
                    query_scorebound: 0.0,
                    kor_scorebound: kor_bound,
                    use_v,
                    sorted_input: false,
                    last: false,
                };
                let mut op =
                    TopkPrune::new(Box::new(Stub(answers.clone(), 0)), Arc::clone(&rank), cfg);
                let mut stats = ExecStats::default();
                let mut survivors = 0u32;
                while op.next(&db, &mut stats).is_some() {
                    survivors += 1;
                }
                assert!(survivors >= 10);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parse_index,
    bench_containment,
    bench_static_analysis,
    bench_end_to_end_dealer,
    bench_eval_modes,
    bench_profile_io,
    bench_persistence,
    bench_parallel_ingest,
    bench_par_scan,
    bench_topk_prune
);
criterion_main!(benches);
