//! Criterion benches for the snapshot formats: columnar v4 save and
//! zero-copy open vs the legacy v3 save and rebuild-on-load open, on one
//! 256K XMark document — the microscope view behind `snapcold`'s
//! subprocess-isolated cold-start numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use pimento::Engine;

fn bench_snapshot_formats(c: &mut Criterion) {
    let xml = pimento_datagen::generate_xmark(7, 256 * 1024);
    let engine = Engine::from_xml_docs(&[xml]).expect("corpus parses");
    let v4 = engine.save_snapshot();
    let v3 = engine.save_snapshot_v3();
    let v4_bytes = bytes::Bytes::from(v4.to_vec());
    let v3_bytes = bytes::Bytes::from(v3.to_vec());

    c.bench_function("snapshot_save_v4_256K", |b| {
        b.iter(|| {
            let s = engine.save_snapshot();
            assert!(!s.is_empty());
        })
    });
    c.bench_function("snapshot_open_v4_256K", |b| {
        b.iter(|| {
            let e = Engine::from_snapshot_bytes(v4_bytes.clone()).expect("v4 opens");
            assert_eq!(e.snapshot_format(), Some(4));
        })
    });
    c.bench_function("snapshot_open_v3_rebuild_256K", |b| {
        b.iter(|| {
            let e = Engine::from_snapshot_bytes(v3_bytes.clone()).expect("v3 opens");
            assert_eq!(e.snapshot_format(), Some(3));
        })
    });
}

criterion_group!(benches, bench_snapshot_formats);
criterion_main!(benches);
