//! Regenerates **Fig. 6** (paper §7.2): PushTopkPrune query time for
//! increasing document size (101 KB … 10 MB) and increasing number of
//! KORs (1–4). Pass `--quick` to use only the first four sizes.

use pimento_bench::perf;
use pimento_datagen::xmark::FIG6_SIZES;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<(&str, usize)> = if quick {
        FIG6_SIZES[..4].to_vec()
    } else {
        FIG6_SIZES.to_vec()
    };
    eprintln!(
        "running Fig. 6 sweep over {} document sizes (k=10)...",
        sizes.len()
    );
    let cells = perf::run_fig6(2007, &sizes, 10, 3);
    print!("{}", perf::render_fig6(&cells));
    // The paper's headline observation: sub-linear growth between 1M and
    // 5.7M for PushTopkPrune.
    let t = |label: &str| {
        cells
            .iter()
            .find(|c| c.size_label == label && c.n_kors == 4)
            .map(|c| c.time.as_secs_f64())
    };
    if let (Some(t1m), Some(t57)) = (t("1M"), t("5.7M")) {
        println!(
            "\n1M -> 5.7M size ratio 5.7x; time ratio {:.2}x ({})",
            t57 / t1m,
            if t57 / t1m < 5.7 {
                "sub-linear, as in the paper"
            } else {
                "NOT sub-linear"
            }
        );
    }

    // Thread-count sweep of the sharded parallel scan on the 1M document;
    // medians land in BENCH_parallel.json for the CI trend line.
    let bytes = 1024 * 1024;
    eprintln!("running parallel thread sweep on the 1M document...");
    let rows = perf::run_thread_sweep(2007, bytes, 10, 5, &[1, 2, 4, 8]);
    print!("\n{}", perf::render_thread_sweep(&rows, bytes));
    let json = perf::thread_sweep_json(&rows, bytes, 10);
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_parallel.json"),
        Err(e) => eprintln!("cannot write BENCH_parallel.json: {e}"),
    }
}
