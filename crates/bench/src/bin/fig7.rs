//! Regenerates **Fig. 7** (paper §7.2): run-time comparison of the four
//! plans (NtpkP, NS-ILtpkP, S-ILtpkP, PtpkP) on a 10 MB document for
//! 1–4 KORs. `--quick` uses a 1 MB document; `--ablation` additionally
//! runs the §7.2 KOR application-order experiment.

use pimento_bench::perf;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ablation = std::env::args().any(|a| a == "--ablation");
    let bytes = if quick { 1024 * 1024 } else { 10 * 1024 * 1024 };
    eprintln!(
        "running Fig. 7 plan comparison on a {} MB document (k=10)...",
        bytes / (1024 * 1024)
    );
    let cells = perf::run_fig7(2007, bytes, 10, 3);
    print!("{}", perf::render_fig7(&cells, bytes));

    // The paper's observations, checked mechanically.
    let avg = |s: pimento::PlanStrategy| -> f64 {
        let xs: Vec<f64> = cells
            .iter()
            .filter(|c| c.strategy == s)
            .map(|c| c.time.as_secs_f64())
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    use pimento::PlanStrategy::*;
    println!(
        "\nPtpkP vs NtpkP average: {:.2} ms vs {:.2} ms ({})",
        avg(Push) * 1e3,
        avg(Naive) * 1e3,
        if avg(Push) <= avg(Naive) * 1.05 {
            "PushTopkPrune never does worse than Naive — as in the paper"
        } else {
            "unexpected: Push slower than Naive"
        }
    );
    println!(
        "S-ILtpkP vs NS-ILtpkP average: {:.2} ms vs {:.2} ms ({})",
        avg(InterleaveSorted) * 1e3,
        avg(InterleaveUnsorted) * 1e3,
        if avg(InterleaveSorted) <= avg(InterleaveUnsorted) {
            "sorted interleaving outperforms unsorted — as in the paper"
        } else {
            "unexpected: sorted slower"
        }
    );

    if ablation {
        println!("\n§7.2 ablation — KOR application order (PtpkP, skewed weights):");
        for (label, time, probes) in perf::run_kor_order_ablation(2007, bytes, 10, 5) {
            println!(
                "  {label:<14} {:.2} ms   keyword probes {probes}",
                time.as_secs_f64() * 1e3
            );
        }
    }

    // Symbol-interning before/after: the string-based ≺_V reference vs the
    // compiled id-indexed tables, on the same workload with the VOR added;
    // medians land in BENCH_intern.json for the CI trend line.
    eprintln!("running intern comparator comparison (VOR-heavy workload)...");
    let report = perf::run_intern_compare(2007, bytes, 10, 3, 1024);
    print!("\n{}", perf::render_intern(&report));
    let json = perf::intern_json(&report, 10);
    match std::fs::write("BENCH_intern.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_intern.json"),
        Err(e) => eprintln!("cannot write BENCH_intern.json: {e}"),
    }
}
