//! Load generator for `pimento serve`: measures cold-cache vs warm-cache
//! request latency over the real loopback protocol and writes
//! `BENCH_serve.json`. The cold phase issues each (user, query) pair for
//! the first time (every request compiles its plan); the warm phase
//! replays the same pairs from concurrent clients (every request hits
//! the compiled-profile cache). The gap is the serving layer's headline
//! number: what `Engine::prepare` reuse buys per request.
//!
//! Modes: default (full corpus), `--quick` (smaller corpus, fewer
//! repeats), `--smoke` (tiny corpus; register → search → stats-identity
//! check → shutdown; nonzero exit on any failure — used by verify.sh),
//! `--ingest-mix` (the write-path benchmark: sustained `add_documents`
//! rate vs query p95, pre- vs post-merge latency; writes
//! `BENCH_ingest.json`).
//! `--shards N` reshards the corpus into N doc-range segments before
//! binding, exercising the scatter-gather path end to end; the full run
//! also appends a shard-count sweep to `BENCH_serve.json`.

use pimento::Engine;
use pimento_serve::json::Value;
use pimento_serve::{Client, ServeConfig, Server};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Distinct per-user profile: everyone prefers NYC; even users also
/// boost "best bid", odd users prefer red cars.
fn rules_for(user: usize) -> String {
    let mut r = String::from("pi5: x.tag = car & y.tag = car & ftcontains(x, \"NYC\") -> x < y\n");
    if user.is_multiple_of(2) {
        r.push_str(
            "pi4: x.tag = car & y.tag = car & ftcontains(x, \"best bid\") -> x < y {weight 2}\n",
        );
    } else {
        r.push_str(
            "pi1: x.tag = car & y.tag = car & x.color = \"red\" & y.color != \"red\" -> x < y\n",
        );
    }
    r
}

const QUERIES: &[&str] = &[
    r#"//car[ftcontains(., "good condition")]"#,
    r#"//car[ftcontains(., "good condition") and ./price < 2000]"#,
    r#"//car[./price < 1000]"#,
    r#"//car[ftcontains(., "low mileage")]"#,
];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

struct Phase {
    label: &'static str,
    latencies_us: Vec<u64>,
}

impl Phase {
    fn json(&self) -> String {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"mean_us\": {:.1}}}",
            sorted.len(),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.95),
            mean(&sorted)
        )
    }
    fn p50(&self) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        percentile(&sorted, 0.50)
    }
}

fn timed_search(c: &mut Client, user: &str, query: &str) -> Result<u64, String> {
    let t = Instant::now();
    c.search(Some(user), query, 10).map_err(|e| e.to_string())?;
    Ok(t.elapsed().as_micros() as u64)
}

/// `--smoke`: start a tiny server, register, search, check the stats
/// identities, shut down. Exercises the full loopback path in well under
/// a second; any failure is a nonzero exit for verify.sh.
fn smoke(shards: usize) -> Result<(), String> {
    let docs: Vec<String> = (0..shards.max(1))
        .map(|i| pimento_datagen::generate_dealer(i as u64 + 1, 30))
        .collect();
    let mut engine = Engine::from_xml_docs(&docs).map_err(|e| e.to_string())?;
    if shards > 1 {
        engine = engine.reshard(shards).map_err(|e| e.to_string())?;
        eprintln!("serve smoke: sharded into {} segments", engine.shard_count());
    }
    let server = Server::bind(Arc::new(engine), ServeConfig::default()).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    c.register_profile("smoke", &rules_for(0))
        .map_err(|e| e.to_string())?;
    let body = c
        .search(Some("smoke"), QUERIES[0], 5)
        .map_err(|e| e.to_string())?;
    let hits = body
        .get("hits")
        .and_then(Value::as_arr)
        .ok_or("no hits array")?;
    if hits.is_empty() {
        return Err("smoke search returned no hits".to_string());
    }
    let stats = c.shutdown().map_err(|e| e.to_string())?;
    check_identities(&stats)?;
    if shards > 1 {
        // The shards gauge and per-shard scan times must reflect the
        // sharded engine the server actually ran.
        let block = stats.get("shards").ok_or("stats missing `shards`")?;
        let count = block.get("count").and_then(Value::as_u64).unwrap_or(0);
        if count as usize != shards {
            return Err(format!("stats shards.count {count} != {shards}"));
        }
        let scan = block
            .get("scan_us")
            .and_then(Value::as_arr)
            .ok_or("stats missing `shards.scan_us`")?;
        if scan.len() != shards {
            return Err(format!("shards.scan_us has {} slots, want {shards}", scan.len()));
        }
    }
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;
    eprintln!("serve smoke: ok ({} hits, identities hold)", hits.len());
    Ok(())
}

/// Shard-count sweep over the loopback protocol: bind a fresh server per
/// shard count, replay the warm (cached) workload serially, and report
/// per-count latency phases. Bit-identity is covered by the engine tests;
/// this measures what segmentation costs or buys end to end.
fn shard_sweep(engine: &Engine, users: usize) -> Result<Vec<(usize, Phase)>, String> {
    let mut out = Vec::new();
    for &n in &[1usize, 2, 4] {
        let sharded = Arc::new(engine.reshard(n).map_err(|e| e.to_string())?);
        let count = sharded.shard_count();
        let server = Server::bind(sharded, ServeConfig::default()).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run());
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        for u in 0..users {
            c.register_profile(&format!("u{u}"), &rules_for(u))
                .map_err(|e| e.to_string())?;
        }
        let mut phase = Phase {
            label: "shard",
            latencies_us: Vec::new(),
        };
        for round in 0..3 {
            for u in 0..users {
                for q in QUERIES {
                    let lat = timed_search(&mut c, &format!("u{u}"), q)?;
                    // Round 0 warms the plan cache; measure the rest.
                    if round > 0 {
                        phase.latencies_us.push(lat);
                    }
                }
            }
        }
        let stats = c.shutdown().map_err(|e| e.to_string())?;
        check_identities(&stats)?;
        server_thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| e.to_string())?;
        out.push((count, phase));
    }
    Ok(out)
}

fn check_identities(stats: &Value) -> Result<(), String> {
    let g = |k: &str| {
        stats
            .get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("stats missing `{k}`"))
    };
    let answered = g("responses_ok")?
        + g("responses_err")?
        + g("rejected_overload")?
        + g("rejected_deadline")?;
    if g("requests")? != answered {
        return Err(format!(
            "identity broken: requests {} != answered {answered}",
            g("requests")?
        ));
    }
    let cache = stats.get("cache").ok_or("stats missing `cache`")?;
    let c = |k: &str| {
        cache
            .get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("cache missing `{k}`"))
    };
    if c("lookups")? != c("hits")? + c("misses")? {
        return Err("identity broken: cache lookups != hits + misses".to_string());
    }
    Ok(())
}

fn run_clients(
    addr: SocketAddr,
    clients: usize,
    users: usize,
    repeats: usize,
) -> Result<Vec<u64>, String> {
    let mut handles = Vec::new();
    for client_id in 0..clients {
        handles.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
            let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
            let mut lats = Vec::new();
            // Deterministic round-robin over (user, query) pairs, offset
            // per client so the cache sees interleaved users.
            for i in 0..repeats {
                let user = (client_id + i) % users;
                let query = QUERIES[(client_id + i) % QUERIES.len()];
                lats.push(timed_search(&mut c, &format!("u{user}"), query)?);
            }
            Ok(lats)
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(
            h.join()
                .map_err(|_| "client thread panicked".to_string())??,
        );
    }
    Ok(all)
}

/// `--ingest-mix`: the write-path benchmark (BENCH_ingest.json). One
/// server with a durable data dir and the background merger disabled, so
/// delta segments accumulate visibly:
///
///  1. baseline — warm serial query latency against the static corpus;
///  2. mixed    — a single writer streams `add_documents` batches (with
///     periodic deletes) while concurrent clients keep querying: reports
///     the sustained ingest rate and what it does to query p95 (every
///     publish invalidates the plan cache, so the cost is honest);
///  3. pre-merge vs post-merge — the same grown corpus queried first
///     across all its delta segments, then compacted back into doc-range
///     layout: the latency gap is what compaction buys.
fn run_ingest(quick: bool) -> Result<(), String> {
    let (dealers, cars, batches, batch_docs, clients, repeats) = if quick {
        (4, 60, 8, 4, 2, 40)
    } else {
        (8, 150, 24, 8, 4, 120)
    };
    let users = 4;
    eprintln!("loadgen: ingest mix — {dealers} dealer docs x {cars} cars, {batches} batches x {batch_docs} docs");
    let docs: Vec<String> = (0..dealers)
        .map(|i| pimento_datagen::generate_dealer(i as u64 + 1, cars))
        .collect();
    let engine = Engine::from_xml_docs(&docs)
        .and_then(|e| e.reshard(2))
        .map_err(|e| e.to_string())?;
    let boot_shards = engine.shard_count();

    let dir = std::env::temp_dir().join(format!("pimento-loadgen-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        data_dir: Some(dir.clone()),
        merge_threshold: 0, // deltas accumulate; compaction measured explicitly below
        ..ServeConfig::default()
    };
    let server = Server::bind(Arc::new(engine), cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    for u in 0..users {
        c.register_profile(&format!("u{u}"), &rules_for(u))
            .map_err(|e| e.to_string())?;
    }

    // Phase 1: baseline query latency, warmed (round 0 discarded).
    let mut baseline = Phase {
        label: "baseline",
        latencies_us: Vec::new(),
    };
    for round in 0..3 {
        for u in 0..users {
            for q in QUERIES {
                let lat = timed_search(&mut c, &format!("u{u}"), q)?;
                if round > 0 {
                    baseline.latencies_us.push(lat);
                }
            }
        }
    }

    // Phase 2: sustained writes under concurrent query load.
    eprintln!("loadgen: mixed phase ({batches} write batches vs {clients} query clients)...");
    let queriers = std::thread::spawn(move || run_clients(addr, clients, users, repeats));
    let mut write_lat = Phase {
        label: "write",
        latencies_us: Vec::new(),
    };
    let ingest_start = Instant::now();
    let mut next_doc = dealers as u64 + 1;
    for b in 0..batches {
        let batch: Vec<String> = (0..batch_docs)
            .map(|_| {
                let d = pimento_datagen::generate_dealer(next_doc, 10);
                next_doc += 1;
                d
            })
            .collect();
        let t = Instant::now();
        c.add_documents(&batch).map_err(|e| e.to_string())?;
        write_lat.latencies_us.push(t.elapsed().as_micros() as u64);
        if b % 4 == 3 {
            // Periodic deletes keep tombstones on the scatter path.
            let victim = (b as u32 - 3) * batch_docs as u32 + dealers as u32;
            c.delete_documents(&[victim]).map_err(|e| e.to_string())?;
        }
    }
    let ingest_wall = ingest_start.elapsed();
    let under_ingest = Phase {
        label: "queries-under-ingest",
        latencies_us: queriers
            .join()
            .map_err(|_| "query thread panicked".to_string())??,
    };
    let docs_written = batches * batch_docs;
    let ingest_rate = docs_written as f64 / ingest_wall.as_secs_f64();

    // Phase 3a: pre-merge — the grown corpus, one delta segment per batch.
    let mut pre_merge = Phase {
        label: "pre-merge",
        latencies_us: Vec::new(),
    };
    for round in 0..3 {
        for u in 0..users {
            for q in QUERIES {
                let lat = timed_search(&mut c, &format!("u{u}"), q)?;
                if round > 0 {
                    pre_merge.latencies_us.push(lat);
                }
            }
        }
    }
    let stats = c.shutdown().map_err(|e| e.to_string())?;
    check_identities(&stats)?;
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;
    let ingest_block = stats.get("ingest").ok_or("stats missing `ingest`")?;
    let ib = |k: &str| {
        ingest_block
            .get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("ingest stats missing `{k}`"))
    };
    if ib("docs_added")? != docs_written as u64 {
        return Err(format!(
            "ingest identity broken: docs_added {} != {docs_written}",
            ib("docs_added")?
        ));
    }
    let generation = ib("generation")?;
    let final_docs = ib("docs")?;

    // Phase 3b: post-merge — recover the durable corpus and compact it
    // back into doc-range layout, then serve and measure the same load.
    let merged = Engine::from_sharded_dir(&dir)
        .and_then(|e| e.compacted(boot_shards))
        .map_err(|e| e.to_string())?;
    // One delta segment per add batch; delete publishes only rewrite
    // tombstone sidecars and add no segment.
    let delta_segments = batches;
    let server = Server::bind(Arc::new(merged), ServeConfig::default()).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    for u in 0..users {
        c.register_profile(&format!("u{u}"), &rules_for(u))
            .map_err(|e| e.to_string())?;
    }
    let mut post_merge = Phase {
        label: "post-merge",
        latencies_us: Vec::new(),
    };
    for round in 0..3 {
        for u in 0..users {
            for q in QUERIES {
                let lat = timed_search(&mut c, &format!("u{u}"), q)?;
                if round > 0 {
                    post_merge.latencies_us.push(lat);
                }
            }
        }
    }
    let stats = c.shutdown().map_err(|e| e.to_string())?;
    check_identities(&stats)?;
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;

    let json = format!(
        "{{\n  \"workload\": \"serve-ingest-mix\",\n  \"dealers\": {dealers},\n  \
         \"cars_per_dealer\": {cars},\n  \"batches\": {batches},\n  \"batch_docs\": {batch_docs},\n  \
         \"docs_written\": {docs_written},\n  \"ingest_docs_per_s\": {ingest_rate:.0},\n  \
         \"final_generation\": {generation},\n  \"final_docs\": {final_docs},\n  \
         \"delta_segments\": {delta_segments},\n  \
         \"write\": {},\n  \"baseline\": {},\n  \"under_ingest\": {},\n  \
         \"pre_merge\": {},\n  \"post_merge\": {}\n}}\n",
        write_lat.json(),
        baseline.json(),
        under_ingest.json(),
        pre_merge.json(),
        post_merge.json(),
    );
    for phase in [&write_lat, &baseline, &under_ingest, &pre_merge, &post_merge] {
        eprintln!("  {}: {}", phase.label, phase.json());
    }
    eprintln!(
        "  sustained ingest: {ingest_rate:.0} docs/s across {batches} publishes; \
         post-merge p50 {} us vs pre-merge {} us ({delta_segments} delta segments)",
        post_merge.p50(),
        pre_merge.p50()
    );
    std::fs::write("BENCH_ingest.json", &json).map_err(|e| e.to_string())?;
    eprintln!("wrote BENCH_ingest.json");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn run(quick: bool, shards: usize) -> Result<(), String> {
    let (dealers, cars, users, clients, repeats) = if quick {
        (4, 100, 4, 4, 25)
    } else {
        (12, 250, 8, 8, 60)
    };
    eprintln!("loadgen: building {dealers} dealer docs x {cars} cars...");
    let docs: Vec<String> = (0..dealers)
        .map(|i| pimento_datagen::generate_dealer(i as u64 + 1, cars))
        .collect();
    let engine = Engine::from_xml_docs(&docs).map_err(|e| e.to_string())?;
    let main_engine = if shards > 1 {
        let sharded = engine.reshard(shards).map_err(|e| e.to_string())?;
        eprintln!("loadgen: sharded into {} segments", sharded.shard_count());
        Arc::new(sharded)
    } else {
        Arc::new(engine.reshard(1).map_err(|e| e.to_string())?)
    };
    let server = Server::bind(main_engine, ServeConfig::default()).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    for u in 0..users {
        c.register_profile(&format!("u{u}"), &rules_for(u))
            .map_err(|e| e.to_string())?;
    }

    // Cold phase: first touch of every (user, query) pair, serially —
    // each request pays parse + scoping enforcement + VOR compilation
    // (`Engine::prepare`) before executing.
    eprintln!(
        "loadgen: cold phase ({} pairs, serial)...",
        users * QUERIES.len()
    );
    let mut cold = Phase {
        label: "cold",
        latencies_us: Vec::new(),
    };
    for u in 0..users {
        for q in QUERIES {
            cold.latencies_us
                .push(timed_search(&mut c, &format!("u{u}"), q)?);
        }
    }

    // Warm phase: the identical pairs replayed serially — same client,
    // same machine state, the only difference is the compiled-plan cache
    // hit. cold/warm p50 is therefore the per-request cost of `prepare`.
    eprintln!("loadgen: warm phase (same pairs, serial)...");
    let mut warm = Phase {
        label: "warm",
        latencies_us: Vec::new(),
    };
    for round in 0..3 {
        let _ = round;
        for u in 0..users {
            for q in QUERIES {
                warm.latencies_us
                    .push(timed_search(&mut c, &format!("u{u}"), q)?);
            }
        }
    }

    // Concurrent phase: the same cached pairs under parallel load —
    // reported separately (its latencies include queueing delay, so it
    // measures service capacity, not cache effect).
    eprintln!("loadgen: concurrent phase ({clients} clients x {repeats} requests)...");
    let concurrent_start = Instant::now();
    let concurrent = Phase {
        label: "concurrent",
        latencies_us: run_clients(addr, clients, users, repeats)?,
    };
    let concurrent_wall = concurrent_start.elapsed();

    let stats = c.shutdown().map_err(|e| e.to_string())?;
    check_identities(&stats)?;
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;

    let cache = stats.get("cache").ok_or("stats missing cache")?;
    let hits = cache.get("hits").and_then(Value::as_u64).unwrap_or(0);
    let misses = cache.get("misses").and_then(Value::as_u64).unwrap_or(0);
    // Shard-count sweep on fresh servers (same corpus, same workload):
    // what doc-range segmentation costs or buys over the wire.
    eprintln!("loadgen: shard sweep (1/2/4 segments, warm serial)...");
    let sweep = shard_sweep(&engine, users)?;
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(n, p)| format!("    {{\"shards\": {n}, \"warm\": {}}}", p.json()))
        .collect();

    let cold_p50 = cold.p50().max(1);
    let warm_p50 = warm.p50();
    let throughput = concurrent.latencies_us.len() as f64 / concurrent_wall.as_secs_f64();
    let json = format!(
        "{{\n  \"workload\": \"serve-loadgen\",\n  \"dealers\": {dealers},\n  \"cars_per_dealer\": {cars},\n  \
         \"users\": {users},\n  \"queries\": {},\n  \"clients\": {clients},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \"warm_speedup_p50\": {:.2},\n  \
         \"concurrent\": {},\n  \"concurrent_rps\": {:.0},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \
         \"shard_sweep\": [\n{}\n  ]\n}}\n",
        QUERIES.len(),
        cold.json(),
        warm.json(),
        cold_p50 as f64 / warm_p50.max(1) as f64,
        concurrent.json(),
        throughput,
        sweep_json.join(",\n"),
    );
    for phase in [&cold, &warm, &concurrent] {
        eprintln!("  {}: {}", phase.label, phase.json());
    }
    for (n, p) in &sweep {
        eprintln!("  shard sweep x{n}: {}", p.json());
    }
    eprintln!(
        "  warm p50 speedup over cold: {:.2}x (cache {hits} hits / {misses} misses); \
         concurrent throughput {throughput:.0} req/s",
        cold_p50 as f64 / warm_p50.max(1) as f64
    );
    std::fs::write("BENCH_serve.json", &json).map_err(|e| e.to_string())?;
    eprintln!("wrote BENCH_serve.json");
    Ok(())
}

fn main() -> ExitCode {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let ingest_mix = std::env::args().any(|a| a == "--ingest-mix");
    let quick = std::env::args().any(|a| a == "--quick");
    let mut shards = 0usize;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--shards" {
            shards = match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("--shards needs a number");
                    return ExitCode::FAILURE;
                }
            };
        }
    }
    let outcome = if smoke_mode {
        smoke(shards)
    } else if ingest_mix {
        run_ingest(quick)
    } else {
        run(quick, shards)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            ExitCode::FAILURE
        }
    }
}
