//! Shard-count scaling of the scatter-gather engine: reshard a multi-doc
//! XMark corpus into 1/2/4/8 segments and measure the Fig. 5 workload end
//! to end (p50/p95 latency, throughput, and per-segment scan times).
//! Writes `BENCH_shard.json`. Pass `--quick` for a smaller corpus and
//! fewer iterations.

use pimento_bench::perf;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (docs, bytes_per_doc, iters) = if quick {
        (8, 32 * 1024, 10)
    } else {
        (16, 128 * 1024, 40)
    };
    eprintln!(
        "running shard sweep over {docs} x {} KB documents, {iters} iters per shard count...",
        bytes_per_doc / 1024
    );
    let rows = perf::run_shard_sweep(2007, docs, bytes_per_doc, 10, iters, &[1, 2, 4, 8]);
    print!("{}", perf::render_shard_sweep(&rows, docs, bytes_per_doc));
    if rows.windows(2).any(|w| w[0].answers != w[1].answers) {
        eprintln!("WARNING: answer count varied with the shard count — equivalence bug");
        std::process::exit(1);
    }
    let json = perf::shard_sweep_json(&rows, docs, bytes_per_doc, 10);
    match std::fs::write("BENCH_shard.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_shard.json"),
        Err(e) => eprintln!("cannot write BENCH_shard.json: {e}"),
    }
}
