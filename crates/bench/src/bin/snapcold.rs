//! `snapcold` — cold-start comparison of the snapshot formats: legacy v3
//! (collection only, indexes rebuilt on load) vs columnar v4 (packed
//! sections opened as zero-copy views). Writes `BENCH_snapshot.json`.
//!
//! ```text
//! cargo run -p pimento-bench --release --bin snapcold [-- --bytes N --docs N --runs N]
//! ```
//!
//! Honesty notes baked into the harness:
//!
//! * `VmHWM` is process-global and monotonic, so each format is measured
//!   in a **fresh subprocess** (`--measure`, self-spawned): the reported
//!   peak RSS is that variant's alone, not whichever ran first.
//! * The open is timed with the file bytes already in memory, so the
//!   numbers isolate deserialization/rebuild cost from disk I/O.
//! * Both variants answer the Fig. 5 query after opening and report a
//!   bit-level fingerprint; the parent refuses to write the report if
//!   the formats disagree.

use pimento::profile::UserProfile;
use pimento::{Engine, SearchOptions};
use pimento_bench::perf::{peak_rss_kb, time_median};
use pimento_bench::workloads::{fig5_profile, FIG5_QUERY};
use pimento_datagen::xmark;
use pimento_serve::json::Value;
use std::process::{Command, ExitCode};

/// Fold the ranked hits into one order-sensitive 64-bit fingerprint:
/// equal fingerprints mean identical answers and identical score bits.
fn fingerprint(engine: &Engine, profile: &UserProfile) -> u64 {
    let results = engine
        .search(FIG5_QUERY, profile, &SearchOptions::top(10))
        .expect("fig5 query runs");
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for h in &results.hits {
        for part in [
            u64::from(h.elem.doc.0),
            u64::from(h.elem.node.0),
            h.s.to_bits(),
            h.k.to_bits(),
        ] {
            acc = (acc ^ part).wrapping_mul(0x100_0000_01b3);
        }
    }
    acc ^ (results.hits.len() as u64)
}

/// Child mode: open `path` `runs` times, report the median open time,
/// answer quality fingerprint, and this process's peak RSS as one JSON
/// object on stdout.
fn measure(path: &str, runs: usize) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file_bytes = data.len();
    let bytes = bytes::Bytes::from(data);
    let open_median = time_median(runs, || {
        let engine = Engine::from_snapshot_bytes(bytes.clone()).expect("snapshot opens");
        std::hint::black_box(&engine);
    });
    let engine = Engine::from_snapshot_bytes(bytes).expect("snapshot opens");
    let profile = fig5_profile(4, true);
    let fp = fingerprint(&engine, &profile);
    println!(
        "{{\"format\": {}, \"file_bytes\": {file_bytes}, \"open_median_ms\": {:.4}, \
         \"open_runs\": {runs}, \"docs\": {}, \"packed\": {}, \"fingerprint\": \"{fp:016x}\", \
         \"peak_rss_kb\": {}}}",
        engine.snapshot_format().unwrap_or(0),
        open_median.as_secs_f64() * 1000.0,
        engine.db().coll.len(),
        engine.db().tags.is_packed()
            && engine.db().values.is_packed()
            && engine.db().inverted.is_packed(),
        match peak_rss_kb() {
            Some(kb) => kb.to_string(),
            None => "null".to_string(),
        },
    );
    Ok(())
}

/// Run one `--measure` child and parse its JSON report.
fn spawn_measure(path: &str, runs: usize) -> Result<Value, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let out = Command::new(exe)
        .args(["--measure", path, &runs.to_string()])
        .output()
        .map_err(|e| format!("cannot spawn measurement child: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "measurement child failed for {path}: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    Value::parse(text.trim()).map_err(|e| format!("child output not JSON: {e}: {text}"))
}

fn field_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn run(doc_bytes: usize, n_docs: usize, runs: usize) -> Result<(), String> {
    eprintln!("generating {n_docs} XMark document(s) of ~{doc_bytes} bytes each");
    let docs: Vec<String> = (0..n_docs as u64)
        .map(|i| xmark::generate(i, doc_bytes))
        .collect();
    let engine = Engine::from_xml_docs(&docs).map_err(|e| format!("corpus parses: {e}"))?;
    let profile = fig5_profile(4, true);
    let baseline_fp = fingerprint(&engine, &profile);

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let v3_path = dir.join(format!("pimento-snapcold-{pid}.v3.snap"));
    let v4_path = dir.join(format!("pimento-snapcold-{pid}.v4.snap"));
    std::fs::write(&v3_path, engine.save_snapshot_v3()).map_err(|e| e.to_string())?;
    std::fs::write(&v4_path, engine.save_snapshot()).map_err(|e| e.to_string())?;

    let v3 = spawn_measure(&v3_path.to_string_lossy(), runs);
    let v4 = spawn_measure(&v4_path.to_string_lossy(), runs);
    let _ = std::fs::remove_file(&v3_path);
    let _ = std::fs::remove_file(&v4_path);
    let (v3, v4) = (v3?, v4?);

    // Bit-identity gate: a fast cold start that changes answers is a bug,
    // not a result.
    let fp = |v: &Value| {
        v.get("fingerprint")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    let expected = format!("{baseline_fp:016x}");
    if fp(&v3) != expected || fp(&v4) != expected {
        return Err(format!(
            "query fingerprints diverge: built={expected} v3={} v4={}",
            fp(&v3),
            fp(&v4)
        ));
    }
    if v4.get("packed").and_then(Value::as_bool) != Some(true) {
        return Err("v4 open did not produce packed (zero-copy) indexes".to_string());
    }

    let v3_ms = field_f64(&v3, "open_median_ms");
    let v4_ms = field_f64(&v4, "open_median_ms");
    let speedup = v3_ms / v4_ms.max(f64::MIN_POSITIVE);
    let json = format!(
        "{{\n  \"workload\": \"fig5-xmark\",\n  \"docs\": {n_docs},\n  \"doc_bytes\": {doc_bytes},\n  \
         \"query\": {},\n  \"runs\": {runs},\n  \"v3\": {},\n  \"v4\": {},\n  \
         \"cold_open_speedup\": {speedup:.2}\n}}\n",
        Value::Str(FIG5_QUERY.to_string()).render(),
        v3.render().replace('\n', " "),
        v4.render().replace('\n', " "),
    );
    Value::parse(&json).map_err(|e| format!("report is not valid JSON: {e}"))?;
    std::fs::write("BENCH_snapshot.json", &json).map_err(|e| e.to_string())?;
    eprintln!(
        "v3 open {v3_ms:.2} ms, v4 open {v4_ms:.2} ms ({speedup:.2}x); \
         rss v3 {} kB, v4 {} kB",
        field_f64(&v3, "peak_rss_kb"),
        field_f64(&v4, "peak_rss_kb")
    );
    eprintln!("wrote BENCH_snapshot.json");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--measure") {
        let (Some(path), Some(runs)) = (
            args.get(1),
            args.get(2).and_then(|s| s.parse::<usize>().ok()),
        ) else {
            eprintln!("usage: snapcold --measure PATH RUNS");
            return ExitCode::from(2);
        };
        return match measure(path, runs.max(1)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut doc_bytes = 256 * 1024;
    let mut n_docs = 4usize;
    let mut runs = 5usize;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bytes" => doc_bytes = it.next().and_then(|s| s.parse().ok()).unwrap_or(doc_bytes),
            "--docs" => n_docs = it.next().and_then(|s| s.parse().ok()).unwrap_or(n_docs),
            "--runs" => runs = it.next().and_then(|s| s.parse().ok()).unwrap_or(runs),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: snapcold [--bytes N] [--docs N] [--runs N]");
                return ExitCode::from(2);
            }
        }
    }
    match run(doc_bytes, n_docs.max(1), runs.max(1)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
