//! Regenerates **Table 1** (paper §7.1): per-topic effectiveness of
//! personalization on the synthetic INEX-like collection.

use pimento_bench::table1;
use pimento_datagen::inex;

fn main() {
    let stemming = std::env::args().any(|a| a == "--stemming");
    let seed = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2007);
    eprintln!("generating INEX-like corpus (seed {seed})...");
    let corpus = inex::generate(seed);
    eprintln!(
        "{} articles, {} topics; running base + personalized queries (best 5 per element type)...",
        corpus.xml_docs.len(),
        corpus.topics.len()
    );
    let tokenizer = if stemming {
        eprintln!("(stemming relaxation enabled, §7.1)");
        pimento::index::Tokenizer::stemming()
    } else {
        pimento::index::Tokenizer::plain()
    };
    let rows = table1::run_with(&corpus, 5, tokenizer);
    print!("{}", table1::render(&rows));
}
