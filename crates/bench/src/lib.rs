//! # pimento-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! PIMENTO paper's evaluation (§7):
//!
//! * [`table1`] — INEX effectiveness (Table 1):
//!   `cargo run -p pimento-bench --release --bin table1`
//! * [`perf`]::run_fig6 — PushTopkPrune scaling (Fig. 6):
//!   `cargo run -p pimento-bench --release --bin fig6`
//! * [`perf`]::run_fig7 — plan comparison (Fig. 7) and the §7.2 KOR-order
//!   ablation: `cargo run -p pimento-bench --release --bin fig7 [-- --ablation]`
//! * Criterion micro/meso benches: `cargo bench --workspace`.

#![forbid(unsafe_code)]

pub mod perf;
pub mod table1;
pub mod workloads;
