//! Table 1 — effectiveness on the INEX-like collection (paper §7.1).
//!
//! Per topic, the experiment compares the assessor's relevant components
//! against what the personalized query retrieves (best 5 answers per
//! element type, as in the paper), reporting:
//!
//! * **Missed / Out of** (the paper's precision columns): assessed-relevant
//!   components the run failed to retrieve, out of all assessed-relevant;
//! * **Retrieved / Instead of** (the recall columns): how many components
//!   the run returned, against the assessed count — retrieving more than
//!   assessed is what drives the paper's "poor recall" observation.
//!
//! The personalized run derives the profile from the topic *narrative*
//! exactly as §7.1 describes: one keyword ordering rule per narrative
//! phrase (the shorthand expansion), plus a scoping rule that relaxes the
//! query phrase from a hard requirement into an optional score contributor
//! (so narrative-only components can surface at all — the paper's
//! broadening SRs). A baseline run without the profile is reported too,
//! which the paper discusses qualitatively.

use pimento::index::{Collection, Tokenizer};
use pimento::profile::{Atom, KeywordOrderingRule, ScopingRule, UserProfile};
use pimento::{Engine, SearchOptions};
use pimento_datagen::inex::{InexCorpus, InexTopic};
use std::collections::BTreeSet;

/// Result row for one topic (both runs).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Topic number.
    pub topic: u32,
    /// Personalized run: relevant components missed.
    pub missed: usize,
    /// Total assessed-relevant components ("Out of").
    pub out_of: usize,
    /// Personalized run: components retrieved.
    pub retrieved: usize,
    /// The assessed count again ("Instead of").
    pub instead_of: usize,
    /// Baseline (no profile) misses, for the qualitative comparison.
    pub baseline_missed: usize,
    /// Baseline retrieved count.
    pub baseline_retrieved: usize,
}

impl Table1Row {
    /// Precision-style ratio: fraction of assessed-relevant found.
    pub fn found_fraction(&self) -> f64 {
        if self.out_of == 0 {
            return 1.0;
        }
        (self.out_of - self.missed) as f64 / self.out_of as f64
    }
}

/// Element types retrieved per topic: the requested types plus the extra
/// distinguished nodes the paper says it included ("we included
/// distinguished nodes other than the ones requested by the query").
fn retrieval_tags(topic: &InexTopic) -> Vec<&'static str> {
    let mut tags: Vec<&'static str> = topic.target_tags.to_vec();
    for extra in ["p", "sec", "fig"] {
        if !tags.contains(&extra) {
            tags.push(extra);
        }
    }
    tags
}

/// The personalized profile for one topic and one element type.
pub fn topic_profile(topic: &InexTopic, tag: &str) -> UserProfile {
    let mut profile = UserProfile::new().with_scoping(ScopingRule::delete(
        &format!("relax-{}", topic.id),
        vec![Atom::ft(tag, topic.query_phrase)],
        vec![Atom::ft(tag, topic.query_phrase)],
    ));
    for kor in
        KeywordOrderingRule::multi(&format!("narrative-{}", topic.id), tag, topic.related, 1.0)
    {
        profile = profile.with_kor(kor);
    }
    profile
}

/// Run the whole experiment with exact (non-stemmed) keyword matching.
pub fn run(corpus: &InexCorpus, per_type_k: usize) -> Vec<Table1Row> {
    run_with(corpus, per_type_k, Tokenizer::plain())
}

/// Run with an explicit tokenizer — `Tokenizer::stemming()` reproduces the
/// §7.1 relaxation experiment (the paper observed that stemming can
/// *decrease* precision: marginally relevant components with relaxed
/// keyword forms displace exact matches from the top k).
pub fn run_with(corpus: &InexCorpus, per_type_k: usize, tokenizer: Tokenizer) -> Vec<Table1Row> {
    let mut coll = Collection::new();
    for d in &corpus.xml_docs {
        coll.add_xml(d).expect("corpus parses");
    }
    let engine = Engine::with_tokenizer(coll, tokenizer);
    corpus
        .topics
        .iter()
        .map(|topic| run_topic(&engine, corpus, topic, per_type_k))
        .collect()
}

fn run_topic(
    engine: &Engine,
    corpus: &InexCorpus,
    topic: &InexTopic,
    per_type_k: usize,
) -> Table1Row {
    let relevant = &corpus.relevant[&topic.id];
    let mut personalized: BTreeSet<String> = BTreeSet::new();
    let mut baseline: BTreeSet<String> = BTreeSet::new();
    for tag in retrieval_tags(topic) {
        let query = format!(r#"//article//{tag}[about(., "{}")]"#, topic.query_phrase);
        // Baseline: the raw query, no profile.
        baseline.extend(retrieve_cids(
            engine,
            &query,
            &UserProfile::new(),
            per_type_k,
        ));
        // Personalized: relax the phrase + rank by narrative KORs.
        let profile = topic_profile(topic, tag);
        personalized.extend(retrieve_cids(engine, &query, &profile, per_type_k));
    }
    let missed = relevant.difference(&personalized).count();
    let baseline_missed = relevant.difference(&baseline).count();
    Table1Row {
        topic: topic.id,
        missed,
        out_of: relevant.len(),
        retrieved: personalized.len(),
        instead_of: relevant.len(),
        baseline_missed,
        baseline_retrieved: baseline.len(),
    }
}

fn retrieve_cids(engine: &Engine, query: &str, profile: &UserProfile, k: usize) -> Vec<String> {
    let results = engine
        .search(query, profile, &SearchOptions::top(k))
        .expect("query executes");
    let cid_sym = engine.db().coll.symbols().get("cid");
    results
        .hits
        .iter()
        .filter_map(|h| {
            let node = engine.db().coll.node(h.elem);
            cid_sym.and_then(|s| node.attr(s)).map(str::to_string)
        })
        .collect()
}

/// Render the rows in the paper's Table 1 layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1. INEX results (synthetic INEX-like collection)\n");
    out.push_str("                 Precision              Recall\n");
    out.push_str("Topic   Missed  Out of    Retrieved  Instead Of   (baseline missed/retrieved)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<7} {:<7} {:<9} {:<10} {:<12} ({}/{})\n",
            r.topic,
            r.missed,
            r.out_of,
            r.retrieved,
            r.instead_of,
            r.baseline_missed,
            r.baseline_retrieved,
        ));
    }
    let total_missed: usize = rows.iter().map(|r| r.missed).sum();
    let total_rel: usize = rows.iter().map(|r| r.out_of).sum();
    let base_missed: usize = rows.iter().map(|r| r.baseline_missed).sum();
    out.push_str(&format!(
        "TOTAL   personalized missed {total_missed}/{total_rel}; baseline missed {base_missed}/{total_rel}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_datagen::inex::generate;

    #[test]
    fn personalization_recovers_narrative_only_components() {
        let corpus = generate(42);
        let rows = run(&corpus, 5);
        assert_eq!(rows.len(), 8);
        let total_missed: usize = rows.iter().map(|r| r.missed).sum();
        let base_missed: usize = rows.iter().map(|r| r.baseline_missed).sum();
        assert!(
            total_missed < base_missed,
            "personalization must miss fewer components: {total_missed} vs {base_missed}"
        );
        // Good precision on average (the paper's qualitative claim).
        let avg: f64 = rows.iter().map(Table1Row::found_fraction).sum::<f64>() / rows.len() as f64;
        assert!(avg > 0.6, "average found fraction {avg}");
        // Recall-style over-retrieval: we retrieve more than assessed.
        assert!(rows.iter().any(|r| r.retrieved > r.instead_of));
    }

    #[test]
    fn render_contains_all_topics() {
        let corpus = generate(1);
        let rows = run(&corpus, 5);
        let text = render(&rows);
        for id in [130, 131, 132, 140, 141, 142, 145, 151] {
            assert!(text.contains(&id.to_string()), "{text}");
        }
        assert!(text.contains("Instead Of"));
    }

    #[test]
    fn retrieval_tags_extend_requested() {
        let topics = pimento_datagen::inex::topics();
        let t130 = &topics[0];
        let tags = retrieval_tags(t130);
        assert!(tags.contains(&"p") && tags.contains(&"sec") && tags.contains(&"fig"));
    }
}
