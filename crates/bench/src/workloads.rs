//! The concrete workloads of the paper's evaluation section.

use pimento::profile::{KeywordOrderingRule, UserProfile, ValueOrderingRule};

/// The Fig. 5 XMark query: `ad(person, business) &
/// ftcontains(business, "Yes")`.
pub const FIG5_QUERY: &str = r#"//person[ftcontains(.//business, "Yes")]"#;

/// The Fig. 5 keyword ordering rules π1–π4, in the paper's order.
///
/// Weights follow keyword rarity in the generated corpus (idf-style:
/// "male" matches ~50% of persons, "College" 25%, "United States" and
/// "Phoenix" 10%). The paper's engine contributed *scores* per KOR and
/// §7.2 reasons about "the KOR which contributes the highest score", so
/// non-uniform contributions are part of the workload's character — and
/// they are what lets the pushed prunes below later KORs actually fire.
pub fn fig5_kors() -> Vec<KeywordOrderingRule> {
    vec![
        KeywordOrderingRule::weighted("pi1", "person", "male", 0.7),
        KeywordOrderingRule::weighted("pi2", "person", "United States", 2.3),
        KeywordOrderingRule::weighted("pi3", "person", "College", 1.4),
        KeywordOrderingRule::weighted("pi4", "person", "Phoenix", 2.3),
    ]
}

/// The Fig. 5 value-based ordering rule π5: `x.age = 33 & y.age ≠ 33 →
/// x ≺ y`.
pub fn fig5_vor() -> ValueOrderingRule {
    ValueOrderingRule::prefer_value("pi5", "person", "age", "33")
}

/// The full Fig. 5 profile with the first `n_kors` keyword rules
/// (the Fig. 6/7 sweeps vary 1..=4) and optionally π5.
pub fn fig5_profile(n_kors: usize, with_vor: bool) -> UserProfile {
    let mut profile = UserProfile::new();
    for kor in fig5_kors().into_iter().take(n_kors) {
        profile = profile.with_kor(kor);
    }
    if with_vor {
        profile = profile.with_vor(fig5_vor());
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_pieces() {
        assert_eq!(fig5_kors().len(), 4);
        let p = fig5_profile(2, true);
        assert_eq!(p.kors.len(), 2);
        assert_eq!(p.vors.len(), 1);
        assert_eq!(p.kors[0].id, "pi1");
        let p0 = fig5_profile(0, false);
        assert!(p0.is_empty());
    }

    #[test]
    fn fig5_query_parses() {
        pimento::tpq::parse_tpq(FIG5_QUERY).unwrap();
    }
}
