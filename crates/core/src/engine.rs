//! The PIMENTO engine: index a collection once, then answer personalized
//! top-k queries against it.

use crate::error::Error;
use crate::result::{SearchOptions, SearchResult, SearchResults};
use pimento_algebra::{build_plan, Database, Matcher, PlanSpec, RankContext};
use pimento_index::ft_contains;
use pimento_index::{Collection, Tokenizer};
use pimento_profile::{PersonalizedQuery, UserProfile};
use pimento_tpq::{minimized, parse_tpq, simplify_predicates, Tpq};
use std::sync::Arc;

/// The search engine: an indexed collection plus query-time machinery.
#[derive(Debug)]
pub struct Engine {
    db: Database,
    /// Snapshot format version this engine was opened from (`Some(3)` for
    /// a legacy rebuild-on-load snapshot, `Some(4)` for a zero-copy
    /// columnar one), or `None` when built by parsing XML.
    snapshot_format: Option<u32>,
}

impl Engine {
    /// Index an existing collection (plain tokenizer).
    pub fn new(coll: Collection) -> Self {
        Engine {
            db: Database::index_plain(coll),
            snapshot_format: None,
        }
    }

    /// Index with an explicit tokenizer (e.g. stemming, §7.1).
    pub fn with_tokenizer(coll: Collection, tokenizer: Tokenizer) -> Self {
        Engine {
            db: Database::index(coll, tokenizer),
            snapshot_format: None,
        }
    }

    /// Convenience: parse and index XML documents.
    pub fn from_xml_docs<S: AsRef<str>>(docs: &[S]) -> Result<Self, Error> {
        let mut coll = Collection::new();
        for d in docs {
            coll.add_xml(d.as_ref())?;
        }
        Ok(Engine::new(coll))
    }

    /// Parse documents on `threads` worker threads, then index.
    pub fn from_xml_docs_parallel<S: AsRef<str> + Sync>(
        docs: &[S],
        threads: usize,
    ) -> Result<Self, Error> {
        let coll = pimento_index::build_collection_parallel(docs, threads)?;
        Ok(Engine::new(coll))
    }

    /// Serialize the engine to a columnar (v4) binary snapshot: documents
    /// plus the already-built indexes, laid out so that
    /// [`Engine::from_snapshot`] opens them as zero-copy views instead of
    /// rebuilding them.
    pub fn save_snapshot(&self) -> bytes::Bytes {
        pimento_index::save_index(
            &self.db.coll,
            &self.db.inverted,
            &self.db.tags,
            &self.db.values,
        )
    }

    /// Serialize only the collection in the legacy v3 format (indexes are
    /// rebuilt on load). Kept for format-migration tests and benchmarks.
    pub fn save_snapshot_v3(&self) -> bytes::Bytes {
        pimento_index::save_collection(&self.db.coll)
    }

    /// Reopen an engine from a snapshot. Columnar (v4) snapshots back the
    /// indexes with packed views over the buffer — no per-posting heap
    /// rebuild; legacy v3 snapshots fall back to a full index rebuild.
    pub fn from_snapshot(data: &[u8]) -> Result<Self, Error> {
        Self::from_snapshot_bytes(bytes::Bytes::copy_from_slice(data))
    }

    /// Like [`Engine::from_snapshot`], but takes ownership of the buffer so
    /// the columnar open path is zero-copy end to end.
    pub fn from_snapshot_bytes(data: bytes::Bytes) -> Result<Self, Error> {
        if pimento_index::is_columnar(&data) {
            let opened = pimento_index::open_index(data)?;
            let db = Database::from_parts(
                opened.collection,
                opened.inverted,
                opened.tags,
                opened.values,
            );
            Ok(Engine {
                db,
                snapshot_format: Some(pimento_index::COLUMNAR_VERSION),
            })
        } else {
            let coll = pimento_index::load_collection(&data)?;
            let mut engine = Engine::new(coll);
            engine.snapshot_format = Some(pimento_index::FORMAT_VERSION);
            Ok(engine)
        }
    }

    /// Snapshot format version this engine was opened from, if any.
    pub fn snapshot_format(&self) -> Option<u32> {
        self.snapshot_format
    }

    /// The underlying indexed database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Add a document to a live engine; indexes update incrementally.
    pub fn add_xml(&mut self, xml: &str) -> Result<(), Error> {
        self.db.add_xml(xml)?;
        Ok(())
    }

    /// Personalize `query` under `profile`: run the static analyses and
    /// produce the annotated query (flock encoding) without executing it.
    pub fn personalize(
        &self,
        query: &str,
        profile: &UserProfile,
    ) -> Result<PersonalizedQuery, Error> {
        let tpq = parse_tpq(query)?;
        Ok(profile.enforce_scoping(&tpq)?)
    }

    /// Full personalized search: rewrite, plan, execute, rank, top-k.
    pub fn search(
        &self,
        query: &str,
        profile: &UserProfile,
        opts: &SearchOptions,
    ) -> Result<SearchResults, Error> {
        let tpq = parse_tpq(query)?;
        self.search_tpq(&tpq, profile, opts)
    }

    /// Like [`Engine::search`], for an already-built pattern.
    pub fn search_tpq(
        &self,
        query: &Tpq,
        profile: &UserProfile,
        opts: &SearchOptions,
    ) -> Result<SearchResults, Error> {
        let prepared = self.prepare_tpq(query, profile, opts.minimize)?;
        self.run_prepared(&prepared, opts)
    }

    /// Compile a query + profile into a reusable [`PreparedSearch`]: the
    /// static analysis, flock encoding, and keyword analysis run once;
    /// [`Engine::run_prepared`] then executes with different options
    /// (k, strategy, pagination) without re-preparing.
    pub fn prepare(&self, query: &str, profile: &UserProfile) -> Result<PreparedSearch, Error> {
        let tpq = parse_tpq(query)?;
        self.prepare_tpq(&tpq, profile, false)
    }

    fn prepare_tpq(
        &self,
        query: &Tpq,
        profile: &UserProfile,
        minimize: bool,
    ) -> Result<PreparedSearch, Error> {
        let query = if minimize {
            let mut q = minimized(query);
            // Keyword predicates stay (they contribute to S); implied
            // comparisons are dead weight.
            simplify_predicates(&mut q, false);
            q
        } else {
            query.clone()
        };
        let pq = profile.enforce_scoping(&query)?;
        // Static-verifier consistency (debug builds): scoping succeeded,
        // so the combined verifier must not report an unresolvable SR
        // conflict cycle for the same profile/query pair. (VOR ambiguity
        // is deliberately not asserted here — `winnow` legitimately
        // executes ambiguous profiles over the incomparable frontier; the
        // `pimento lint` subcommand is the gate for those.)
        if cfg!(debug_assertions) {
            let report = profile.verify(&query);
            debug_assert!(
                !report.has_sr_cycle(),
                "enforce_scoping succeeded but Profile::verify reports an SR conflict cycle:\n{report}"
            );
        }
        Ok(PreparedSearch {
            matcher: Arc::new(Matcher::new(&self.db, pq)),
            kors: profile.kors.clone(),
            rank: RankContext::new(profile.vors.clone(), profile.rank_order),
            profile: profile.clone(),
        })
    }

    /// Execute a [`PreparedSearch`] with the given options.
    pub fn run_prepared(
        &self,
        prepared: &PreparedSearch,
        opts: &SearchOptions,
    ) -> Result<SearchResults, Error> {
        if opts.k == 0 {
            return Err(Error::InvalidK);
        }
        let matcher = Arc::clone(&prepared.matcher);
        let rank = Arc::clone(&prepared.rank);
        let profile = &prepared.profile;
        let spec = Self::plan_spec(prepared, opts);
        // `0` = machine parallelism, via the same knob resolution as
        // ingest and the serve worker pool (see `index::resolve_threads`).
        let threads = pimento_index::resolve_threads(opts.threads);
        // Tracing registries are single-threaded, so a trace request pins
        // execution to the sequential plan.
        let (answers, stats, worker_stats, explain, trace) = if opts.trace || threads <= 1 {
            let plan = build_plan(&self.db, Arc::clone(&matcher), &prepared.kors, rank, spec);
            // Static plan verification (debug builds): every plan about to
            // execute must pass its shape verifier.
            if cfg!(debug_assertions) {
                if let Err(err) = plan.verify() {
                    debug_assert!(false, "about to execute an unsound plan: {err}");
                }
            }
            let explain = plan.explain();
            let (answers, stats, trace) = plan.execute_analyzed(&self.db);
            (answers, stats, vec![stats], explain, trace)
        } else {
            let explain = build_plan(
                &self.db,
                Arc::clone(&matcher),
                &prepared.kors,
                Arc::clone(&rank),
                spec,
            )
            .explain();
            let (answers, stats, worker_stats) = pimento_algebra::execute_parallel(
                &self.db,
                Arc::clone(&matcher),
                &prepared.kors,
                rank,
                spec,
                threads,
            );
            let explain = if worker_stats.len() > 1 {
                format!("parallel(workers={}) over {explain}", worker_stats.len())
            } else {
                explain
            };
            (answers, stats, worker_stats, explain, String::new())
        };
        let hits = answers
            .into_iter()
            .skip(opts.offset)
            .enumerate()
            .map(|(i, a)| {
                let mut hit = SearchResult::from_answer(&self.db, opts.offset + i + 1, a);
                self.annotate_hit(&matcher, profile, &mut hit);
                hit
            })
            .collect();
        Ok(SearchResults {
            hits,
            stats,
            worker_stats,
            explain,
            trace,
            applied_rules: matcher.personalized().flock.applied_rules.clone(),
            skipped_rules: matcher.personalized().flock.skipped_rules.clone(),
            flock_size: matcher.personalized().flock.members.len(),
        })
    }
    /// The plan spec `opts` selects for `prepared`: either the heuristic
    /// choice (`opts.auto`) or the explicit settings, always targeting
    /// the top `k + offset` so pruning bounds stay exact under
    /// pagination. Shared by [`Engine::run_prepared`] and
    /// [`Engine::explain_prepared`] so what EXPLAIN shows is what runs.
    fn plan_spec(prepared: &PreparedSearch, opts: &SearchOptions) -> PlanSpec {
        if opts.auto {
            PlanSpec {
                trace: opts.trace,
                ..pimento_algebra::choose_spec(
                    &prepared.matcher,
                    &prepared.profile.kors,
                    opts.k + opts.offset,
                )
            }
        } else {
            PlanSpec {
                k: opts.k + opts.offset,
                strategy: opts.strategy,
                kor_order: opts.kor_order,
                eval_mode: opts.eval_mode,
                trace: opts.trace,
            }
        }
    }

    /// The operator-tree description of the plan [`Engine::run_prepared`]
    /// would execute for `prepared` under `opts`, without executing it.
    /// Backs the `explain` protocol command and `--explain` on the CLI's
    /// prepared path.
    pub fn explain_prepared(
        &self,
        prepared: &PreparedSearch,
        opts: &SearchOptions,
    ) -> Result<String, Error> {
        if opts.k == 0 {
            return Err(Error::InvalidK);
        }
        let spec = Self::plan_spec(prepared, opts);
        let explain = build_plan(
            &self.db,
            Arc::clone(&prepared.matcher),
            &prepared.kors,
            Arc::clone(&prepared.rank),
            spec,
        )
        .explain();
        let threads = pimento_index::resolve_threads(opts.threads);
        Ok(if !opts.trace && threads > 1 {
            format!("parallel(workers<={threads}) over {explain}")
        } else {
            explain
        })
    }

    /// Statically verify the plans [`Engine::run_prepared`] would assemble
    /// for `prepared` at this `k` — one [`pimento_algebra::PlanShape`]
    /// verification per strategy, without executing anything. Used by the
    /// `pimento lint` subcommand.
    pub fn verify_plans(
        &self,
        prepared: &PreparedSearch,
        k: usize,
    ) -> Vec<(
        pimento_algebra::PlanStrategy,
        Result<(), pimento_algebra::PlanVerifyError>,
    )> {
        pimento_algebra::PlanStrategy::all()
            .into_iter()
            .map(|strategy| {
                let plan = build_plan(
                    &self.db,
                    Arc::clone(&prepared.matcher),
                    &prepared.kors,
                    Arc::clone(&prepared.rank),
                    PlanSpec::new(k, strategy),
                );
                (strategy, plan.verify())
            })
            .collect()
    }

    /// Chomicki's *winnow* over the personalized answers (paper §2): the
    /// `≺_V`-maximal answers only — every answer no other answer is
    /// strictly preferred to — instead of a top-k cut. KOR scores and the
    /// query score order the winnowed set.
    pub fn winnow(
        &self,
        query: &str,
        profile: &UserProfile,
        limit: usize,
    ) -> Result<SearchResults, Error> {
        use pimento_algebra::{Answer, ExecStats, VorFetch};
        use pimento_algebra::{BoxedOp, QueryEval};
        let tpq = pimento_tpq::parse_tpq(query)?;
        let pq = profile.enforce_scoping(&tpq)?;
        let matcher = Arc::new(Matcher::new(&self.db, pq));
        let rank = RankContext::new(profile.vors.clone(), profile.rank_order);
        // Materialize all personalized answers (no pruning — winnow needs
        // the full dominance picture), then layer-0 filter.
        let mut stats = ExecStats::default();
        let mut op: BoxedOp = Box::new(QueryEval::new(Arc::clone(&matcher)));
        for phrase in matcher.optional_keywords() {
            op = Box::new(pimento_algebra::SrPredJoin::new(
                op,
                Arc::clone(&matcher),
                phrase,
            ));
        }
        for kor in profile.kors.clone() {
            op = Box::new(pimento_algebra::KorJoin::new(op, &self.db, kor));
        }
        if !rank.vors.is_empty() {
            op = Box::new(VorFetch::new(op, &self.db, &rank));
        }
        let mut answers: Vec<Answer> = Vec::new();
        while let Some(a) = op.next(&self.db, &mut stats) {
            answers.push(a);
        }
        let winnowed = rank.winnow(answers, &mut stats);
        stats.emitted = winnowed.len().min(limit) as u64;
        let hits = winnowed
            .into_iter()
            .take(limit)
            .enumerate()
            .map(|(i, a)| {
                let mut hit = SearchResult::from_answer(&self.db, i + 1, a);
                self.annotate_hit(&matcher, profile, &mut hit);
                hit
            })
            .collect();
        Ok(SearchResults {
            hits,
            stats,
            worker_stats: vec![stats],
            explain: "winnow(≺_V-maximal) -> kor* -> SrPredJoin* -> QueryEval".to_string(),
            trace: String::new(),
            applied_rules: matcher.personalized().flock.applied_rules.clone(),
            skipped_rules: matcher.personalized().flock.skipped_rules.clone(),
            flock_size: matcher.personalized().flock.members.len(),
        })
    }

    /// Post-hoc provenance: which KORs and which SR-contributed optional
    /// predicates this hit satisfies. Re-evaluating over the top k only is
    /// far cheaper than threading provenance through every operator.
    fn annotate_hit(&self, matcher: &Matcher, profile: &UserProfile, hit: &mut SearchResult) {
        let elem = pimento_algebra::entry_of(&self.db, hit.elem.doc, hit.elem.node);
        let tag = self
            .db
            .coll
            .node(hit.elem)
            .tag()
            .map(|t| self.db.coll.symbols().name(t))
            .unwrap_or("");
        for kor in &profile.kors {
            if kor.tag != "*" && !kor.tag.eq_ignore_ascii_case(tag) {
                continue;
            }
            let tokens = self.db.inverted.analyze(&kor.phrase);
            if ft_contains(&self.db.inverted, &elem, &tokens) {
                hit.satisfied_kors.push(kor.id.clone());
            }
        }
        let mut probes = 0u64;
        for pred in matcher.optional_keywords() {
            if matcher.eval_pred_near(&self.db, &pred, &elem, &mut probes) > 0.0 {
                hit.satisfied_optional.push(pred.describe());
            }
        }
    }
}

/// A compiled query + profile pair (see [`Engine::prepare`]). Tied to
/// the engine it was prepared against, and `Send + Sync`: the serve
/// layer caches one `Arc<PreparedSearch>` per (user, query) and executes
/// it from many worker threads concurrently (a compile-time assertion in
/// the tests pins this guarantee).
pub struct PreparedSearch {
    matcher: Arc<Matcher>,
    kors: Vec<pimento_profile::KeywordOrderingRule>,
    rank: Arc<RankContext>,
    profile: UserProfile,
}

impl PreparedSearch {
    /// Scoping rules that fired during preparation.
    pub fn applied_rules(&self) -> &[String] {
        &self.matcher.personalized().flock.applied_rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_profile::{Atom, KeywordOrderingRule, ScopingRule, ValueOrderingRule};

    const CARS: &str = r#"<dealer>
        <car><description>Powerful car. I am selling my 2001 car at the best bid. It is in good condition as I was the only driver. I used it to go to work in NYC.</description><date>2001</date><price>500</price><owner>John Smith</owner><horsepower>200</horsepower></car>
        <car><description>Low mileage. Bought on 11/2005. Eager seller. good condition</description><color>red</color><horsepower>120</horsepower><mileage>50.000</mileage><price>500</price><location>NYC</location></car>
        <car><description>american classic in good condition</description><price>1500</price><color>blue</color><mileage>90000</mileage></car>
        <car><description>rusty</description><price>200</price></car>
    </dealer>"#;

    fn engine() -> Engine {
        Engine::from_xml_docs(&[CARS]).unwrap()
    }

    /// Compile-time pin: the serve layer shares `Arc<PreparedSearch>`
    /// (and `Arc<Engine>`) across worker threads. If a future change
    /// introduces a non-`Send`/non-`Sync` field (an `Rc`, a `RefCell`),
    /// this stops compiling instead of the server subtly breaking.
    #[test]
    fn prepared_search_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedSearch>();
        assert_send_sync::<Engine>();
    }

    #[test]
    fn unpersonalized_search_ranks_by_s() {
        let e = engine();
        let res = e
            .search(
                r#"//car[ftcontains(., "good condition") and ./price < 2000]"#,
                &UserProfile::new(),
                &SearchOptions::top(3),
            )
            .unwrap();
        assert_eq!(res.hits.len(), 3);
        assert!(res.hits[0].s >= res.hits[1].s);
        assert_eq!(res.flock_size, 1);
    }

    #[test]
    fn paper_running_example_end_to_end() {
        let e = engine();
        // Profile: ρ2 (add "american"), ρ3 (drop "low mileage"), π1 (red
        // preferred), π4/π5 (best bid / NYC KORs).
        let profile = UserProfile::new()
            .with_scoping(ScopingRule::add(
                "rho2",
                vec![
                    Atom::pc("car", "description"),
                    Atom::ft("description", "good condition"),
                ],
                vec![Atom::ft("description", "american")],
            ))
            .with_scoping(ScopingRule::delete(
                "rho3",
                vec![
                    Atom::pc("car", "description"),
                    Atom::ft("description", "good condition"),
                ],
                vec![Atom::ft("description", "low mileage")],
            ))
            .with_vor(ValueOrderingRule::prefer_value(
                "pi1", "car", "color", "red",
            ))
            .with_kor(KeywordOrderingRule::new("pi4", "car", "best bid"))
            .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
        let query = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#;
        let res = e.search(query, &profile, &SearchOptions::top(3)).unwrap();
        // Without the profile only car 2 matches (good condition + low
        // mileage + price). With ρ3 the "low mileage" requirement is
        // optional, so cars 1 and 3 qualify too.
        assert_eq!(res.hits.len(), 3);
        assert_eq!(res.applied_rules, vec!["rho2", "rho3"]);
        // Car 1 satisfies both KORs (best bid + NYC) → ranked first.
        assert!(
            res.hits[0].k >= 2.0 - 1e-9,
            "K of top hit: {}",
            res.hits[0].k
        );
        assert!(res.hits[0].text.contains("best bid"));
    }

    #[test]
    fn vor_breaks_kor_ties() {
        let e = engine();
        let profile = UserProfile::new().with_vor(ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        ));
        let res = e
            .search(
                r#"//car[ftcontains(., "good condition")]"#,
                &profile,
                &SearchOptions::top(3),
            )
            .unwrap();
        // All tie on K = 0; the red car must beat the blue/colorless ones
        // in its V layer... among answers with equal K the red one leads.
        assert!(res.hits[0].text.contains("red") || res.hits[0].xml.contains("red"));
    }

    #[test]
    fn invalid_inputs() {
        let e = engine();
        assert!(matches!(
            e.search("//car[", &UserProfile::new(), &SearchOptions::top(1)),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            e.search("//car", &UserProfile::new(), &SearchOptions::top(0)),
            Err(Error::InvalidK)
        ));
        assert!(Engine::from_xml_docs(&["<broken>"]).is_err());
    }

    #[test]
    fn explain_is_populated() {
        let e = engine();
        let res = e
            .search("//car", &UserProfile::new(), &SearchOptions::top(1))
            .unwrap();
        assert!(res.explain.contains("QueryEval"));
        assert!(res.explain.contains("topkPrune"));
    }

    #[test]
    fn minimize_option_simplifies_query() {
        let e = engine();
        let opts = SearchOptions {
            minimize: true,
            ..SearchOptions::top(2)
        };
        let res = e
            .search("//car[./price and ./price]", &UserProfile::new(), &opts)
            .unwrap();
        assert_eq!(res.hits.len(), 2);
    }

    #[test]
    fn stats_populated() {
        let e = engine();
        let res = e
            .search("//car", &UserProfile::new(), &SearchOptions::top(2))
            .unwrap();
        assert_eq!(res.stats.base_answers, 4);
        assert_eq!(res.stats.emitted, 2);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use pimento_profile::UserProfile;

    #[test]
    fn snapshot_roundtrip_preserves_search_results() {
        let docs: Vec<String> = (0..4)
            .map(|i| pimento_datagen::generate_dealer(i, 15))
            .collect();
        let original = Engine::from_xml_docs(&docs).unwrap();
        let snapshot = original.save_snapshot();
        let restored = Engine::from_snapshot(&snapshot).unwrap();
        let q = r#"//car[ftcontains(., "good condition")]"#;
        let a = original
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        let b = restored
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        assert_eq!(a.elem_refs(), b.elem_refs());
        assert!(Engine::from_snapshot(&snapshot[..5]).is_err());
    }

    #[test]
    fn columnar_snapshot_opens_packed_and_reports_format() {
        let docs: Vec<String> = (0..3)
            .map(|i| pimento_datagen::generate_dealer(i, 8))
            .collect();
        let original = Engine::from_xml_docs(&docs).unwrap();
        assert_eq!(original.snapshot_format(), None);

        let v4 = original.save_snapshot();
        let opened = Engine::from_snapshot_bytes(bytes::Bytes::from(v4.to_vec())).unwrap();
        assert_eq!(
            opened.snapshot_format(),
            Some(pimento_index::COLUMNAR_VERSION)
        );
        assert!(opened.db().tags.is_packed());
        assert!(opened.db().values.is_packed());
        assert!(opened.db().inverted.is_packed());

        let v3 = original.save_snapshot_v3();
        let legacy = Engine::from_snapshot(&v3).unwrap();
        assert_eq!(
            legacy.snapshot_format(),
            Some(pimento_index::FORMAT_VERSION)
        );
        assert!(!legacy.db().tags.is_packed());

        let q = r#"//car[ftcontains(., "good condition")]"#;
        let a = original
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        let b = opened
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        let c = legacy
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        assert_eq!(a.elem_refs(), b.elem_refs());
        assert_eq!(a.elem_refs(), c.elem_refs());
        let bits = |r: &SearchResults| -> Vec<(u64, u64)> {
            r.hits
                .iter()
                .map(|h| (h.s.to_bits(), h.k.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(bits(&a), bits(&c));
    }

    #[test]
    fn parallel_ingest_matches_sequential() {
        let docs: Vec<String> = (0..8)
            .map(|i| pimento_datagen::generate_dealer(100 + i, 10))
            .collect();
        let seq = Engine::from_xml_docs(&docs).unwrap();
        let par = Engine::from_xml_docs_parallel(&docs, 4).unwrap();
        let q = r#"//car[./price < 2000]"#;
        let a = seq
            .search(q, &UserProfile::new(), &SearchOptions::top(20))
            .unwrap();
        let b = par
            .search(q, &UserProfile::new(), &SearchOptions::top(20))
            .unwrap();
        assert_eq!(a.elem_refs().len(), b.elem_refs().len());
    }
}

#[cfg(test)]
mod provenance_tests {
    use super::*;
    use pimento_profile::{Atom, KeywordOrderingRule, ScopingRule, UserProfile};

    #[test]
    fn hits_carry_kor_and_sr_provenance() {
        let e = Engine::from_xml_docs(&[r#"<dealer>
            <car><description>good condition in NYC with american flair</description><price>100</price></car>
            <car><description>good condition</description><price>200</price></car>
        </dealer>"#])
        .unwrap();
        let profile = UserProfile::new()
            .with_scoping(ScopingRule::add(
                "rho2",
                vec![Atom::ft("description", "good condition")],
                vec![Atom::ft("description", "american")],
            ))
            .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
        let res = e
            .search(
                r#"//car[ftcontains(./description, "good condition")]"#,
                &profile,
                &SearchOptions::top(2),
            )
            .unwrap();
        assert_eq!(res.applied_rules, vec!["rho2"]);
        let top = &res.hits[0];
        assert!(top.text.contains("NYC"));
        assert_eq!(top.satisfied_kors, vec!["pi5"]);
        assert_eq!(top.satisfied_optional, vec!["american"]);
        let second = &res.hits[1];
        assert!(second.satisfied_kors.is_empty());
        assert!(second.satisfied_optional.is_empty());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use pimento_profile::{KeywordOrderingRule, UserProfile};

    #[test]
    fn trace_reports_per_operator_rows() {
        let e = Engine::from_xml_docs(&[pimento_datagen::generate_dealer(5, 60)]).unwrap();
        let profile = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
        let opts = SearchOptions {
            trace: true,
            ..SearchOptions::top(5)
        };
        let res = e
            .search(r#"//car[ftcontains(., "good condition")]"#, &profile, &opts)
            .unwrap();
        assert!(res.trace.contains("QueryEval"), "{}", res.trace);
        assert!(res.trace.contains("kor[nyc]"), "{}", res.trace);
        assert!(res.trace.contains("topkPrune(final)"), "{}", res.trace);
        // Untraced runs carry no report.
        let res2 = e
            .search(r#"//car"#, &profile, &SearchOptions::top(5))
            .unwrap();
        assert!(res2.trace.is_empty());
    }
}

#[cfg(test)]
mod winnow_tests {
    use super::*;
    use pimento_profile::{UserProfile, ValueOrderingRule};

    #[test]
    fn winnow_returns_only_maximal_answers() {
        let e = Engine::from_xml_docs(&[r#"<dealer>
            <car><color>red</color><mileage>90000</mileage><price>1</price></car>
            <car><color>blue</color><mileage>10000</mileage><price>2</price></car>
            <car><color>red</color><mileage>10000</mileage><price>3</price></car>
        </dealer>"#])
        .unwrap();
        // Priorities: mileage first, then red — car 3 dominates both others.
        let profile = UserProfile::new()
            .with_vor(ValueOrderingRule::prefer_smaller("m", "car", "mileage").with_priority(0))
            .with_vor(ValueOrderingRule::prefer_value("c", "car", "color", "red").with_priority(1));
        let res = e.winnow("//car", &profile, 10).unwrap();
        assert_eq!(res.hits.len(), 1, "one dominant answer");
        assert!(res.hits[0].xml.contains("<price>3</price>"));
        // Without priorities π1/π2 are ambiguous: red-high-mileage and
        // blue-low-mileage are mutually unordered, so winnow keeps the
        // incomparable frontier.
        let ambiguous = UserProfile::new()
            .with_vor(ValueOrderingRule::prefer_smaller("m", "car", "mileage"))
            .with_vor(ValueOrderingRule::prefer_value("c", "car", "color", "red"));
        let res2 = e.winnow("//car", &ambiguous, 10).unwrap();
        assert!(!res2.hits.is_empty());
        assert!(res2
            .hits
            .iter()
            .all(|h| !h.xml.contains("<price>1</price>") || res2.hits.len() > 1));
    }

    #[test]
    fn winnow_without_vors_keeps_everything() {
        let e = Engine::from_xml_docs(&["<a><b>x</b><b>y</b></a>"]).unwrap();
        let res = e.winnow("//b", &UserProfile::new(), 10).unwrap();
        assert_eq!(res.hits.len(), 2);
        let limited = e.winnow("//b", &UserProfile::new(), 1).unwrap();
        assert_eq!(limited.hits.len(), 1);
    }
}

#[cfg(test)]
mod prepared_tests {
    use super::*;
    use pimento_profile::{KeywordOrderingRule, UserProfile};

    #[test]
    fn prepared_search_reuses_across_options() {
        let e = Engine::from_xml_docs(&[pimento_datagen::generate_dealer(17, 40)]).unwrap();
        let profile = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
        let q = r#"//car[ftcontains(., "good condition")]"#;
        let prepared = e.prepare(q, &profile).unwrap();
        let top3 = e.run_prepared(&prepared, &SearchOptions::top(3)).unwrap();
        let top5 = e.run_prepared(&prepared, &SearchOptions::top(5)).unwrap();
        assert_eq!(top3.hits.len().min(3), top3.hits.len());
        assert_eq!(
            top5.elem_refs()[..top3.hits.len()],
            top3.elem_refs()[..],
            "prefix stability across k"
        );
        // Same answers as the unprepared path.
        let direct = e.search(q, &profile, &SearchOptions::top(5)).unwrap();
        assert_eq!(direct.elem_refs(), top5.elem_refs());
        // Invalid k still rejected.
        assert!(e
            .run_prepared(
                &prepared,
                &SearchOptions {
                    k: 0,
                    ..SearchOptions::top(1)
                }
            )
            .is_err());
    }
}
