//! The PIMENTO engine: index a collection once, then answer personalized
//! top-k queries against it.

use crate::error::Error;
use crate::result::{SearchOptions, SearchResult, SearchResults};
use crate::segment::{execute_scatter, Segment};
use pimento_algebra::{
    build_merge_safe_plan, build_plan, Answer, Database, Matcher, PlanSpec, RankContext,
};
use pimento_index::ft_contains;
use pimento_faults::vfs::Vfs;
use pimento_index::{
    global_doc_freqs, split_ranges, Collection, DocId, ManifestEntry, Scorer, ShardManifest,
    Tokenizer, TombstoneSet, MANIFEST_FILE,
};
use pimento_profile::{PersonalizedQuery, UserProfile};
use pimento_tpq::{minimized, parse_tpq, simplify_predicates, Tpq};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// The search engine: an indexed corpus plus query-time machinery.
///
/// The corpus lives in one or more doc-range [`Segment`]s. Every
/// constructor builds the monolithic case — exactly one segment with doc
/// base 0 — and [`Engine::reshard`] splits it into `n` self-contained
/// segments whose scatter-gather execution is bit-identical to the
/// monolithic scan (see [`crate::segment`] / DESIGN.md §15).
#[derive(Debug)]
pub struct Engine {
    /// Doc-range segments in corpus order. Invariant: never empty, bases
    /// are the prefix sums of segment sizes starting at 0.
    segments: Vec<Arc<Segment>>,
    /// Snapshot format version this engine was opened from (`Some(3)` for
    /// a legacy rebuild-on-load snapshot, `Some(4)` for a zero-copy
    /// columnar one), or `None` when built by parsing XML.
    snapshot_format: Option<u32>,
    /// Corpus generation: 0 for a freshly built corpus, bumped by every
    /// published write (ingest, delete, merge compaction). Prepared-plan
    /// caches key on this exactly as they key on profile generations.
    generation: u64,
}

impl Engine {
    /// Wrap one monolithic database as a single segment with doc base 0.
    fn monolithic(db: Database, snapshot_format: Option<u32>) -> Self {
        Engine {
            segments: vec![Arc::new(Segment::new(db, 0))],
            snapshot_format,
            generation: 0,
        }
    }

    /// Assemble an engine from pre-built segments (the reshard and
    /// sharded-snapshot-load paths); rejects an empty segment list.
    fn from_segments(
        segments: Vec<Arc<Segment>>,
        snapshot_format: Option<u32>,
    ) -> Result<Self, Error> {
        if segments.is_empty() {
            return Err(Error::Shard("engine needs at least one segment"));
        }
        Ok(Engine {
            segments,
            snapshot_format,
            generation: 0,
        })
    }

    /// The same engine stamped with `generation` (builder-style; used by
    /// the write path when publishing a new corpus generation).
    #[must_use]
    pub fn at_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Corpus generation this engine serves (see the `generation` field).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The first segment — the whole corpus in the monolithic case. All
    /// search paths go through this fallible accessor so the serving path
    /// stays panic-free even if the non-empty invariant were ever broken.
    fn seg0(&self) -> Result<&Arc<Segment>, Error> {
        self.segments
            .first()
            .ok_or(Error::Shard("engine has no segments"))
    }

    /// The newest (last) segment. Its collection carries the corpus
    /// symbol table *including* symbols interned by delta segments —
    /// symbol-table extension is append-only, so the newest table is a
    /// superset of every older segment's and ids agree on the shared
    /// prefix. Matchers compile against this segment.
    fn seg_newest(&self) -> Result<&Arc<Segment>, Error> {
        self.segments
            .last()
            .ok_or(Error::Shard("engine has no segments"))
    }

    /// Index an existing collection (plain tokenizer).
    pub fn new(coll: Collection) -> Self {
        Engine::monolithic(Database::index_plain(coll), None)
    }

    /// Index with an explicit tokenizer (e.g. stemming, §7.1).
    pub fn with_tokenizer(coll: Collection, tokenizer: Tokenizer) -> Self {
        Engine::monolithic(Database::index(coll, tokenizer), None)
    }

    /// Convenience: parse and index XML documents.
    pub fn from_xml_docs<S: AsRef<str>>(docs: &[S]) -> Result<Self, Error> {
        let mut coll = Collection::new();
        for d in docs {
            coll.add_xml(d.as_ref())?;
        }
        Ok(Engine::new(coll))
    }

    /// Parse documents on `threads` worker threads, then index.
    pub fn from_xml_docs_parallel<S: AsRef<str> + Sync>(
        docs: &[S],
        threads: usize,
    ) -> Result<Self, Error> {
        let coll = pimento_index::build_collection_parallel(docs, threads)?;
        Ok(Engine::new(coll))
    }

    /// Serialize the engine to a columnar (v4) binary snapshot: documents
    /// plus the already-built indexes, laid out so that
    /// [`Engine::from_snapshot`] opens them as zero-copy views instead of
    /// rebuilding them. A sharded engine flattens back to one monolithic
    /// snapshot; use [`Engine::save_sharded_snapshot`] to keep the
    /// per-segment layout.
    pub fn save_snapshot(&self) -> bytes::Bytes {
        if self.segments.len() > 1 {
            let tokenizer = self.db().inverted.tokenizer();
            let Ok(full) = self.collapse_collection(false) else {
                return bytes::Bytes::new();
            };
            let db = Database::index(full, tokenizer);
            return pimento_index::save_index(&db.coll, &db.inverted, &db.tags, &db.values);
        }
        let db = self.db();
        pimento_index::save_index(&db.coll, &db.inverted, &db.tags, &db.values)
    }

    /// Serialize only the collection in the legacy v3 format (indexes are
    /// rebuilt on load). Kept for format-migration tests and benchmarks.
    pub fn save_snapshot_v3(&self) -> bytes::Bytes {
        if self.segments.len() > 1 {
            return match self.collapse_collection(false) {
                Ok(full) => pimento_index::save_collection(&full),
                Err(_) => bytes::Bytes::new(),
            };
        }
        pimento_index::save_collection(&self.db().coll)
    }

    /// Serialize segment `i` to its v4 columnar byte image (the unit the
    /// durable ingest store writes with its temp+fsync+rename discipline).
    pub fn segment_bytes(&self, i: usize) -> Result<bytes::Bytes, Error> {
        let seg = self
            .segments
            .get(i)
            .ok_or(Error::Shard("segment index out of range"))?;
        let db = seg.db();
        Ok(pimento_index::save_index(
            &db.coll,
            &db.inverted,
            &db.tags,
            &db.values,
        ))
    }

    /// The manifest describing this engine's segment layout, using the
    /// given per-segment file names (one per segment). Tombstone sidecar
    /// names are filled in for segments with deletions.
    pub fn manifest_for(&self, files: &[String]) -> Result<ShardManifest, Error> {
        if files.len() != self.segments.len() {
            return Err(Error::Shard("one file name per segment required"));
        }
        let mut manifest = ShardManifest {
            generation: self.generation,
            ..ShardManifest::default()
        };
        for (seg, file) in self.segments.iter().zip(files) {
            let tombstones = seg
                .db()
                .tombstones()
                .filter(|t| !t.is_empty())
                .map(|_| ShardManifest::tombstone_file_name(file, self.generation));
            manifest.segments.push(ManifestEntry {
                file: file.clone(),
                doc_base: seg.doc_base(),
                docs: seg.doc_count() as u32,
                tombstones,
            });
        }
        Ok(manifest)
    }

    /// Write a sharded snapshot directory: one v4 columnar file per
    /// segment plus a [`ShardManifest`] (v2 when the engine carries a
    /// nonzero generation or tombstones, v1 otherwise).
    /// [`Engine::from_sharded_dir`] reopens each segment through the
    /// zero-copy columnar path.
    pub fn save_sharded_snapshot(&self, dir: &Path) -> Result<(), Error> {
        self.save_sharded_snapshot_vfs(&pimento_faults::vfs::StdVfs, dir)
    }

    /// [`Engine::save_sharded_snapshot`] against an explicit [`Vfs`].
    /// Every artifact is published durably (temp file → fsync → rename
    /// → directory fsync) and the manifest is written last, so the
    /// rename of `MANIFEST` is the commit point: a crash anywhere in
    /// here leaves either the previous manifest (pointing at the
    /// previous, untouched artifacts) or the complete new snapshot.
    pub fn save_sharded_snapshot_vfs(&self, vfs: &dyn Vfs, dir: &Path) -> Result<(), Error> {
        vfs.create_dir_all(dir)
            .map_err(|e| crate::error::classify_io(dir, &e))?;
        let files: Vec<String> = (0..self.segments.len())
            .map(ShardManifest::segment_file_name)
            .collect();
        let manifest = self.manifest_for(&files)?;
        let durable = |name: &str, bytes: &[u8]| {
            pimento_faults::vfs::write_durable(vfs, dir, name, bytes)
                .map_err(|e| crate::error::classify_io(&dir.join(name), &e))
        };
        for (i, entry) in manifest.segments.iter().enumerate() {
            let data = self.segment_bytes(i)?;
            durable(&entry.file, &data)?;
            if let (Some(t), Some(tombs)) = (&entry.tombstones, self.segments[i].db().tombstones())
            {
                durable(t, tombs.render().as_bytes())?;
            }
        }
        durable(MANIFEST_FILE, manifest.render().as_bytes())
    }

    /// Reopen a sharded snapshot directory written by
    /// [`Engine::save_sharded_snapshot`]: each segment opens through the
    /// zero-copy columnar path, and corpus-wide scoring statistics are
    /// recomputed by exact integer summation across segments — so search
    /// results are bit-identical to the engine that was saved.
    pub fn from_sharded_dir(dir: &Path) -> Result<Self, Error> {
        Self::from_sharded_dir_vfs(&pimento_faults::vfs::StdVfs, dir)
    }

    /// [`Engine::from_sharded_dir`] against an explicit [`Vfs`] — the
    /// recovery path the crash harness drives through [`SimVfs`]. Every
    /// decode failure surfaces as a typed error; nothing here panics on
    /// torn or truncated artifacts.
    ///
    /// [`SimVfs`]: pimento_faults::vfs
    pub fn from_sharded_dir_vfs(vfs: &dyn Vfs, dir: &Path) -> Result<Self, Error> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let raw = vfs
            .read(&manifest_path)
            .map_err(|e| crate::error::classify_io(&manifest_path, &e))?;
        let text = String::from_utf8(raw).map_err(|_| {
            Error::Snapshot(pimento_index::PersistError::BadManifest(
                "manifest is not UTF-8",
            ))
        })?;
        let manifest = ShardManifest::parse(&text)?;
        let mut dbs = Vec::with_capacity(manifest.segments.len());
        for entry in &manifest.segments {
            let path = dir.join(&entry.file);
            let data = vfs
                .read(&path)
                .map_err(|e| crate::error::classify_io(&path, &e))?;
            let opened = pimento_index::open_index(bytes::Bytes::from(data))?;
            let mut db = Database::from_parts(
                opened.collection,
                opened.inverted,
                opened.tags,
                opened.values,
            );
            if db.coll.len() as u32 != entry.docs {
                return Err(Error::Snapshot(pimento_index::PersistError::BadManifest(
                    "segment document count disagrees with its file",
                )));
            }
            if let Some(t) = &entry.tombstones {
                let tpath = dir.join(t);
                let traw = vfs
                    .read(&tpath)
                    .map_err(|e| crate::error::classify_io(&tpath, &e))?;
                let ttext = String::from_utf8(traw).map_err(|_| {
                    Error::Snapshot(pimento_index::PersistError::BadManifest(
                        "tombstone sidecar is not UTF-8",
                    ))
                })?;
                let tombs = TombstoneSet::parse(&ttext)?;
                if tombs.iter().any(|d| d.0 >= entry.docs) {
                    return Err(Error::Snapshot(pimento_index::PersistError::BadManifest(
                        "tombstone doc id outside its segment",
                    )));
                }
                db = db.with_tombstones(Some(Arc::new(tombs)));
            }
            dbs.push(db);
        }
        if dbs.len() > 1 {
            let num_docs = manifest.num_docs();
            let df = Arc::new(global_doc_freqs(
                &dbs.iter().map(|d| &d.inverted).collect::<Vec<_>>(),
            ));
            for db in &mut dbs {
                db.scorer = Scorer::with_corpus_stats(num_docs, Arc::clone(&df));
            }
        }
        let segments = dbs
            .into_iter()
            .zip(&manifest.segments)
            .map(|(db, entry)| Arc::new(Segment::new(db, entry.doc_base)))
            .collect();
        Ok(Engine::from_segments(segments, Some(pimento_index::COLUMNAR_VERSION))?
            .at_generation(manifest.generation))
    }

    /// Reopen an engine from a snapshot. Columnar (v4) snapshots back the
    /// indexes with packed views over the buffer — no per-posting heap
    /// rebuild; legacy v3 snapshots fall back to a full index rebuild.
    pub fn from_snapshot(data: &[u8]) -> Result<Self, Error> {
        Self::from_snapshot_bytes(bytes::Bytes::copy_from_slice(data))
    }

    /// Like [`Engine::from_snapshot`], but takes ownership of the buffer so
    /// the columnar open path is zero-copy end to end.
    pub fn from_snapshot_bytes(data: bytes::Bytes) -> Result<Self, Error> {
        if pimento_index::is_columnar(&data) {
            let opened = pimento_index::open_index(data)?;
            let db = Database::from_parts(
                opened.collection,
                opened.inverted,
                opened.tags,
                opened.values,
            );
            Ok(Engine::monolithic(
                db,
                Some(pimento_index::COLUMNAR_VERSION),
            ))
        } else {
            let coll = pimento_index::load_collection(&data)?;
            let mut engine = Engine::new(coll);
            engine.snapshot_format = Some(pimento_index::FORMAT_VERSION);
            Ok(engine)
        }
    }

    /// Snapshot format version this engine was opened from, if any.
    pub fn snapshot_format(&self) -> Option<u32> {
        self.snapshot_format
    }

    /// The primary (first) segment's indexed database — the whole corpus
    /// unless the engine was resharded. Panics only if the non-empty
    /// segment invariant is broken, which every constructor enforces;
    /// internal search paths use the fallible accessor instead.
    pub fn db(&self) -> &Database {
        self.segments[0].db()
    }

    /// The doc-range segments in corpus order (one segment, base 0, for
    /// a monolithic engine).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Number of segments (1 = monolithic).
    pub fn shard_count(&self) -> usize {
        self.segments.len()
    }

    /// Total documents across all segments.
    pub fn num_docs(&self) -> usize {
        self.segments.iter().map(|s| s.doc_count()).sum()
    }

    /// Resolve a corpus-global doc id to its owning segment and the
    /// segment-local doc id. `None` when the id is outside every segment.
    fn locate(&self, doc: DocId) -> Option<(&Arc<Segment>, DocId)> {
        for seg in &self.segments {
            let base = seg.doc_base();
            if doc.0 >= base && ((doc.0 - base) as usize) < seg.doc_count() {
                return Some((seg, DocId(doc.0 - base)));
            }
        }
        None
    }

    /// Flatten every segment back into one collection in corpus order,
    /// carrying the full symbol table. The *newest* segment's table is
    /// the corpus table: delta segments extend it append-only, so it is
    /// a superset of every older segment's copy with identical ids on
    /// the shared prefix. `live_only` skips tombstoned documents (the
    /// merge-compaction input).
    fn collapse_collection(&self, live_only: bool) -> Result<Collection, Error> {
        let symbols = self.seg_newest()?.db().coll.symbols().clone();
        let mut docs = Vec::with_capacity(self.num_docs());
        for seg in &self.segments {
            let db = seg.db();
            for (doc_id, doc) in db.coll.iter() {
                if live_only && db.is_deleted(doc_id) {
                    continue;
                }
                docs.push(doc.clone());
            }
        }
        Ok(Collection::from_parts(symbols, docs))
    }

    /// Rebuild this engine's corpus as `shards` doc-range segments (the
    /// sharded builder). Each segment is indexed independently over its
    /// slice but carries the full corpus symbol table and a corpus-stats
    /// scorer, so prepared plans remain valid across segments and
    /// scatter-gather results are bit-identical to the monolithic scan.
    /// `shards <= 1` (or a corpus of at most one document) rebuilds the
    /// monolithic engine.
    pub fn reshard(&self, shards: usize) -> Result<Engine, Error> {
        self.reshard_ranges(split_ranges(self.num_docs(), shards))
    }

    /// Like [`Engine::reshard`], but with explicit interior split points
    /// (document indexes). Out-of-range and duplicate boundaries are
    /// ignored. Exists so equivalence tests can drive *arbitrary*
    /// doc-range partitions, not just the even ones.
    pub fn reshard_at(&self, boundaries: &[usize]) -> Result<Engine, Error> {
        let n = self.num_docs();
        let mut cuts: Vec<usize> = boundaries
            .iter()
            .copied()
            .filter(|&b| b > 0 && b < n)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut ranges = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0usize;
        for cut in cuts {
            ranges.push(start..cut);
            start = cut;
        }
        ranges.push(start..n);
        self.reshard_ranges(ranges)
    }

    fn reshard_ranges(&self, ranges: Vec<Range<usize>>) -> Result<Engine, Error> {
        let tokenizer = self.seg0()?.db().inverted.tokenizer();
        let full = self.collapse_collection(false)?;
        Self::build_sharded(full, tokenizer, ranges)
    }

    /// Index `full` as one segment per range (monolithic when `ranges`
    /// has at most one) with corpus-global scoring statistics — the
    /// common tail of [`Engine::reshard`] and [`Engine::compacted`].
    fn build_sharded(
        full: Collection,
        tokenizer: Tokenizer,
        ranges: Vec<Range<usize>>,
    ) -> Result<Engine, Error> {
        if ranges.len() <= 1 {
            return Ok(Engine::monolithic(Database::index(full, tokenizer), None));
        }
        let mut dbs: Vec<Database> = ranges
            .iter()
            .map(|r| Database::index(full.subset(r.clone()), tokenizer))
            .collect();
        // Corpus-wide scoring statistics by exact integer summation: the
        // ranges partition the corpus, so every `idf` input equals what
        // the monolithic index reports.
        let num_docs = full.len() as u32;
        let df = Arc::new(global_doc_freqs(
            &dbs.iter().map(|d| &d.inverted).collect::<Vec<_>>(),
        ));
        for db in &mut dbs {
            db.scorer = Scorer::with_corpus_stats(num_docs, Arc::clone(&df));
        }
        let segments = dbs
            .into_iter()
            .zip(&ranges)
            .map(|(db, r)| Arc::new(Segment::new(db, r.start as u32)))
            .collect();
        Engine::from_segments(segments, None)
    }

    // ------------------------------------------------------------------
    // The write path (DESIGN.md §16): pure transforms producing the next
    // corpus generation. The engine itself is immutable — `pimento-ingest`
    // owns the swap cell and the durability protocol around these.
    // ------------------------------------------------------------------

    /// A new engine with `docs` appended as one immutable delta segment,
    /// at generation `generation() + 1`.
    ///
    /// The delta's collection starts from the newest segment's symbol
    /// table (append-only extension: existing ids keep their meaning,
    /// new tags intern past the old ceiling), and *every* segment —
    /// existing ones by a cheap `Arc` republication, the delta by
    /// construction — gets a scorer over the grown corpus statistics, so
    /// scatter-gather results stay bit-identical to a monolithic rebuild
    /// of the whole corpus.
    pub fn with_ingested<S: AsRef<str>>(&self, docs: &[S]) -> Result<Engine, Error> {
        if docs.is_empty() {
            return Err(Error::Ingest("empty document batch".to_string()));
        }
        let newest = self.seg_newest()?;
        let tokenizer = newest.db().inverted.tokenizer();
        let mut delta_coll = Collection::from_parts(newest.db().coll.symbols().clone(), Vec::new());
        for doc in docs {
            delta_coll.add_xml(doc.as_ref())?;
        }
        let delta_db = Database::index(delta_coll, tokenizer);
        let num_docs = (self.num_docs() + docs.len()) as u32;
        let mut inverteds: Vec<_> = self.segments.iter().map(|s| &s.db().inverted).collect();
        inverteds.push(&delta_db.inverted);
        let df = Arc::new(global_doc_freqs(&inverteds));
        let scorer = Scorer::with_corpus_stats(num_docs, Arc::clone(&df));
        let mut segments: Vec<Arc<Segment>> = self
            .segments
            .iter()
            .map(|seg| {
                Arc::new(Segment::new(
                    seg.db().with_scorer(scorer.clone()),
                    seg.doc_base(),
                ))
            })
            .collect();
        segments.push(Arc::new(Segment::new(
            delta_db.with_scorer(scorer),
            self.num_docs() as u32,
        )));
        Ok(Engine::from_segments(segments, None)?.at_generation(self.generation + 1))
    }

    /// A new engine with the given corpus-global doc ids tombstoned, at
    /// generation `generation() + 1`, plus the count of documents that
    /// were live before this call.
    ///
    /// Tombstoned documents vanish from query results immediately (they
    /// are dropped at the base of every per-segment scan), but scoring
    /// statistics keep counting them until the next merge compaction
    /// rebuilds the corpus without them — Lucene's delete semantics,
    /// documented in DESIGN.md §16. Unknown ids are a typed error;
    /// deleting an already-deleted document is a no-op.
    pub fn with_deletes(&self, ids: &[u32]) -> Result<(Engine, usize), Error> {
        if ids.is_empty() {
            return Err(Error::Ingest("empty delete batch".to_string()));
        }
        let num_docs = self.num_docs() as u32;
        // Per-segment new tombstone sets, cloned lazily from the current.
        let mut sets: Vec<Option<TombstoneSet>> = vec![None; self.segments.len()];
        let mut newly = 0usize;
        for &id in ids {
            if id >= num_docs {
                return Err(Error::Ingest(format!(
                    "document id {id} outside the corpus (0..{num_docs})"
                )));
            }
            let (index, local) = self
                .segments
                .iter()
                .position(|seg| {
                    id >= seg.doc_base() && ((id - seg.doc_base()) as usize) < seg.doc_count()
                })
                .map(|i| (i, DocId(id - self.segments[i].doc_base())))
                .ok_or(Error::Shard("doc id outside every segment"))?;
            let set = sets[index].get_or_insert_with(|| {
                self.segments[index]
                    .db()
                    .tombstones()
                    .map(|t| (**t).clone())
                    .unwrap_or_default()
            });
            if set.insert(local) {
                newly += 1;
            }
        }
        let segments = self
            .segments
            .iter()
            .zip(sets)
            .map(|(seg, set)| match set {
                Some(set) => Arc::new(Segment::new(
                    seg.db().with_tombstones(Some(Arc::new(set))),
                    seg.doc_base(),
                )),
                None => Arc::clone(seg),
            })
            .collect();
        Ok((
            Engine::from_segments(segments, None)?.at_generation(self.generation + 1),
            newly,
        ))
    }

    /// Merge compaction: rebuild the live corpus (tombstoned documents
    /// dropped, surviving documents renumbered in corpus order — exactly
    /// the ids a monolithic rebuild would assign) as `shards` doc-range
    /// segments, at generation `generation() + 1`.
    pub fn compacted(&self, shards: usize) -> Result<Engine, Error> {
        let tokenizer = self.seg0()?.db().inverted.tokenizer();
        let live = self.collapse_collection(true)?;
        if live.is_empty() {
            return Err(Error::Ingest(
                "compaction would empty the corpus entirely".to_string(),
            ));
        }
        let ranges = split_ranges(live.len(), shards);
        Ok(Self::build_sharded(live, tokenizer, ranges)?.at_generation(self.generation + 1))
    }

    /// Number of tombstoned (deleted but not yet merged away) documents.
    pub fn deleted_docs(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.db().deleted_count() as usize)
            .sum()
    }

    /// Documents visible to queries: total minus tombstoned.
    pub fn live_docs(&self) -> usize {
        self.num_docs() - self.deleted_docs()
    }

    /// Add a document to a live engine; indexes update incrementally.
    /// Only valid on a monolithic (single-segment) engine — a sharded
    /// corpus is immutable (rebuild or [`Engine::reshard`] instead).
    pub fn add_xml(&mut self, xml: &str) -> Result<(), Error> {
        if self.segments.len() > 1 {
            return Err(Error::Shard(
                "cannot add documents to a sharded engine; rebuild it monolithic first",
            ));
        }
        let seg = self
            .segments
            .first_mut()
            .ok_or(Error::Shard("engine has no segments"))?;
        let seg = Arc::get_mut(seg).ok_or(Error::Shard(
            "engine segment is shared; cannot mutate in place",
        ))?;
        seg.db_mut().add_xml(xml)?;
        Ok(())
    }

    /// Personalize `query` under `profile`: run the static analyses and
    /// produce the annotated query (flock encoding) without executing it.
    pub fn personalize(
        &self,
        query: &str,
        profile: &UserProfile,
    ) -> Result<PersonalizedQuery, Error> {
        let tpq = parse_tpq(query)?;
        Ok(profile.enforce_scoping(&tpq)?)
    }

    /// Full personalized search: rewrite, plan, execute, rank, top-k.
    pub fn search(
        &self,
        query: &str,
        profile: &UserProfile,
        opts: &SearchOptions,
    ) -> Result<SearchResults, Error> {
        let tpq = parse_tpq(query)?;
        self.search_tpq(&tpq, profile, opts)
    }

    /// Like [`Engine::search`], for an already-built pattern.
    pub fn search_tpq(
        &self,
        query: &Tpq,
        profile: &UserProfile,
        opts: &SearchOptions,
    ) -> Result<SearchResults, Error> {
        let prepared = self.prepare_tpq(query, profile, opts.minimize)?;
        self.run_prepared(&prepared, opts)
    }

    /// Compile a query + profile into a reusable [`PreparedSearch`]: the
    /// static analysis, flock encoding, and keyword analysis run once;
    /// [`Engine::run_prepared`] then executes with different options
    /// (k, strategy, pagination) without re-preparing.
    pub fn prepare(&self, query: &str, profile: &UserProfile) -> Result<PreparedSearch, Error> {
        let tpq = parse_tpq(query)?;
        self.prepare_tpq(&tpq, profile, false)
    }

    fn prepare_tpq(
        &self,
        query: &Tpq,
        profile: &UserProfile,
        minimize: bool,
    ) -> Result<PreparedSearch, Error> {
        let query = if minimize {
            let mut q = minimized(query);
            // Keyword predicates stay (they contribute to S); implied
            // comparisons are dead weight.
            simplify_predicates(&mut q, false);
            q
        } else {
            query.clone()
        };
        let pq = profile.enforce_scoping(&query)?;
        // Static-verifier consistency (debug builds): scoping succeeded,
        // so the combined verifier must not report an unresolvable SR
        // conflict cycle for the same profile/query pair. (VOR ambiguity
        // is deliberately not asserted here — `winnow` legitimately
        // executes ambiguous profiles over the incomparable frontier; the
        // `pimento lint` subcommand is the gate for those.)
        if cfg!(debug_assertions) {
            let report = profile.verify(&query);
            debug_assert!(
                !report.has_sr_cycle(),
                "enforce_scoping succeeded but Profile::verify reports an SR conflict cycle:\n{report}"
            );
        }
        // The matcher compiles against the *newest* segment's database,
        // but it is valid for *every* segment: symbol ids are
        // corpus-global (the newest table is the append-only superset of
        // every older segment's copy) and scoring bounds read the
        // corpus-stats scorer — which is why prepared-plan cache keys
        // need no shard component, only the corpus generation.
        Ok(PreparedSearch {
            matcher: Arc::new(Matcher::new(self.seg_newest()?.db(), pq)),
            kors: profile.kors.clone(),
            rank: RankContext::new(profile.vors.clone(), profile.rank_order),
            profile: profile.clone(),
        })
    }

    /// Execute a [`PreparedSearch`] with the given options.
    pub fn run_prepared(
        &self,
        prepared: &PreparedSearch,
        opts: &SearchOptions,
    ) -> Result<SearchResults, Error> {
        if opts.k == 0 {
            return Err(Error::InvalidK);
        }
        let matcher = Arc::clone(&prepared.matcher);
        let rank = Arc::clone(&prepared.rank);
        let profile = &prepared.profile;
        let spec = Self::plan_spec(prepared, opts);
        // `0` = machine parallelism, via the same knob resolution as
        // ingest and the serve worker pool (see `index::resolve_threads`).
        let threads = pimento_index::resolve_threads(opts.threads);
        let db = self.seg0()?.db();
        // Tracing registries are single-threaded, so a trace request pins
        // execution to the sequential plan (scatter-gather runs its
        // segments sequentially under trace for the same reason).
        let (answers, stats, worker_stats, explain, trace, shard_times_us) = if self
            .segments
            .len()
            > 1
        {
            let lanes = if opts.shards > 0 { opts.shards } else { threads };
            let run = execute_scatter(
                &self.segments,
                &matcher,
                &prepared.kors,
                &rank,
                spec,
                lanes,
            );
            let per_segment = build_merge_safe_plan(
                db,
                Arc::clone(&matcher),
                &prepared.kors,
                Arc::clone(&rank),
                PlanSpec {
                    trace: false,
                    ..spec
                },
            )
            .explain();
            let explain = format!("scatter(shards={}) over {per_segment}", self.segments.len());
            (
                run.answers,
                run.stats,
                run.shard_stats,
                explain,
                run.traces,
                run.shard_times_us,
            )
        } else if opts.trace || threads <= 1 {
            let plan = build_plan(db, Arc::clone(&matcher), &prepared.kors, rank, spec);
            // Static plan verification (debug builds): every plan about to
            // execute must pass its shape verifier.
            if cfg!(debug_assertions) {
                if let Err(err) = plan.verify() {
                    debug_assert!(false, "about to execute an unsound plan: {err}");
                }
            }
            let explain = plan.explain();
            let (answers, stats, trace) = plan.execute_analyzed(db);
            (answers, stats, vec![stats], explain, trace, Vec::new())
        } else {
            let explain = build_plan(
                db,
                Arc::clone(&matcher),
                &prepared.kors,
                Arc::clone(&rank),
                spec,
            )
            .explain();
            let (answers, stats, worker_stats) = pimento_algebra::execute_parallel(
                db,
                Arc::clone(&matcher),
                &prepared.kors,
                rank,
                spec,
                threads,
            );
            let explain = if worker_stats.len() > 1 {
                format!("parallel(workers={}) over {explain}", worker_stats.len())
            } else {
                explain
            };
            (answers, stats, worker_stats, explain, String::new(), Vec::new())
        };
        let hits = answers
            .into_iter()
            .skip(opts.offset)
            .enumerate()
            .map(|(i, a)| self.materialize_hit(&matcher, profile, opts.offset + i + 1, a))
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(SearchResults {
            hits,
            stats,
            worker_stats,
            shard_times_us,
            explain,
            trace,
            applied_rules: matcher.personalized().flock.applied_rules.clone(),
            skipped_rules: matcher.personalized().flock.skipped_rules.clone(),
            flock_size: matcher.personalized().flock.members.len(),
        })
    }

    /// Turn a ranked answer (global doc ids) into a display hit: resolve
    /// the owning segment, materialize snippet/XML against that segment's
    /// database with the segment-local doc id, annotate provenance, then
    /// restore the global id. On a monolithic engine this is the identity
    /// mapping (one segment, base 0).
    fn materialize_hit(
        &self,
        matcher: &Matcher,
        profile: &UserProfile,
        rank: usize,
        mut a: Answer,
    ) -> Result<SearchResult, Error> {
        let (seg, local) = self
            .locate(a.elem.doc)
            .ok_or(Error::Shard("answer references a document outside every segment"))?;
        let global = a.elem.doc;
        a.elem.doc = local;
        let mut hit = SearchResult::from_answer(seg.db(), rank, a);
        Self::annotate_hit(seg.db(), matcher, profile, &mut hit);
        hit.elem.doc = global;
        Ok(hit)
    }
    /// The plan spec `opts` selects for `prepared`: either the heuristic
    /// choice (`opts.auto`) or the explicit settings, always targeting
    /// the top `k + offset` so pruning bounds stay exact under
    /// pagination. Shared by [`Engine::run_prepared`] and
    /// [`Engine::explain_prepared`] so what EXPLAIN shows is what runs.
    fn plan_spec(prepared: &PreparedSearch, opts: &SearchOptions) -> PlanSpec {
        if opts.auto {
            PlanSpec {
                trace: opts.trace,
                ..pimento_algebra::choose_spec(
                    &prepared.matcher,
                    &prepared.profile.kors,
                    opts.k + opts.offset,
                )
            }
        } else {
            PlanSpec {
                k: opts.k + opts.offset,
                strategy: opts.strategy,
                kor_order: opts.kor_order,
                eval_mode: opts.eval_mode,
                trace: opts.trace,
            }
        }
    }

    /// The operator-tree description of the plan [`Engine::run_prepared`]
    /// would execute for `prepared` under `opts`, without executing it.
    /// Backs the `explain` protocol command and `--explain` on the CLI's
    /// prepared path.
    pub fn explain_prepared(
        &self,
        prepared: &PreparedSearch,
        opts: &SearchOptions,
    ) -> Result<String, Error> {
        if opts.k == 0 {
            return Err(Error::InvalidK);
        }
        let spec = Self::plan_spec(prepared, opts);
        let db = self.seg0()?.db();
        if self.segments.len() > 1 {
            let per_segment = build_merge_safe_plan(
                db,
                Arc::clone(&prepared.matcher),
                &prepared.kors,
                Arc::clone(&prepared.rank),
                PlanSpec {
                    trace: false,
                    ..spec
                },
            )
            .explain();
            return Ok(format!(
                "scatter(shards={}) over {per_segment}",
                self.segments.len()
            ));
        }
        let explain = build_plan(
            db,
            Arc::clone(&prepared.matcher),
            &prepared.kors,
            Arc::clone(&prepared.rank),
            spec,
        )
        .explain();
        let threads = pimento_index::resolve_threads(opts.threads);
        Ok(if !opts.trace && threads > 1 {
            format!("parallel(workers<={threads}) over {explain}")
        } else {
            explain
        })
    }

    /// Statically verify the plans [`Engine::run_prepared`] would assemble
    /// for `prepared` at this `k` — one [`pimento_algebra::PlanShape`]
    /// verification per strategy, without executing anything. Used by the
    /// `pimento lint` subcommand.
    pub fn verify_plans(
        &self,
        prepared: &PreparedSearch,
        k: usize,
    ) -> Vec<(
        pimento_algebra::PlanStrategy,
        Result<(), pimento_algebra::PlanVerifyError>,
    )> {
        pimento_algebra::PlanStrategy::all()
            .into_iter()
            .map(|strategy| {
                let plan = build_plan(
                    self.db(),
                    Arc::clone(&prepared.matcher),
                    &prepared.kors,
                    Arc::clone(&prepared.rank),
                    PlanSpec::new(k, strategy),
                );
                (strategy, plan.verify())
            })
            .collect()
    }

    /// Chomicki's *winnow* over the personalized answers (paper §2): the
    /// `≺_V`-maximal answers only — every answer no other answer is
    /// strictly preferred to — instead of a top-k cut. KOR scores and the
    /// query score order the winnowed set.
    pub fn winnow(
        &self,
        query: &str,
        profile: &UserProfile,
        limit: usize,
    ) -> Result<SearchResults, Error> {
        use pimento_algebra::{ExecStats, VorFetch};
        use pimento_algebra::{BoxedOp, QueryEval};
        let tpq = pimento_tpq::parse_tpq(query)?;
        let pq = profile.enforce_scoping(&tpq)?;
        let matcher = Arc::new(Matcher::new(self.seg_newest()?.db(), pq));
        let rank = RankContext::new(profile.vors.clone(), profile.rank_order);
        // Materialize all personalized answers (no pruning — winnow needs
        // the full dominance picture) from every segment, then layer-0
        // filter the union. Winnow is a set operation over the complete
        // answer set, so draining segments sequentially and globalizing
        // doc ids reproduces the monolithic input exactly.
        let mut stats = ExecStats::default();
        let mut answers: Vec<Answer> = Vec::new();
        for seg in &self.segments {
            let db = seg.db();
            let mut op: BoxedOp = Box::new(QueryEval::new(Arc::clone(&matcher)));
            for phrase in matcher.optional_keywords() {
                op = Box::new(pimento_algebra::SrPredJoin::new(
                    op,
                    Arc::clone(&matcher),
                    phrase,
                ));
            }
            for kor in profile.kors.clone() {
                op = Box::new(pimento_algebra::KorJoin::new(op, db, kor));
            }
            if !rank.vors.is_empty() {
                op = Box::new(VorFetch::new(op, db, &rank));
            }
            while let Some(a) = op.next(db, &mut stats) {
                answers.push(seg.globalize(a));
            }
        }
        let winnowed = rank.winnow(answers, &mut stats);
        stats.emitted = winnowed.len().min(limit) as u64;
        let hits = winnowed
            .into_iter()
            .take(limit)
            .enumerate()
            .map(|(i, a)| self.materialize_hit(&matcher, profile, i + 1, a))
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(SearchResults {
            hits,
            stats,
            worker_stats: vec![stats],
            shard_times_us: Vec::new(),
            explain: "winnow(≺_V-maximal) -> kor* -> SrPredJoin* -> QueryEval".to_string(),
            trace: String::new(),
            applied_rules: matcher.personalized().flock.applied_rules.clone(),
            skipped_rules: matcher.personalized().flock.skipped_rules.clone(),
            flock_size: matcher.personalized().flock.members.len(),
        })
    }

    /// Post-hoc provenance: which KORs and which SR-contributed optional
    /// predicates this hit satisfies. Re-evaluating over the top k only is
    /// far cheaper than threading provenance through every operator.
    /// `db` is the owning segment's database and `hit.elem` is addressed
    /// segment-locally at this point.
    fn annotate_hit(db: &Database, matcher: &Matcher, profile: &UserProfile, hit: &mut SearchResult) {
        let elem = pimento_algebra::entry_of(db, hit.elem.doc, hit.elem.node);
        let tag = db
            .coll
            .node(hit.elem)
            .tag()
            .map(|t| db.coll.symbols().name(t))
            .unwrap_or("");
        for kor in &profile.kors {
            if kor.tag != "*" && !kor.tag.eq_ignore_ascii_case(tag) {
                continue;
            }
            let tokens = db.inverted.analyze(&kor.phrase);
            if ft_contains(&db.inverted, &elem, &tokens) {
                hit.satisfied_kors.push(kor.id.clone());
            }
        }
        let mut probes = 0u64;
        for pred in matcher.optional_keywords() {
            if matcher.eval_pred_near(db, &pred, &elem, &mut probes) > 0.0 {
                hit.satisfied_optional.push(pred.describe());
            }
        }
    }
}

/// A compiled query + profile pair (see [`Engine::prepare`]). Tied to
/// the engine it was prepared against, and `Send + Sync`: the serve
/// layer caches one `Arc<PreparedSearch>` per (user, query) and executes
/// it from many worker threads concurrently (a compile-time assertion in
/// the tests pins this guarantee).
pub struct PreparedSearch {
    matcher: Arc<Matcher>,
    kors: Vec<pimento_profile::KeywordOrderingRule>,
    rank: Arc<RankContext>,
    profile: UserProfile,
}

impl PreparedSearch {
    /// Scoping rules that fired during preparation.
    pub fn applied_rules(&self) -> &[String] {
        &self.matcher.personalized().flock.applied_rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_profile::{Atom, KeywordOrderingRule, ScopingRule, ValueOrderingRule};

    const CARS: &str = r#"<dealer>
        <car><description>Powerful car. I am selling my 2001 car at the best bid. It is in good condition as I was the only driver. I used it to go to work in NYC.</description><date>2001</date><price>500</price><owner>John Smith</owner><horsepower>200</horsepower></car>
        <car><description>Low mileage. Bought on 11/2005. Eager seller. good condition</description><color>red</color><horsepower>120</horsepower><mileage>50.000</mileage><price>500</price><location>NYC</location></car>
        <car><description>american classic in good condition</description><price>1500</price><color>blue</color><mileage>90000</mileage></car>
        <car><description>rusty</description><price>200</price></car>
    </dealer>"#;

    fn engine() -> Engine {
        Engine::from_xml_docs(&[CARS]).unwrap()
    }

    /// Compile-time pin: the serve layer shares `Arc<PreparedSearch>`
    /// (and `Arc<Engine>`) across worker threads. If a future change
    /// introduces a non-`Send`/non-`Sync` field (an `Rc`, a `RefCell`),
    /// this stops compiling instead of the server subtly breaking.
    #[test]
    fn prepared_search_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedSearch>();
        assert_send_sync::<Engine>();
    }

    #[test]
    fn unpersonalized_search_ranks_by_s() {
        let e = engine();
        let res = e
            .search(
                r#"//car[ftcontains(., "good condition") and ./price < 2000]"#,
                &UserProfile::new(),
                &SearchOptions::top(3),
            )
            .unwrap();
        assert_eq!(res.hits.len(), 3);
        assert!(res.hits[0].s >= res.hits[1].s);
        assert_eq!(res.flock_size, 1);
    }

    #[test]
    fn paper_running_example_end_to_end() {
        let e = engine();
        // Profile: ρ2 (add "american"), ρ3 (drop "low mileage"), π1 (red
        // preferred), π4/π5 (best bid / NYC KORs).
        let profile = UserProfile::new()
            .with_scoping(ScopingRule::add(
                "rho2",
                vec![
                    Atom::pc("car", "description"),
                    Atom::ft("description", "good condition"),
                ],
                vec![Atom::ft("description", "american")],
            ))
            .with_scoping(ScopingRule::delete(
                "rho3",
                vec![
                    Atom::pc("car", "description"),
                    Atom::ft("description", "good condition"),
                ],
                vec![Atom::ft("description", "low mileage")],
            ))
            .with_vor(ValueOrderingRule::prefer_value(
                "pi1", "car", "color", "red",
            ))
            .with_kor(KeywordOrderingRule::new("pi4", "car", "best bid"))
            .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
        let query = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#;
        let res = e.search(query, &profile, &SearchOptions::top(3)).unwrap();
        // Without the profile only car 2 matches (good condition + low
        // mileage + price). With ρ3 the "low mileage" requirement is
        // optional, so cars 1 and 3 qualify too.
        assert_eq!(res.hits.len(), 3);
        assert_eq!(res.applied_rules, vec!["rho2", "rho3"]);
        // Car 1 satisfies both KORs (best bid + NYC) → ranked first.
        assert!(
            res.hits[0].k >= 2.0 - 1e-9,
            "K of top hit: {}",
            res.hits[0].k
        );
        assert!(res.hits[0].text.contains("best bid"));
    }

    #[test]
    fn vor_breaks_kor_ties() {
        let e = engine();
        let profile = UserProfile::new().with_vor(ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        ));
        let res = e
            .search(
                r#"//car[ftcontains(., "good condition")]"#,
                &profile,
                &SearchOptions::top(3),
            )
            .unwrap();
        // All tie on K = 0; the red car must beat the blue/colorless ones
        // in its V layer... among answers with equal K the red one leads.
        assert!(res.hits[0].text.contains("red") || res.hits[0].xml.contains("red"));
    }

    #[test]
    fn invalid_inputs() {
        let e = engine();
        assert!(matches!(
            e.search("//car[", &UserProfile::new(), &SearchOptions::top(1)),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            e.search("//car", &UserProfile::new(), &SearchOptions::top(0)),
            Err(Error::InvalidK)
        ));
        assert!(Engine::from_xml_docs(&["<broken>"]).is_err());
    }

    #[test]
    fn explain_is_populated() {
        let e = engine();
        let res = e
            .search("//car", &UserProfile::new(), &SearchOptions::top(1))
            .unwrap();
        assert!(res.explain.contains("QueryEval"));
        assert!(res.explain.contains("topkPrune"));
    }

    #[test]
    fn minimize_option_simplifies_query() {
        let e = engine();
        let opts = SearchOptions {
            minimize: true,
            ..SearchOptions::top(2)
        };
        let res = e
            .search("//car[./price and ./price]", &UserProfile::new(), &opts)
            .unwrap();
        assert_eq!(res.hits.len(), 2);
    }

    #[test]
    fn stats_populated() {
        let e = engine();
        let res = e
            .search("//car", &UserProfile::new(), &SearchOptions::top(2))
            .unwrap();
        assert_eq!(res.stats.base_answers, 4);
        assert_eq!(res.stats.emitted, 2);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use pimento_profile::UserProfile;

    #[test]
    fn snapshot_roundtrip_preserves_search_results() {
        let docs: Vec<String> = (0..4)
            .map(|i| pimento_datagen::generate_dealer(i, 15))
            .collect();
        let original = Engine::from_xml_docs(&docs).unwrap();
        let snapshot = original.save_snapshot();
        let restored = Engine::from_snapshot(&snapshot).unwrap();
        let q = r#"//car[ftcontains(., "good condition")]"#;
        let a = original
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        let b = restored
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        assert_eq!(a.elem_refs(), b.elem_refs());
        assert!(Engine::from_snapshot(&snapshot[..5]).is_err());
    }

    #[test]
    fn columnar_snapshot_opens_packed_and_reports_format() {
        let docs: Vec<String> = (0..3)
            .map(|i| pimento_datagen::generate_dealer(i, 8))
            .collect();
        let original = Engine::from_xml_docs(&docs).unwrap();
        assert_eq!(original.snapshot_format(), None);

        let v4 = original.save_snapshot();
        let opened = Engine::from_snapshot_bytes(bytes::Bytes::from(v4.to_vec())).unwrap();
        assert_eq!(
            opened.snapshot_format(),
            Some(pimento_index::COLUMNAR_VERSION)
        );
        assert!(opened.db().tags.is_packed());
        assert!(opened.db().values.is_packed());
        assert!(opened.db().inverted.is_packed());

        let v3 = original.save_snapshot_v3();
        let legacy = Engine::from_snapshot(&v3).unwrap();
        assert_eq!(
            legacy.snapshot_format(),
            Some(pimento_index::FORMAT_VERSION)
        );
        assert!(!legacy.db().tags.is_packed());

        let q = r#"//car[ftcontains(., "good condition")]"#;
        let a = original
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        let b = opened
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        let c = legacy
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap();
        assert_eq!(a.elem_refs(), b.elem_refs());
        assert_eq!(a.elem_refs(), c.elem_refs());
        let bits = |r: &SearchResults| -> Vec<(u64, u64)> {
            r.hits
                .iter()
                .map(|h| (h.s.to_bits(), h.k.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(bits(&a), bits(&c));
    }

    #[test]
    fn parallel_ingest_matches_sequential() {
        let docs: Vec<String> = (0..8)
            .map(|i| pimento_datagen::generate_dealer(100 + i, 10))
            .collect();
        let seq = Engine::from_xml_docs(&docs).unwrap();
        let par = Engine::from_xml_docs_parallel(&docs, 4).unwrap();
        let q = r#"//car[./price < 2000]"#;
        let a = seq
            .search(q, &UserProfile::new(), &SearchOptions::top(20))
            .unwrap();
        let b = par
            .search(q, &UserProfile::new(), &SearchOptions::top(20))
            .unwrap();
        assert_eq!(a.elem_refs().len(), b.elem_refs().len());
    }
}

#[cfg(test)]
mod provenance_tests {
    use super::*;
    use pimento_profile::{Atom, KeywordOrderingRule, ScopingRule, UserProfile};

    #[test]
    fn hits_carry_kor_and_sr_provenance() {
        let e = Engine::from_xml_docs(&[r#"<dealer>
            <car><description>good condition in NYC with american flair</description><price>100</price></car>
            <car><description>good condition</description><price>200</price></car>
        </dealer>"#])
        .unwrap();
        let profile = UserProfile::new()
            .with_scoping(ScopingRule::add(
                "rho2",
                vec![Atom::ft("description", "good condition")],
                vec![Atom::ft("description", "american")],
            ))
            .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
        let res = e
            .search(
                r#"//car[ftcontains(./description, "good condition")]"#,
                &profile,
                &SearchOptions::top(2),
            )
            .unwrap();
        assert_eq!(res.applied_rules, vec!["rho2"]);
        let top = &res.hits[0];
        assert!(top.text.contains("NYC"));
        assert_eq!(top.satisfied_kors, vec!["pi5"]);
        assert_eq!(top.satisfied_optional, vec!["american"]);
        let second = &res.hits[1];
        assert!(second.satisfied_kors.is_empty());
        assert!(second.satisfied_optional.is_empty());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use pimento_profile::{KeywordOrderingRule, UserProfile};

    #[test]
    fn trace_reports_per_operator_rows() {
        let e = Engine::from_xml_docs(&[pimento_datagen::generate_dealer(5, 60)]).unwrap();
        let profile = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
        let opts = SearchOptions {
            trace: true,
            ..SearchOptions::top(5)
        };
        let res = e
            .search(r#"//car[ftcontains(., "good condition")]"#, &profile, &opts)
            .unwrap();
        assert!(res.trace.contains("QueryEval"), "{}", res.trace);
        assert!(res.trace.contains("kor[nyc]"), "{}", res.trace);
        assert!(res.trace.contains("topkPrune(final)"), "{}", res.trace);
        // Untraced runs carry no report.
        let res2 = e
            .search(r#"//car"#, &profile, &SearchOptions::top(5))
            .unwrap();
        assert!(res2.trace.is_empty());
    }
}

#[cfg(test)]
mod winnow_tests {
    use super::*;
    use pimento_profile::{UserProfile, ValueOrderingRule};

    #[test]
    fn winnow_returns_only_maximal_answers() {
        let e = Engine::from_xml_docs(&[r#"<dealer>
            <car><color>red</color><mileage>90000</mileage><price>1</price></car>
            <car><color>blue</color><mileage>10000</mileage><price>2</price></car>
            <car><color>red</color><mileage>10000</mileage><price>3</price></car>
        </dealer>"#])
        .unwrap();
        // Priorities: mileage first, then red — car 3 dominates both others.
        let profile = UserProfile::new()
            .with_vor(ValueOrderingRule::prefer_smaller("m", "car", "mileage").with_priority(0))
            .with_vor(ValueOrderingRule::prefer_value("c", "car", "color", "red").with_priority(1));
        let res = e.winnow("//car", &profile, 10).unwrap();
        assert_eq!(res.hits.len(), 1, "one dominant answer");
        assert!(res.hits[0].xml.contains("<price>3</price>"));
        // Without priorities π1/π2 are ambiguous: red-high-mileage and
        // blue-low-mileage are mutually unordered, so winnow keeps the
        // incomparable frontier.
        let ambiguous = UserProfile::new()
            .with_vor(ValueOrderingRule::prefer_smaller("m", "car", "mileage"))
            .with_vor(ValueOrderingRule::prefer_value("c", "car", "color", "red"));
        let res2 = e.winnow("//car", &ambiguous, 10).unwrap();
        assert!(!res2.hits.is_empty());
        assert!(res2
            .hits
            .iter()
            .all(|h| !h.xml.contains("<price>1</price>") || res2.hits.len() > 1));
    }

    #[test]
    fn winnow_without_vors_keeps_everything() {
        let e = Engine::from_xml_docs(&["<a><b>x</b><b>y</b></a>"]).unwrap();
        let res = e.winnow("//b", &UserProfile::new(), 10).unwrap();
        assert_eq!(res.hits.len(), 2);
        let limited = e.winnow("//b", &UserProfile::new(), 1).unwrap();
        assert_eq!(limited.hits.len(), 1);
    }
}

#[cfg(test)]
mod prepared_tests {
    use super::*;
    use pimento_profile::{KeywordOrderingRule, UserProfile};

    #[test]
    fn prepared_search_reuses_across_options() {
        let e = Engine::from_xml_docs(&[pimento_datagen::generate_dealer(17, 40)]).unwrap();
        let profile = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
        let q = r#"//car[ftcontains(., "good condition")]"#;
        let prepared = e.prepare(q, &profile).unwrap();
        let top3 = e.run_prepared(&prepared, &SearchOptions::top(3)).unwrap();
        let top5 = e.run_prepared(&prepared, &SearchOptions::top(5)).unwrap();
        assert_eq!(top3.hits.len().min(3), top3.hits.len());
        assert_eq!(
            top5.elem_refs()[..top3.hits.len()],
            top3.elem_refs()[..],
            "prefix stability across k"
        );
        // Same answers as the unprepared path.
        let direct = e.search(q, &profile, &SearchOptions::top(5)).unwrap();
        assert_eq!(direct.elem_refs(), top5.elem_refs());
        // Invalid k still rejected.
        assert!(e
            .run_prepared(
                &prepared,
                &SearchOptions {
                    k: 0,
                    ..SearchOptions::top(1)
                }
            )
            .is_err());
    }
}

#[cfg(test)]
mod mutate_tests {
    //! Corpus transforms behind the ingest write path: every derived
    //! engine must answer queries bit-identically to a monolithic rebuild
    //! of the same live documents, and the sharded v2 snapshot round-trip
    //! must preserve tombstones and the corpus generation.
    use super::*;

    fn dealer(i: u64) -> String {
        pimento_datagen::generate_dealer(i, 12)
    }

    fn bits(e: &Engine, query: &str) -> Vec<(u32, u32, u64, u64)> {
        let res = e
            .search(query, &UserProfile::new(), &SearchOptions::top(32))
            .unwrap();
        res.hits
            .iter()
            .map(|h| (h.elem.doc.0, h.elem.node.0, h.s.to_bits(), h.k.to_bits()))
            .collect()
    }

    const Q: &str = r#"//car[ftcontains(., "good condition") and ./price < 9000]"#;

    #[test]
    fn ingested_engine_matches_monolithic_rebuild() {
        let base: Vec<String> = (0..3).map(dealer).collect();
        let extra: Vec<String> = (3..5).map(dealer).collect();
        let grown = Engine::from_xml_docs(&base)
            .unwrap()
            .with_ingested(&extra)
            .unwrap();
        assert_eq!(grown.generation(), 1);
        assert_eq!(grown.num_docs(), 5);
        let all: Vec<String> = base.iter().chain(&extra).cloned().collect();
        let monolithic = Engine::from_xml_docs(&all).unwrap();
        assert_eq!(bits(&grown, Q), bits(&monolithic, Q));
    }

    #[test]
    fn deletes_then_compaction_match_a_rebuild_without_the_victims() {
        let docs: Vec<String> = (0..5).map(dealer).collect();
        let (engine, n) = Engine::from_xml_docs(&docs)
            .unwrap()
            .with_ingested(&[dealer(5)])
            .unwrap()
            .with_deletes(&[1, 4])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(engine.generation(), 2);
        assert_eq!(engine.live_docs(), 4);
        assert_eq!(engine.deleted_docs(), 2);

        // Tombstoned docs never appear in results...
        let hits = bits(&engine, Q);
        assert!(hits.iter().all(|h| h.0 != 1 && h.0 != 4), "{hits:?}");
        // ...and deleting the same ids again changes nothing (idempotent).
        let (again, n2) = engine.with_deletes(&[1, 4]).unwrap();
        assert_eq!(n2, 0);
        assert_eq!(again.deleted_docs(), 2);

        // Compaction drops the tombstoned docs physically; surviving docs
        // are renumbered densely, so compare score multisets rather than
        // ids against a rebuild of only the survivors.
        let compacted = engine.compacted(2).unwrap();
        assert_eq!(compacted.num_docs(), 4);
        assert_eq!(compacted.deleted_docs(), 0);
        assert_eq!(compacted.generation(), 3);
        let survivors = vec![docs[0].clone(), docs[2].clone(), docs[3].clone(), dealer(5)];
        let rebuilt = Engine::from_xml_docs(&survivors).unwrap();
        let mut a: Vec<(u64, u64)> = bits(&compacted, Q).iter().map(|h| (h.2, h.3)).collect();
        let mut b: Vec<(u64, u64)> = bits(&rebuilt, Q).iter().map(|h| (h.2, h.3)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "scores survive compaction bit-for-bit");
    }

    #[test]
    fn sharded_v2_roundtrip_preserves_tombstones_and_generation() {
        let docs: Vec<String> = (0..4).map(dealer).collect();
        let (engine, _) = Engine::from_xml_docs(&docs)
            .unwrap()
            .with_ingested(&[dealer(4)])
            .unwrap()
            .with_deletes(&[2])
            .unwrap();
        let dir = std::env::temp_dir().join(format!(
            "pimento-core-v2-roundtrip-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        engine.save_sharded_snapshot(&dir).unwrap();
        let reopened = Engine::from_sharded_dir(&dir).unwrap();
        assert_eq!(reopened.generation(), engine.generation());
        assert_eq!(reopened.num_docs(), engine.num_docs());
        assert_eq!(reopened.live_docs(), engine.live_docs());
        assert_eq!(reopened.deleted_docs(), 1);
        assert_eq!(bits(&reopened, Q), bits(&engine, Q));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
