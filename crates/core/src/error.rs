//! Unified error type for the engine facade.

use pimento_index::PersistError;
use pimento_profile::ConflictError;
use pimento_tpq::ParseError;
use pimento_xml::XmlError;
use std::fmt;

/// Anything that can fail while loading documents or answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Document parsing failed.
    Xml(XmlError),
    /// Query parsing failed.
    Query(ParseError),
    /// Scoping rules form an unresolvable conflict cycle.
    Conflict(ConflictError),
    /// A collection snapshot failed to decode.
    Snapshot(PersistError),
    /// `k` must be positive.
    InvalidK,
    /// A sharded-engine invariant was violated (e.g. mutating a
    /// multi-segment engine, or an answer outside every segment).
    Shard(&'static str),
    /// A filesystem operation on a sharded snapshot directory failed.
    Io(String),
    /// The disk is full (`ENOSPC`). Distinguished from [`Error::Io`] so
    /// callers can report it as retryable — the previous generation is
    /// still served and the write can be retried after space frees.
    DiskFull(String),
    /// An ingest request was invalid (empty batch, unknown doc id, …).
    Ingest(String),
}

/// Wrap an I/O error for `path`, classifying `ENOSPC` as
/// [`Error::DiskFull`] and everything else as [`Error::Io`].
pub(crate) fn classify_io(path: &std::path::Path, e: &std::io::Error) -> Error {
    if pimento_faults::vfs::is_disk_full(e) {
        Error::DiskFull(format!("{}: {e}", path.display()))
    } else {
        Error::Io(format!("{}: {e}", path.display()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "XML error: {e}"),
            Error::Query(e) => write!(f, "query error: {e}"),
            Error::Conflict(e) => write!(f, "profile error: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::InvalidK => write!(f, "k must be at least 1"),
            Error::Shard(why) => write!(f, "shard error: {why}"),
            Error::Io(why) => write!(f, "io error: {why}"),
            Error::DiskFull(why) => write!(f, "disk full: {why}"),
            Error::Ingest(why) => write!(f, "ingest error: {why}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xml(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Conflict(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::InvalidK
            | Error::Shard(_)
            | Error::Io(_)
            | Error::DiskFull(_)
            | Error::Ingest(_) => None,
        }
    }
}

impl From<pimento_algebra::MutateError> for Error {
    fn from(e: pimento_algebra::MutateError) -> Self {
        match e {
            pimento_algebra::MutateError::Xml(e) => Error::Xml(e),
            pimento_algebra::MutateError::Shared => {
                Error::Shard("engine indexes are shared; cannot mutate in place")
            }
        }
    }
}

impl From<XmlError> for Error {
    fn from(e: XmlError) -> Self {
        Error::Xml(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Query(e)
    }
}

impl From<ConflictError> for Error {
    fn from(e: ConflictError) -> Self {
        Error::Conflict(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Self {
        Error::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = pimento_tpq::parse_tpq("//a[").unwrap_err().into();
        assert!(matches!(e, Error::Query(_)));
        assert!(e.to_string().contains("query error"));
        assert!(Error::InvalidK.to_string().contains("k"));
    }
}
