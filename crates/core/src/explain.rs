//! Human-readable reports of the static analyses: what the profile does to
//! a query before it runs.

use crate::error::Error;
use pimento_profile::UserProfile;
use pimento_tpq::parse_tpq;
use std::fmt::Write as _;

/// A profile/query analysis report (conflicts, flock, ambiguity).
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Rendered multi-line description.
    pub text: String,
    /// Whether the VOR set is ambiguous under current priorities.
    pub ambiguous: bool,
    /// Whether SR conflicts required priorities (or failed).
    pub conflict_arcs: usize,
}

/// Analyze `query` under `profile` without executing anything.
pub fn analyze(query: &str, profile: &UserProfile) -> Result<AnalysisReport, Error> {
    let tpq = parse_tpq(query)?;
    let mut text = String::new();
    let _ = writeln!(text, "query: {tpq}");

    let conflicts = profile.check_conflicts(&tpq)?;
    let _ = writeln!(
        text,
        "scoping rules: {} (conflict arcs: {}, resolution: {:?})",
        profile.scoping.len(),
        conflicts.arcs.len(),
        conflicts.resolution
    );
    for &(a, b) in &conflicts.arcs {
        let _ = writeln!(
            text,
            "  conflict: {} disables {}",
            profile.scoping[a].id, profile.scoping[b].id
        );
    }

    let pq = profile.enforce_scoping(&tpq)?;
    let _ = writeln!(
        text,
        "query flock: {} member(s) ({} distinct); applied: [{}]; skipped: [{}]",
        pq.flock.members.len(),
        pq.flock.distinct_members(),
        pq.flock.applied_rules.join(", "),
        pq.flock.skipped_rules.join(", ")
    );
    for (i, m) in pq.flock.members.iter().enumerate() {
        let _ = writeln!(text, "  Q{i}: {m}");
    }
    let _ = writeln!(
        text,
        "plan encoding: {} optional keyword predicate(s) as outer joins",
        pq.optional_keyword_count()
    );

    let ambiguity = profile.check_ambiguity();
    let _ = writeln!(
        text,
        "value-based ordering rules: {} — {}",
        profile.vors.len(),
        if ambiguity.is_ambiguous() {
            "AMBIGUOUS"
        } else {
            "unambiguous"
        }
    );
    for c in &ambiguity.cycles {
        let _ = writeln!(text, "  alternating cycle: {}", c.rule_ids.join(" = ≺ = "));
    }
    let _ = writeln!(
        text,
        "keyword ordering rules: {} (total weight {:.2})",
        profile.kors.len(),
        profile.kor_total_weight()
    );

    Ok(AnalysisReport {
        text,
        ambiguous: ambiguity.is_ambiguous(),
        conflict_arcs: conflicts.arcs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_profile::{Atom, KeywordOrderingRule, ScopingRule, ValueOrderingRule};

    #[test]
    fn report_covers_all_sections() {
        let profile = UserProfile::new()
            .with_scoping(ScopingRule::add(
                "rho2",
                vec![Atom::ft("description", "good condition")],
                vec![Atom::ft("description", "american")],
            ))
            .with_vor(ValueOrderingRule::prefer_value(
                "pi1", "car", "color", "red",
            ))
            .with_vor(ValueOrderingRule::prefer_smaller("pi2", "car", "mileage"))
            .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
        let report = analyze(
            r#"//car[ftcontains(./description, "good condition")]"#,
            &profile,
        )
        .unwrap();
        assert!(report.ambiguous, "π1/π2 are ambiguous");
        assert!(report.text.contains("query flock: 2"));
        assert!(report.text.contains("AMBIGUOUS"));
        assert!(report.text.contains("alternating cycle"));
        assert!(report.text.contains("keyword ordering rules: 1"));
    }

    #[test]
    fn unambiguous_empty_profile() {
        let report = analyze("//car", &UserProfile::new()).unwrap();
        assert!(!report.ambiguous);
        assert_eq!(report.conflict_arcs, 0);
        assert!(report.text.contains("query flock: 1"));
    }

    #[test]
    fn bad_query_errors() {
        assert!(analyze("//[", &UserProfile::new()).is_err());
    }
}
