//! # pimento
//!
//! A Rust reproduction of **PIMENTO** — *Personalizing XML Search*
//! (Amer-Yahia, Fundulaki, Lakshmanan; ICDE 2007).
//!
//! PIMENTO personalizes XML full-text search with user profiles made of
//! **scoping rules** (query rewritings that broaden or narrow the search,
//! evaluated as a *query flock* encoded into a single plan) and **ordering
//! rules** (value-based pairwise preferences `≺_V` and keyword-based
//! additive scores `K`), enforced efficiently by **OR-aware top-k
//! pruning**.
//!
//! ```
//! use pimento::{Engine, SearchOptions};
//! use pimento::profile::{UserProfile, ValueOrderingRule, KeywordOrderingRule};
//!
//! let engine = Engine::from_xml_docs(&[r#"<dealer>
//!   <car><description>good condition, best bid, in NYC</description><price>500</price></car>
//!   <car><description>good condition, garaged</description><price>900</price><color>red</color></car>
//! </dealer>"#]).unwrap();
//!
//! let profile = UserProfile::new()
//!     .with_vor(ValueOrderingRule::prefer_value("pi1", "car", "color", "red"))
//!     .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
//!
//! let results = engine.search(
//!     r#"//car[ftcontains(., "good condition") and ./price < 2000]"#,
//!     &profile,
//!     &SearchOptions::top(2),
//! ).unwrap();
//! assert_eq!(results.hits.len(), 2);
//! // The NYC car satisfies the keyword ordering rule and ranks first.
//! assert!(results.hits[0].text.contains("NYC"));
//! ```
//!
//! The substrate crates are re-exported for direct use:
//! [`xml`] (parser/tree), [`index`] (inverted + tag indexes),
//! [`tpq`] (tree pattern queries), [`profile`] (rules + static analysis),
//! [`algebra`] (operators, plans, top-k pruning).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod explain;
pub mod result;
pub mod segment;

pub use engine::{Engine, PreparedSearch};
pub use error::Error;
pub use explain::{analyze, AnalysisReport};
pub use result::{SearchOptions, SearchResult, SearchResults};
pub use segment::Segment;

pub use pimento_algebra as algebra;
pub use pimento_index as index;
pub use pimento_profile as profile;
pub use pimento_tpq as tpq;
pub use pimento_xml as xml;

pub use pimento_algebra::{EvalMode, KorOrder, PlanStrategy};
