//! Search options and results.

use pimento_algebra::{Answer, Database, EvalMode, ExecStats, KorOrder, PlanStrategy};
use pimento_index::ElemRef;
use pimento_xml::subtree_to_string;

/// Knobs for one search call.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// How many answers to return (must be ≥ 1).
    pub k: usize,
    /// Skip this many top answers before returning `k` (pagination).
    /// The plan computes the top `offset + k` internally, so pruning
    /// bounds stay exact.
    pub offset: usize,
    /// Plan strategy; [`PlanStrategy::Push`] (the paper's best) by default.
    pub strategy: PlanStrategy,
    /// KOR application order.
    pub kor_order: KorOrder,
    /// Minimize the pattern before planning (drops redundant branches).
    pub minimize: bool,
    /// Bottom query-evaluation mode.
    pub eval_mode: EvalMode,
    /// Collect a per-operator `EXPLAIN ANALYZE` trace into
    /// `SearchResults::trace`.
    pub trace: bool,
    /// Let the engine pick strategy, evaluation mode, and KOR order from
    /// the query/profile shape (overrides the explicit settings).
    pub auto: bool,
    /// Worker threads for the sharded candidate scan: `0` (the default)
    /// uses the machine's available parallelism, clamped like ingest;
    /// `1` forces sequential execution. Results are identical either way.
    pub threads: usize,
    /// On a sharded (multi-segment) engine: how many segments execute
    /// concurrently during scatter-gather. `0` (the default) uses one
    /// lane per resolved worker thread. Has no effect on a monolithic
    /// engine, and never affects results — only scheduling.
    pub shards: usize,
}

impl SearchOptions {
    /// Top-`k` with the default (PushTopkPrune) strategy.
    pub fn top(k: usize) -> Self {
        SearchOptions {
            k,
            offset: 0,
            strategy: PlanStrategy::Push,
            kor_order: KorOrder::HighestWeightFirst,
            minimize: false,
            eval_mode: EvalMode::IndexedNestedLoop,
            trace: false,
            auto: false,
            threads: 0,
            shards: 0,
        }
    }

    /// Top-`k` with heuristic plan choice (see
    /// [`pimento_algebra::choose_spec`]).
    pub fn auto(k: usize) -> Self {
        SearchOptions {
            auto: true,
            ..Self::top(k)
        }
    }

    /// Builder: skip the first `offset` answers (pagination).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// Builder: pick the bottom evaluation mode.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Builder: pick a plan strategy.
    pub fn with_strategy(mut self, strategy: PlanStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder: set the worker-thread count (`0` = machine parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: cap concurrent segment lanes during scatter-gather on a
    /// sharded engine (`0` = one lane per resolved worker thread).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// One ranked hit.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// 1-based rank.
    pub rank: usize,
    /// Where the answer element lives.
    pub elem: ElemRef,
    /// Query score `S`.
    pub s: f64,
    /// KOR score `K`.
    pub k: f64,
    /// Ids of the keyword ordering rules this hit satisfies (why `K` is
    /// what it is).
    pub satisfied_kors: Vec<String>,
    /// Display text of the SR-contributed optional predicates this hit
    /// matches (why personalization boosted it).
    pub satisfied_optional: Vec<String>,
    /// The element's text content (snippet-style, capped).
    pub text: String,
    /// The element serialized back to XML (capped).
    pub xml: String,
}

impl SearchResult {
    const SNIPPET_CAP: usize = 400;

    /// Materialize display fields from an engine answer.
    pub fn from_answer(db: &Database, rank: usize, a: Answer) -> Self {
        let elem = a.elem.elem_ref();
        let mut text = db.coll.text_content(elem);
        truncate_chars(&mut text, Self::SNIPPET_CAP);
        let mut xml = subtree_to_string(db.coll.doc(elem.doc), db.coll.symbols(), elem.node);
        truncate_chars(&mut xml, Self::SNIPPET_CAP);
        SearchResult {
            rank,
            elem,
            s: a.s,
            k: a.k,
            satisfied_kors: Vec::new(),
            satisfied_optional: Vec::new(),
            text,
            xml,
        }
    }
}

fn truncate_chars(s: &mut String, cap: usize) {
    if s.chars().count() > cap {
        let cut: String = s.chars().take(cap).collect();
        *s = cut + "…";
    }
}

/// The full result of a search call.
#[derive(Debug, Clone)]
pub struct SearchResults {
    /// Ranked hits, best first.
    pub hits: Vec<SearchResult>,
    /// Execution counters, summed across workers on the parallel path.
    pub stats: ExecStats,
    /// Per-worker counter breakdown: one entry per worker the sharded
    /// scan spawned — or, on a multi-segment engine, one entry per
    /// segment — and a single entry when execution was sequential.
    pub worker_stats: Vec<ExecStats>,
    /// Per-segment wall time (µs) of the scatter-gather execution, in
    /// segment order. Empty on a monolithic engine.
    pub shard_times_us: Vec<u64>,
    /// Operator-tree description of the executed plan.
    pub explain: String,
    /// Per-operator row/time trace (empty unless `SearchOptions::trace`).
    pub trace: String,
    /// Scoping rules that fired, in application order.
    pub applied_rules: Vec<String>,
    /// Scoping rules skipped by conflicts.
    pub skipped_rules: Vec<String>,
    /// Number of queries in the (conceptual) flock.
    pub flock_size: usize,
}

impl SearchResults {
    /// Convenience: the element refs in rank order.
    pub fn elem_refs(&self) -> Vec<ElemRef> {
        self.hits.iter().map(|h| h.elem).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builders() {
        let o = SearchOptions::top(5).with_strategy(PlanStrategy::Naive);
        assert_eq!(o.k, 5);
        assert_eq!(o.strategy, PlanStrategy::Naive);
        assert!(!o.minimize);
    }

    #[test]
    fn truncation() {
        let mut s = "x".repeat(500);
        truncate_chars(&mut s, 10);
        assert!(s.chars().count() <= 11);
        let mut short = "ok".to_string();
        truncate_chars(&mut short, 10);
        assert_eq!(short, "ok");
    }
}
