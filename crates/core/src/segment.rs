//! Doc-range segments and the scatter-gather executor (DESIGN.md §15).
//!
//! A sharded [`crate::Engine`] owns a list of [`Segment`]s: each is a
//! self-contained [`Database`] (tag/value/inverted indexes plus a full
//! copy of the corpus symbol table) over a contiguous document range,
//! plus the global doc id of its first document. A prepared plan is
//! segment-agnostic — symbol ids and scoring statistics are corpus-global
//! by construction — so [`execute_scatter`] fans the *same* compiled
//! matcher/spec across every segment, runs the merge-safe per-shard plan
//! (mid-plan and final `topkPrune`s are survivor prunes), remaps answers
//! to global doc ids, and recombines with the exact `≺_V`-sound
//! [`merge_survivors`] stage. The result is bit-identical to the
//! monolithic scan for every strategy, KOR order, and rank order; the
//! soundness argument is DESIGN.md §8 verbatim, because a doc-range
//! segment is just one particular partition of the candidate space.
//!
//! Everything in this module is a `panic-path` lint root: malformed
//! state surfaces as empty results or typed errors upstream, never as a
//! panic on the serving path.

use pimento_algebra::{
    build_merge_safe_plan, merge_survivors, run_in_lanes, Answer, Database, ExecStats, Matcher,
    PlanSpec, RankContext,
};
use pimento_index::DocId;
use pimento_profile::KeywordOrderingRule;
use std::sync::Arc;
use std::time::Instant;

/// A self-contained doc-range slice of the corpus: its own indexes over
/// `doc_count` documents, addressed locally as `DocId(0..doc_count)` and
/// globally as `DocId(doc_base..doc_base + doc_count)`.
#[derive(Debug)]
pub struct Segment {
    db: Database,
    doc_base: u32,
}

impl Segment {
    /// Wrap an indexed doc-range slice. `db`'s collection must carry the
    /// full corpus symbol table, and — when the segment is one of many —
    /// a corpus-stats scorer, so compiled plans stay segment-agnostic.
    pub(crate) fn new(db: Database, doc_base: u32) -> Self {
        Segment { db, doc_base }
    }

    /// The segment's indexed database (documents addressed locally).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access for the monolithic single-segment case
    /// (incremental `add_xml`).
    pub(crate) fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Global doc id of the segment's first document.
    pub fn doc_base(&self) -> u32 {
        self.doc_base
    }

    /// Number of documents in the segment.
    pub fn doc_count(&self) -> usize {
        self.db.coll.len()
    }

    /// Rewrite a segment-local answer to corpus-global doc ids. Adding a
    /// constant base preserves within-segment document order, and bases
    /// are the prefix sums of segment sizes, so globalized answers carry
    /// exactly the doc ids the monolithic scan would assign.
    pub(crate) fn globalize(&self, mut a: Answer) -> Answer {
        a.elem.doc = DocId(a.elem.doc.0.wrapping_add(self.doc_base));
        a
    }
}

/// Outcome of one scatter-gather execution across all segments.
pub(crate) struct ScatterRun {
    /// The exact global top-k, in final rank order, with global doc ids.
    pub answers: Vec<Answer>,
    /// Aggregated counters (`emitted` = final answer count).
    pub stats: ExecStats,
    /// Per-segment counter breakdown, in segment order.
    pub shard_stats: Vec<ExecStats>,
    /// Per-segment wall time (µs), in segment order.
    pub shard_times_us: Vec<u64>,
    /// Concatenated per-segment traces (trace mode only, else empty).
    pub traces: String,
}

/// Fan `spec` across `segments` and merge: each segment runs the
/// merge-safe plan against its own database, answers come back with
/// global doc ids, and [`merge_survivors`] re-ranks the union and cuts at
/// `spec.k` — bit-identical to the monolithic scan (module docs).
///
/// `lanes` caps how many segments execute concurrently; `<= 1` (or trace
/// mode, whose registries are single-threaded) runs them sequentially.
/// Scheduling never affects results: per-segment outputs are merged in
/// segment order either way.
pub(crate) fn execute_scatter(
    segments: &[Arc<Segment>],
    matcher: &Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: &Arc<RankContext>,
    spec: PlanSpec,
    lanes: usize,
) -> ScatterRun {
    // Trace registries are single-threaded, so trace mode forces one lane
    // (sequential execution); scheduling never affects results either way.
    let lanes = if spec.trace { 1 } else { lanes };
    type SegmentRun = (Vec<Answer>, ExecStats, u64, String);
    let tasks: Vec<Box<dyn FnOnce() -> SegmentRun + Send + '_>> = segments
        .iter()
        .map(|seg| {
            let matcher = Arc::clone(matcher);
            let rank = Arc::clone(rank);
            Box::new(move || run_segment(seg, &matcher, kors, &rank, spec))
                as Box<dyn FnOnce() -> SegmentRun + Send + '_>
        })
        .collect();
    let slots = run_in_lanes(tasks, lanes);
    let mut shards = Vec::with_capacity(slots.len());
    let mut shard_times_us = Vec::with_capacity(slots.len());
    let mut traces = String::new();
    for (answers, stats, micros, trace) in slots {
        shards.push((answers, stats));
        shard_times_us.push(micros);
        traces.push_str(&trace);
    }
    let (answers, stats, shard_stats) = merge_survivors(shards, rank, spec.k);
    ScatterRun {
        answers,
        stats,
        shard_stats,
        shard_times_us,
        traces,
    }
}

/// Run the merge-safe plan over one segment, returning globalized
/// survivor answers, the segment's counters, its wall time in µs, and
/// (trace mode only) its labeled trace.
fn run_segment(
    seg: &Segment,
    matcher: &Arc<Matcher>,
    kors: &[KeywordOrderingRule],
    rank: &Arc<RankContext>,
    spec: PlanSpec,
) -> (Vec<Answer>, ExecStats, u64, String) {
    let started = Instant::now();
    let plan = build_merge_safe_plan(
        &seg.db,
        Arc::clone(matcher),
        kors,
        Arc::clone(rank),
        spec,
    );
    let (answers, stats, trace) = if spec.trace {
        let (answers, stats, trace) = plan.execute_analyzed(&seg.db);
        let labeled = format!(
            "segment(base={}, docs={}):\n{trace}\n",
            seg.doc_base,
            seg.doc_count()
        );
        (answers, stats, labeled)
    } else {
        let (answers, stats) = plan.execute(&seg.db);
        (answers, stats, String::new())
    };
    let answers = answers.into_iter().map(|a| seg.globalize(a)).collect();
    (answers, stats, started.elapsed().as_micros() as u64, trace)
}
