//! `pimento-datagen` — dump the synthetic corpora to disk, for use with
//! the `pimento` CLI or any other XML tool.
//!
//! ```text
//! pimento-datagen dealer --cars 500 --seed 7 --out dealer.xml
//! pimento-datagen xmark --bytes 1048576 --seed 2007 --out site.xml
//! pimento-datagen inex --seed 2007 --out-dir inex/     # articles + topics + qrels
//! ```

use pimento_datagen::{carsale, inex, xmark};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pimento-datagen dealer [--cars N] [--seed S] --out FILE\n  \
         pimento-datagen xmark [--bytes N] [--seed S] --out FILE\n  \
         pimento-datagen inex [--seed S] --out-dir DIR"
    );
    std::process::exit(2)
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else { usage() };
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2007);
    match mode.as_str() {
        "dealer" => {
            let cars: usize = arg_value(&args, "--cars")
                .and_then(|s| s.parse().ok())
                .unwrap_or(100);
            let Some(out) = arg_value(&args, "--out") else {
                usage()
            };
            let xml = carsale::generate_dealer(seed, cars);
            if let Err(e) = std::fs::write(&out, &xml) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}: {cars} cars, {} bytes", xml.len());
        }
        "xmark" => {
            let bytes: usize = arg_value(&args, "--bytes")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1024 * 1024);
            let Some(out) = arg_value(&args, "--out") else {
                usage()
            };
            let xml = xmark::generate(seed, bytes);
            let persons = xmark::count_persons(&xml);
            if let Err(e) = std::fs::write(&out, &xml) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}: {} bytes, {persons} persons", xml.len());
        }
        "inex" => {
            let Some(dir) = arg_value(&args, "--out-dir") else {
                usage()
            };
            let dir = PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let corpus = inex::generate(seed);
            for (i, doc) in corpus.xml_docs.iter().enumerate() {
                let path = dir.join(format!("article-{i:03}.xml"));
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            for topic in &corpus.topics {
                let path = dir.join(format!("topic-{}.xml", topic.id));
                if let Err(e) = std::fs::write(&path, inex::topic_to_xml(topic)) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            // qrels-style assessments: "topic cid" lines.
            let mut qrels = String::new();
            let mut topic_ids: Vec<_> = corpus.relevant.keys().copied().collect();
            topic_ids.sort_unstable();
            for tid in topic_ids {
                for cid in &corpus.relevant[&tid] {
                    qrels.push_str(&format!("{tid} {cid}\n"));
                }
            }
            if let Err(e) = std::fs::write(dir.join("qrels.txt"), qrels) {
                eprintln!("cannot write qrels: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} articles, {} topics, qrels.txt to {}",
                corpus.xml_docs.len(),
                corpus.topics.len(),
                dir.display()
            );
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}
