//! The paper's running example: the car-sale database of Fig. 1, plus a
//! seeded generator for larger dealer documents.

use crate::words::{self, pick};
use pimento_xml::escape::escape_text;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The (slightly normalized) document of the paper's Fig. 1: three cars
/// with descriptions, owner info, price, horsepower, mileage, color,
/// location.
pub fn paper_figure1() -> &'static str {
    r#"<dealer>
  <car>
    <description>I am selling my 2001 car at the best bid. It is in good condition as I was the only driver. I used it to go to work in NYC.</description>
    <date>2001</date>
    <price>500</price>
    <owner>John Smith</owner>
    <horsepower>200</horsepower>
  </car>
  <car>
    <description>Powerful car. Eager seller.</description>
    <price>500</price>
    <color>red</color>
    <horsepower>120</horsepower>
  </car>
  <car>
    <description>Low mileage. Bought on 11/2005. goodcar@yahoo.com good condition</description>
    <mileage>50.000</mileage>
    <price>500</price>
    <location>NYC</location>
    <color>red</color>
  </car>
</dealer>"#
}

/// One synthetic car listing.
#[derive(Debug, Clone)]
pub struct CarSpec {
    /// Sale price in dollars.
    pub price: u32,
    /// Odometer miles.
    pub mileage: u32,
    /// Horsepower.
    pub horsepower: u32,
    /// Exterior color.
    pub color: &'static str,
    /// Manufacturer.
    pub make: &'static str,
    /// Phrases planted in the description.
    pub phrases: Vec<&'static str>,
    /// Sale location.
    pub location: &'static str,
}

/// Generate a dealer document with `n` random cars. Deterministic per
/// seed. Roughly a third of the cars are "good condition", a fifth "low
/// mileage", a few "best bid" / NYC listings — enough mass for every rule
/// of the running example to bite.
pub fn generate_dealer(seed: u64, n: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xml = String::with_capacity(n * 320);
    xml.push_str("<dealer>");
    for _ in 0..n {
        let spec = random_car(&mut rng);
        write_car(&mut xml, &mut rng, &spec);
    }
    xml.push_str("</dealer>");
    xml
}

fn random_car(rng: &mut StdRng) -> CarSpec {
    let mut phrases = Vec::new();
    if rng.gen_bool(0.35) {
        phrases.push("good condition");
    }
    if rng.gen_bool(0.2) {
        phrases.push("low mileage");
    }
    if rng.gen_bool(0.15) {
        phrases.push("best bid");
    }
    if rng.gen_bool(0.2) {
        phrases.push("american");
    }
    let location = if rng.gen_bool(0.25) {
        "NYC"
    } else {
        pick(rng, words::CITIES)
    };
    CarSpec {
        price: rng.gen_range(100..6000),
        mileage: rng.gen_range(1000..200_000),
        horsepower: rng.gen_range(60..400),
        color: pick(rng, words::COLORS),
        make: pick(rng, words::MAKES),
        phrases,
        location,
    }
}

fn write_car(xml: &mut String, rng: &mut StdRng, spec: &CarSpec) {
    let n_words = rng.gen_range(6..18);
    let filler = words::filler_with(rng, n_words, &spec.phrases);
    let owner = format!(
        "{} {}",
        pick(rng, words::FIRST_NAMES),
        pick(rng, words::LAST_NAMES)
    );
    let _ = write!(
        xml,
        "<car><description>{}</description><price>{}</price><mileage>{}</mileage>\
         <horsepower>{}</horsepower><color>{}</color><make>{}</make>\
         <location>{}</location><owner>{}</owner></car>",
        escape_text(&filler),
        spec.price,
        spec.mileage,
        spec.horsepower,
        spec.color,
        spec.make,
        spec.location,
        escape_text(&owner),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;

    #[test]
    fn figure1_parses_and_has_three_cars() {
        let mut coll = Collection::new();
        coll.add_xml(paper_figure1()).unwrap();
        let car = coll.tag("car").unwrap();
        let doc = coll.doc(pimento_index::DocId(0));
        let count = doc
            .node_ids()
            .filter(|&n| doc.node(n).tag() == Some(car))
            .count();
        assert_eq!(count, 3);
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate_dealer(42, 50), generate_dealer(42, 50));
        assert_ne!(generate_dealer(42, 50), generate_dealer(43, 50));
    }

    #[test]
    fn generated_document_parses_with_expected_cars() {
        let xml = generate_dealer(7, 200);
        let mut coll = Collection::new();
        coll.add_xml(&xml).unwrap();
        let car = coll.tag("car").unwrap();
        let doc = coll.doc(pimento_index::DocId(0));
        let count = doc
            .node_ids()
            .filter(|&n| doc.node(n).tag() == Some(car))
            .count();
        assert_eq!(count, 200);
    }

    #[test]
    fn phrase_mass_is_plausible() {
        let xml = generate_dealer(11, 400);
        let good = xml.matches("good condition").count();
        let nyc = xml.matches("NYC").count();
        assert!(good > 80 && good < 240, "good condition in {good} cars");
        assert!(nyc > 40, "NYC in {nyc} cars");
    }
}
