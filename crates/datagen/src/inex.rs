//! INEX-like collection, topics, and relevance assessments for the
//! effectiveness experiment (paper §7.1, Table 1).
//!
//! The real INEX collection (IEEE Computer Society articles) is licensed
//! and unavailable; what Table 1 actually measures is whether profile
//! rules — keyword ordering rules derived from the topic *narrative*, plus
//! scoping rules relaxing the query — recover the components an assessor
//! deems relevant even when they do not contain the literal query phrase.
//! That mechanism only needs a collection where the narrative vocabulary
//! strictly extends the query vocabulary, which this generator guarantees
//! by construction:
//!
//! * every assessable component carries a `cid` attribute;
//! * for each of 8 topics (numbered like the paper's: 130, 131, 132, 140,
//!   141, 142, 145, 151) relevant components are planted, some containing
//!   the query phrase, some containing **only narrative terms** (the raw
//!   query misses those), and the ground-truth assessment records their
//!   `cid`s;
//! * distractor articles supply realistic noise.

use crate::words::{self, pick};
use pimento_xml::escape::escape_text;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// One INEX-like topic: a query phrase plus the narrative's expanded
/// vocabulary.
#[derive(Debug, Clone)]
pub struct InexTopic {
    /// Topic number (matches Table 1's numbering).
    pub id: u32,
    /// Element types the topic requests (and the assessor judges).
    pub target_tags: &'static [&'static str],
    /// The phrase the raw query searches for.
    pub query_phrase: &'static str,
    /// Narrative terms: related phrases an assessor accepts as relevant.
    pub related: &'static [&'static str],
}

/// The 8 topics of the experiment.
pub fn topics() -> Vec<InexTopic> {
    vec![
        InexTopic {
            id: 130,
            target_tags: &["p"],
            query_phrase: "information retrieval",
            related: &["text search", "ranking function", "relevance feedback"],
        },
        InexTopic {
            id: 131,
            target_tags: &["abs"],
            query_phrase: "data mining",
            related: &["association rules", "data cube", "knowledge discovery"],
        },
        InexTopic {
            id: 132,
            target_tags: &["sec"],
            query_phrase: "query optimization",
            related: &["cost model", "join ordering", "plan enumeration"],
        },
        InexTopic {
            id: 140,
            target_tags: &["p", "fig"],
            query_phrase: "neural networks",
            related: &["backpropagation", "perceptron", "gradient descent"],
        },
        InexTopic {
            id: 141,
            target_tags: &["p"],
            query_phrase: "software testing",
            related: &["unit tests", "fault injection", "test coverage"],
        },
        InexTopic {
            id: 142,
            target_tags: &["sec"],
            query_phrase: "distributed systems",
            related: &["consensus protocol", "fault tolerance", "replication"],
        },
        InexTopic {
            id: 145,
            target_tags: &["fig"],
            query_phrase: "computer graphics",
            related: &["ray tracing", "rendering pipeline", "texture mapping"],
        },
        InexTopic {
            id: 151,
            target_tags: &["p"],
            query_phrase: "operating systems",
            related: &["virtual memory", "process scheduling", "file system"],
        },
    ]
}

/// The generated corpus plus ground truth.
#[derive(Debug)]
pub struct InexCorpus {
    /// One XML string per article.
    pub xml_docs: Vec<String>,
    /// The topics.
    pub topics: Vec<InexTopic>,
    /// topic id → `cid`s of assessed-relevant components.
    pub relevant: HashMap<u32, BTreeSet<String>>,
}

/// Generate the corpus. Deterministic per seed.
pub fn generate(seed: u64) -> InexCorpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let topics = topics();
    let mut docs = Vec::new();
    let mut relevant: HashMap<u32, BTreeSet<String>> = HashMap::new();
    let mut cid = 0u32;

    for topic in &topics {
        let rel = relevant.entry(topic.id).or_default();
        // Core articles: components with the query phrase (sometimes with
        // narrative terms on top).
        for a in 0..3 {
            let n_rel = rng.gen_range(1..=3);
            docs.push(article(
                &mut rng,
                topic,
                ArticleKind::Core { n_rel },
                &mut cid,
                rel,
            ));
            let _ = a;
        }
        // Narrative-only articles: relevant components that the raw query
        // cannot retrieve (no query phrase inside the component).
        for _ in 0..2 {
            let n_rel = rng.gen_range(1..=2);
            docs.push(article(
                &mut rng,
                topic,
                ArticleKind::RelatedOnly { n_rel },
                &mut cid,
                rel,
            ));
        }
        // Marginal articles: morphological variants, assessed NOT relevant.
        if singularized(topic.query_phrase) != topic.query_phrase {
            let mut dummy = BTreeSet::new();
            for _ in 0..2 {
                docs.push(article(
                    &mut rng,
                    topic,
                    ArticleKind::Marginal { n: 2 },
                    &mut cid,
                    &mut dummy,
                ));
            }
        }
    }
    // Distractors: filler plus off-topic noise.
    for _ in 0..12 {
        let mut dummy = BTreeSet::new();
        let t = &topics[rng.gen_range(0..topics.len())];
        docs.push(article(
            &mut rng,
            t,
            ArticleKind::Distractor,
            &mut cid,
            &mut dummy,
        ));
    }

    InexCorpus {
        xml_docs: docs,
        topics,
        relevant,
    }
}

enum ArticleKind {
    /// Contains `n_rel` relevant components, each with the query phrase.
    Core { n_rel: usize },
    /// Contains `n_rel` relevant components with narrative terms only.
    RelatedOnly { n_rel: usize },
    /// Contains components with a *morphological variant* of the query
    /// phrase (plural words singularized). These are NOT assessed
    /// relevant; only stemming-relaxed matching retrieves them — they are
    /// the "marginally relevant" components behind §7.1's observation
    /// that relaxation can decrease precision.
    Marginal { n: usize },
    /// Irrelevant filler.
    Distractor,
}

/// Singularize the plural words of a phrase ("neural networks" →
/// "neural network") — merged with the original only under stemming.
fn singularized(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(|w| {
            if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") {
                &w[..w.len() - 1]
            } else {
                w
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn article(
    rng: &mut StdRng,
    topic: &InexTopic,
    kind: ArticleKind,
    cid: &mut u32,
    relevant: &mut BTreeSet<String>,
) -> String {
    let mut xml = String::with_capacity(2048);
    let author = format!(
        "{} {}",
        pick(rng, words::FIRST_NAMES),
        pick(rng, words::LAST_NAMES)
    );
    let title = match kind {
        ArticleKind::Distractor => words::filler_text(rng, 4),
        _ => format!("{} studies", topic.query_phrase),
    };
    // How many marked components remain to plant, whether they carry the
    // query phrase, and whether they are the marginal (variant-form,
    // unassessed) kind.
    let (mut remaining, with_query_phrase, marginal) = match kind {
        ArticleKind::Core { n_rel } => (n_rel, true, false),
        ArticleKind::RelatedOnly { n_rel } => (n_rel, false, false),
        ArticleKind::Marginal { n } => (n, false, true),
        ArticleKind::Distractor => (0, false, false),
    };

    let next_cid = |cid: &mut u32| {
        *cid += 1;
        format!("c{}", *cid)
    };

    xml.push_str("<article><fm><ti>");
    xml.push_str(&escape_text(&title));
    let _ = write!(xml, "</ti><au>{}</au>", escape_text(&author));

    // Abstract — assessable when the topic targets `abs`.
    {
        let id = next_cid(cid);
        let is_target = topic.target_tags.contains(&"abs");
        let rel = is_target && remaining > 0;
        if rel {
            remaining -= 1;
            if !marginal {
                relevant.insert(id.clone());
            }
        }
        let text = component_text(rng, topic, rel, with_query_phrase, marginal);
        let _ = write!(xml, "<abs cid=\"{id}\">{}</abs>", escape_text(&text));
    }
    xml.push_str("</fm><bdy>");

    for _ in 0..rng.gen_range(2..4) {
        let sec_id = next_cid(cid);
        let sec_rel = topic.target_tags.contains(&"sec") && remaining > 0;
        // A relevant `sec` is made relevant through its own heading
        // paragraph content.
        let sec_text = component_text(rng, topic, sec_rel, with_query_phrase, marginal);
        if sec_rel {
            remaining -= 1;
            if !marginal {
                relevant.insert(sec_id.clone());
            }
        }
        let _ = write!(
            xml,
            "<sec cid=\"{sec_id}\"><st>{}</st>",
            escape_text(&words::filler_text(rng, 3))
        );
        let _ = write!(
            xml,
            "<p cid=\"{}\">{}</p>",
            next_cid(cid),
            escape_text(&sec_text)
        );
        for _ in 0..rng.gen_range(1..4) {
            let p_id = next_cid(cid);
            let p_rel = topic.target_tags.contains(&"p") && remaining > 0 && rng.gen_bool(0.7);
            if p_rel {
                remaining -= 1;
                if !marginal {
                    relevant.insert(p_id.clone());
                }
            }
            let text = component_text(rng, topic, p_rel, with_query_phrase, marginal);
            let _ = write!(xml, "<p cid=\"{p_id}\">{}</p>", escape_text(&text));
        }
        if rng.gen_bool(0.6) {
            let f_id = next_cid(cid);
            let f_rel = topic.target_tags.contains(&"fig") && remaining > 0;
            if f_rel {
                remaining -= 1;
                if !marginal {
                    relevant.insert(f_id.clone());
                }
            }
            let caption = component_text(rng, topic, f_rel, with_query_phrase, marginal);
            let _ = write!(
                xml,
                "<fig cid=\"{f_id}\"><fgc>{}</fgc></fig>",
                escape_text(&caption)
            );
        }
        xml.push_str("</sec>");
    }
    xml.push_str("</bdy></article>");
    xml
}

/// A component body for the topic: filler, plus planted phrases when the
/// component is relevant. Narrative-only components always get at least
/// one narrative term (that is what makes them assessable).
fn component_text(
    rng: &mut StdRng,
    topic: &InexTopic,
    rel: bool,
    with_query_phrase: bool,
    marginal: bool,
) -> String {
    if !rel {
        let n = rng.gen_range(8..25);
        return words::filler_text(rng, n);
    }
    if marginal {
        // Repeat the variant form so stemming scores these components
        // highly (tf) — which is how they displace exact matches.
        let variant = singularized(topic.query_phrase);
        let n = rng.gen_range(10..20);
        let v1 = variant.clone();
        let refs: Vec<&str> = vec![&v1, &variant];
        return words::filler_with(rng, n, &refs);
    }
    let mut extra: Vec<&str> = Vec::new();
    if with_query_phrase {
        extra.push(topic.query_phrase);
    }
    extra.push(topic.related[rng.gen_range(0..topic.related.len())]);
    if rng.gen_bool(0.4) {
        extra.push(topic.related[rng.gen_range(0..topic.related.len())]);
    }
    let n = rng.gen_range(10..25);
    words::filler_with(rng, n, &extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate(9);
        let b = generate(9);
        assert_eq!(a.xml_docs, b.xml_docs);
        assert_eq!(a.relevant, b.relevant);
    }

    #[test]
    fn all_documents_parse() {
        let corpus = generate(1);
        let mut coll = Collection::new();
        for d in &corpus.xml_docs {
            coll.add_xml(d).unwrap();
        }
        assert_eq!(coll.len(), corpus.xml_docs.len());
        assert!(coll.len() > 8 * 5);
    }

    #[test]
    fn every_topic_has_relevant_components() {
        let corpus = generate(2);
        for t in &corpus.topics {
            let rel = &corpus.relevant[&t.id];
            assert!(
                rel.len() >= 3,
                "topic {} has only {} relevant",
                t.id,
                rel.len()
            );
            assert!(rel.len() <= 25, "topic {} has {}", t.id, rel.len());
        }
    }

    #[test]
    fn narrative_only_components_exist() {
        // For each topic, at least one relevant component must NOT contain
        // the query phrase (otherwise personalization has nothing to
        // recover).
        let corpus = generate(3);
        let all = corpus.xml_docs.join("\n");
        for t in &corpus.topics {
            let mut found_narrative_only = false;
            for cid in &corpus.relevant[&t.id] {
                // Extract the component's text crudely from the XML string.
                let marker = format!("cid=\"{cid}\"");
                let pos = all.find(&marker).expect("cid present");
                let after = &all[pos..pos + 600.min(all.len() - pos)];
                if !after.contains(t.query_phrase) {
                    found_narrative_only = true;
                    break;
                }
            }
            assert!(
                found_narrative_only,
                "topic {} lacks narrative-only components",
                t.id
            );
        }
    }

    #[test]
    fn cids_are_unique_across_corpus() {
        let corpus = generate(4);
        let all = corpus.xml_docs.join("\n");
        let mut seen = std::collections::HashSet::new();
        for part in all.split("cid=\"").skip(1) {
            let id = part.split('"').next().unwrap();
            assert!(seen.insert(id.to_string()), "duplicate cid {id}");
        }
    }

    #[test]
    fn topic_numbers_match_table1() {
        let ids: Vec<u32> = topics().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![130, 131, 132, 140, 141, 142, 145, 151]);
    }
}

// ---------------------------------------------------------------------------
// The paper's `<inex-topic>` document format (§7.1 shows topic 131): a NEXI
// title, a plain-English description, and a narrative whose quoted phrases
// are what an assessor (and our profile derivation) treats as relevant
// vocabulary.

/// Render a topic in the paper's `<inex-topic>` format. The target element
/// type in the title is the topic's first requested tag.
pub fn topic_to_xml(topic: &InexTopic) -> String {
    use pimento_xml::escape::escape_text;
    let tag = topic.target_tags[0];
    let quoted: Vec<String> = topic.related.iter().map(|r| format!("\"{r}\"")).collect();
    format!(
        "<inex-topic topic-id=\"{id}\" query-type=\"CAS\">\
         <title>//article//{tag}[about(., \"{phrase}\")]</title>\
         <description>We are looking for {tag} components about {phrase}.</description>\
         <narrative>To be relevant, the component has to discuss {phrase}. \
         Any related topics (e.g. {related}) should be considered as relevant.</narrative>\
         </inex-topic>",
        id = topic.id,
        tag = tag,
        phrase = escape_text(topic.query_phrase),
        related = escape_text(&quoted.join(", ")),
    )
}

/// A topic read back from an `<inex-topic>` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTopic {
    /// `topic-id` attribute.
    pub id: u32,
    /// The NEXI title (the query to run).
    pub title: String,
    /// Plain-English description.
    pub description: String,
    /// Quoted phrases extracted from the narrative — the vocabulary the
    /// keyword ordering rules are derived from (§7.1).
    pub narrative_phrases: Vec<String>,
}

/// Parse an `<inex-topic>` document (the format [`topic_to_xml`] writes,
/// which mirrors the paper's excerpt).
pub fn topic_from_xml(xml: &str) -> Result<ParsedTopic, String> {
    use pimento_xml::{parse_with, SymbolTable};
    let mut symbols = SymbolTable::new();
    let doc = parse_with(xml, &mut symbols).map_err(|e| e.to_string())?;
    let root = doc.root();
    let root_node = doc.node(root);
    if symbols.name(root_node.tag().ok_or("no root tag")?) != "inex-topic" {
        return Err("not an inex-topic document".to_string());
    }
    let id_sym = symbols
        .get("topic-id")
        .ok_or("missing topic-id attribute")?;
    let id: u32 = root_node
        .attr(id_sym)
        .ok_or("missing topic-id attribute")?
        .trim()
        .parse()
        .map_err(|_| "topic-id is not a number".to_string())?;
    let field = |name: &str| -> Result<String, String> {
        let sym = symbols
            .get(name)
            .ok_or_else(|| format!("missing <{name}>"))?;
        let node = doc
            .child_element(root, sym)
            .ok_or_else(|| format!("missing <{name}>"))?;
        Ok(doc.text_content(node))
    };
    let title = field("title")?;
    let description = field("description")?;
    let narrative = field("narrative")?;
    // Quoted phrases in the narrative are the assessor-relevant vocabulary.
    let narrative_phrases: Vec<String> = narrative
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect();
    Ok(ParsedTopic {
        id,
        title,
        description,
        narrative_phrases,
    })
}

#[cfg(test)]
mod topic_xml_tests {
    use super::*;

    #[test]
    fn roundtrip_topic_131() {
        let all = topics();
        let t131 = all.iter().find(|t| t.id == 131).unwrap();
        let xml = topic_to_xml(t131);
        let parsed = topic_from_xml(&xml).unwrap();
        assert_eq!(parsed.id, 131);
        assert!(parsed.title.contains("//article//abs"));
        assert!(parsed.title.contains("data mining"));
        assert_eq!(
            parsed.narrative_phrases,
            vec!["association rules", "data cube", "knowledge discovery"]
        );
        // The title is a valid query in our TPQ syntax.
        pimento_tpq::parse_tpq(&parsed.title).expect("NEXI title parses");
    }

    #[test]
    fn all_topics_roundtrip() {
        for t in topics() {
            let parsed = topic_from_xml(&topic_to_xml(&t)).unwrap();
            assert_eq!(parsed.id, t.id);
            assert_eq!(parsed.narrative_phrases.len(), t.related.len());
        }
    }

    #[test]
    fn malformed_topics_rejected() {
        assert!(topic_from_xml("<not-a-topic/>").is_err());
        assert!(topic_from_xml("<inex-topic><title>x</title></inex-topic>").is_err());
        assert!(topic_from_xml(
            r#"<inex-topic topic-id="abc"><title>t</title><description>d</description><narrative>n</narrative></inex-topic>"#
        )
        .is_err());
        assert!(topic_from_xml("<broken").is_err());
    }
}
