//! # pimento-datagen
//!
//! Seeded synthetic data generators backing the PIMENTO experiments:
//!
//! * [`carsale`] — the paper's Fig. 1 running example plus a random
//!   dealer-document generator;
//! * [`xmark`] — XMark-like auction-site documents, byte-size
//!   parameterized for the Fig. 6 scaling axis (101 KB … 10 MB);
//! * [`inex`] — an INEX-like article collection with 8 topics, narrative
//!   vocabularies, and ground-truth assessments for Table 1;
//! * [`words`] — shared vocabulary pools.
//!
//! Everything is deterministic per seed (`StdRng::seed_from_u64`), so
//! experiment tables regenerate bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carsale;
pub mod inex;
pub mod words;
pub mod xmark;

pub use carsale::{generate_dealer, paper_figure1};
pub use inex::{
    generate as generate_inex, topic_from_xml, topic_to_xml, InexCorpus, InexTopic, ParsedTopic,
};
pub use xmark::{generate as generate_xmark, FIG6_SIZES};
