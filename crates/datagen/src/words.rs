//! Deterministic vocabulary pools and filler-text generation shared by the
//! synthetic corpora.

use rand::rngs::StdRng;
use rand::Rng;

/// Common English filler words (function + frequent content words) used to
//  pad descriptions so keyword statistics look natural.
pub const FILLER: &[&str] = &[
    "the", "a", "of", "and", "to", "in", "for", "with", "on", "this", "that", "from", "by",
    "about", "after", "before", "under", "over", "between", "system", "time", "year", "work",
    "world", "house", "road", "water", "light", "paper", "point", "place", "market", "group",
    "offer", "value", "detail", "note", "item", "record", "report", "piece", "order", "service",
];

/// First names used by the person/owner generators.
pub const FIRST_NAMES: &[&str] = &[
    "John", "Mary", "Wei", "Anna", "Luis", "Priya", "Tom", "Sara", "Ivan", "Mina", "Omar", "Julia",
    "Ken", "Lena", "Paul", "Rita",
];

/// Last names used by the person/owner generators.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Chen", "Garcia", "Patel", "Muller", "Rossi", "Kim", "Novak", "Brown", "Silva",
    "Tanaka", "Olsen", "Dubois", "Haddad", "Kovacs", "Walsh",
];

/// US cities (Phoenix first — π4 of the XMark workload keys on it).
pub const CITIES: &[&str] = &[
    "Phoenix",
    "Springfield",
    "Riverton",
    "Lakeside",
    "Georgetown",
    "Fairview",
    "Bristol",
    "Clinton",
    "Salem",
    "Madison",
];

/// Countries ("United States" first — π2 keys on it).
pub const COUNTRIES: &[&str] = &[
    "United States",
    "Canada",
    "Germany",
    "France",
    "Japan",
    "Brazil",
    "India",
    "Australia",
    "Spain",
    "Norway",
];

/// Education levels ("College" is π3's keyword).
pub const EDUCATION: &[&str] = &["College", "High School", "Graduate School", "Other"];

/// Car makes for the dealer generator.
pub const MAKES: &[&str] = &[
    "Honda", "Ford", "Toyota", "Mustang", "Volvo", "Fiat", "Subaru",
];

/// Car colors.
pub const COLORS: &[&str] = &["red", "blue", "black", "white", "silver", "green"];

/// Pick one element of `pool` uniformly.
pub fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Produce `n` filler words joined by spaces.
pub fn filler_text(rng: &mut StdRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 6);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(pick(rng, FILLER));
    }
    out
}

/// Insert `extra` terms into filler text of roughly `n` words at random
/// positions — used to plant topical keywords into padding.
pub fn filler_with(rng: &mut StdRng, n: usize, extra: &[&str]) -> String {
    let mut words: Vec<&str> = (0..n).map(|_| pick(rng, FILLER)).collect();
    for term in extra {
        let pos = rng.gen_range(0..=words.len());
        words.insert(pos, term);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_with_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(filler_text(&mut a, 20), filler_text(&mut b, 20));
    }

    #[test]
    fn filler_with_plants_all_terms() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = filler_with(&mut rng, 10, &["zebra", "quokka"]);
        assert!(text.contains("zebra"));
        assert!(text.contains("quokka"));
        assert_eq!(text.split(' ').count(), 12);
    }

    #[test]
    fn pools_are_nonempty_and_keyed() {
        assert_eq!(CITIES[0], "Phoenix");
        assert_eq!(COUNTRIES[0], "United States");
        assert_eq!(EDUCATION[0], "College");
    }
}
