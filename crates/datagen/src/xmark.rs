//! XMark-like document generator for the performance experiments
//! (paper §7.2, Figures 5–7).
//!
//! The real XMark benchmark generator is a C tool emitting auction sites.
//! The paper's performance workload only touches `person` records — the
//! query is `ad(person, business) & ftcontains(business, "Yes")` and the
//! KORs key on "male" / "United States" / "College" / "Phoenix", with the
//! VOR `x.age = 33` (Fig. 5). This generator reproduces the relevant
//! structure (persons with profile, address, business flag) plus item
//! filler for realistic parse/index mass, and is **byte-size
//! parameterized** so the document-size axis of Fig. 6
//! (101 KB … 10 MB) can be regenerated exactly.

use crate::words::{self, pick};
use pimento_xml::escape::escape_text;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The paper's Fig. 6 document sizes, in bytes.
pub const FIG6_SIZES: &[(&str, usize)] = &[
    ("101K", 101 * 1024),
    ("212K", 212 * 1024),
    ("468K", 468 * 1024),
    ("571K", 571 * 1024),
    ("823K", 823 * 1024),
    ("1M", 1024 * 1024),
    ("5.7M", 5 * 1024 * 1024 + 700 * 1024),
    ("10M", 10 * 1024 * 1024),
];

/// Generate an XMark-like document of approximately `target_bytes`
/// (within ~1%, always ≥ the target's person mass). Deterministic per
/// seed.
pub fn generate(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xml = String::with_capacity(target_bytes + 4096);
    xml.push_str("<site><people>");
    let people_budget = target_bytes * 7 / 10; // 70% persons, 30% items
    let mut pid = 0u32;
    while xml.len() < people_budget {
        write_person(&mut xml, &mut rng, pid);
        pid += 1;
    }
    xml.push_str("</people><regions><namerica>");
    // 28 = length of the closing tags below, so the finished document is
    // always >= target_bytes no matter how short the last item runs.
    while xml.len() + 28 < target_bytes {
        write_item(&mut xml, &mut rng);
    }
    xml.push_str("</namerica></regions></site>");
    xml
}

/// Number of persons a generated document of `target_bytes` will contain
/// (derived by generation, used by tests).
pub fn count_persons(xml: &str) -> usize {
    xml.matches("<person ").count()
}

fn write_person(xml: &mut String, rng: &mut StdRng, id: u32) {
    let first = pick(rng, words::FIRST_NAMES);
    let last = pick(rng, words::LAST_NAMES);
    let gender = if rng.gen_bool(0.5) { "male" } else { "female" };
    let age = rng.gen_range(18..70);
    let education = pick(rng, words::EDUCATION);
    let business = if rng.gen_bool(0.5) { "Yes" } else { "No" };
    let country = pick(rng, words::COUNTRIES);
    let city = pick(rng, words::CITIES);
    let income = rng.gen_range(20_000..180_000);
    let bio_words = rng.gen_range(8..24);
    let bio = words::filler_text(rng, bio_words);
    let _ = write!(
        xml,
        "<person id=\"p{id}\"><name>{first} {last}</name>\
         <emailaddress>mailto:{f}.{l}@example.com</emailaddress>\
         <address><street>{n} {street} St</street><city>{city}</city><country>{country}</country></address>\
         <profile income=\"{income}\"><gender>{gender}</gender><age>{age}</age>\
         <education>{education}</education><business>{business}</business>\
         <interest category=\"c{cat}\"/></profile>\
         <watches><watch open_auction=\"o{w}\"/></watches>\
         <description>{bio}</description></person>",
        f = first.to_lowercase(),
        l = last.to_lowercase(),
        n = rng.gen_range(1..99),
        street = pick(rng, words::LAST_NAMES),
        cat = rng.gen_range(0..20),
        w = rng.gen_range(0..1000),
        bio = escape_text(&bio),
    );
}

fn write_item(xml: &mut String, rng: &mut StdRng) {
    let name = words::filler_text(rng, 3);
    let desc_words = rng.gen_range(10..30);
    let desc = words::filler_text(rng, desc_words);
    let _ = write!(
        xml,
        "<item id=\"i{}\"><location>{}</location><quantity>{}</quantity>\
         <name>{}</name><payment>Cash</payment><description><text>{}</text></description></item>",
        rng.gen_range(0..1_000_000),
        pick(rng, words::COUNTRIES),
        rng.gen_range(1..5),
        escape_text(&name),
        escape_text(&desc),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;

    #[test]
    fn hits_target_size_within_tolerance() {
        for &target in &[101 * 1024, 512 * 1024] {
            let xml = generate(1, target);
            let len = xml.len();
            assert!(
                len >= target && len <= target + target / 20,
                "target {target}, got {len}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(5, 50_000), generate(5, 50_000));
        assert_ne!(generate(5, 50_000), generate(6, 50_000));
    }

    #[test]
    fn parses_and_contains_workload_fields() {
        let xml = generate(2, 120_000);
        let mut coll = Collection::new();
        coll.add_xml(&xml).unwrap();
        for tag in ["person", "business", "age", "education", "city", "country"] {
            assert!(coll.tag(tag).is_some(), "missing tag {tag}");
        }
        assert!(xml.contains(">Yes<"));
        assert!(xml.contains("male"));
        assert!(xml.contains("Phoenix"));
        assert!(xml.contains("United States"));
        assert!(xml.contains("College"));
    }

    #[test]
    fn person_count_scales_with_size() {
        let small = count_persons(&generate(3, 60_000));
        let large = count_persons(&generate(3, 240_000));
        assert!(large > small * 3, "small={small} large={large}");
    }

    #[test]
    fn fig6_size_table_is_sane() {
        assert_eq!(FIG6_SIZES.len(), 8);
        assert!(FIG6_SIZES.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(FIG6_SIZES[7].1, 10 * 1024 * 1024);
    }
}
