//! Process-level tests of the `pimento-datagen` CLI binary.

use std::process::Command;

fn datagen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pimento-datagen"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pimento-datagen-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn dealer_and_xmark_generation() {
    let out_file = temp_dir().join("dealer.xml");
    let out = datagen()
        .args(["dealer", "--cars", "25", "--seed", "9", "--out"])
        .arg(&out_file)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let xml = std::fs::read_to_string(&out_file).unwrap();
    assert_eq!(xml.matches("<car>").count(), 25);

    let xmark_file = temp_dir().join("site.xml");
    let out = datagen()
        .args(["xmark", "--bytes", "65536", "--out"])
        .arg(&xmark_file)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let len = std::fs::metadata(&xmark_file).unwrap().len() as i64;
    assert!(
        (len - 65536).abs() < 2048,
        "within ~3% of the target: {len}"
    );
}

#[test]
fn inex_corpus_dump() {
    let dir = temp_dir().join("inex");
    let out = datagen()
        .args(["inex", "--seed", "3", "--out-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(entries.len() > 60, "articles + topics + qrels");
    let qrels = std::fs::read_to_string(dir.join("qrels.txt")).unwrap();
    assert!(qrels.lines().count() > 30);
    // Topic files parse back.
    let topic = std::fs::read_to_string(dir.join("topic-131.xml")).unwrap();
    let parsed = pimento_datagen::topic_from_xml(&topic).unwrap();
    assert_eq!(parsed.id, 131);
}

#[test]
fn bad_mode_is_usage_error() {
    let out = datagen().arg("bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = datagen().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
