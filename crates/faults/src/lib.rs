//! # pimento-faults
//!
//! A deterministic, seed-driven fault-injection registry (DESIGN.md §12).
//!
//! Production code marks **fault points** — named places where an I/O
//! error, a corrupt snapshot, or a panic could occur — by asking
//! [`should_fire`] whether an installed [`FaultPlan`] schedules a fault
//! there. With no plan installed (the default, and the only state
//! reachable unless a chaos test calls [`install`]) every query answers
//! `false`, so the instrumented code takes its normal path.
//!
//! The registry is compiled into consumers behind their `fault-injection`
//! cargo feature; release binaries built without the feature contain no
//! fault-point code at all.
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(seed, point name, hit index)`:
//! the *n*-th arrival at a given point fires or not independently of
//! thread interleaving, so a chaos schedule is reproducible from its seed
//! alone — the set of fired hit indices is fixed even when the requests
//! that draw those indices race. Schedules compose three primitives:
//!
//! * [`FaultPlan::every`] — fire ~1-in-`n` of hits, seed-hashed so
//!   different seeds select different (but fixed) subsets;
//! * [`FaultPlan::at`] — fire on exactly the `k`-th hit;
//! * [`FaultPlan::always`] — fire on every hit.
//!
//! [`hits`] and [`fired`] expose per-point counters so tests can assert
//! exactly how many faults a run injected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod vfs;

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How one fault point fires within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fire when `mix(seed, point, hit) % n == 0` — a fixed ~1-in-`n`
    /// subset of hit indices, selected by the seed.
    EveryNth(u64),
    /// Fire on exactly the `k`-th hit (1-based), never again.
    At(u64),
    /// Fire on every hit.
    Always,
}

/// A reproducible fault schedule: a seed plus per-point firing rules.
/// Build with the `every`/`at`/`always` combinators, then [`install`] it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(String, Mode)>,
}

impl FaultPlan {
    /// An empty plan under `seed` (no point fires until rules are added).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Fire `point` on a seed-selected ~1-in-`n` subset of its hits.
    /// `n == 1` fires always; `n == 0` is treated as never.
    pub fn every(mut self, point: &str, n: u64) -> FaultPlan {
        self.rules.push((point.to_string(), Mode::EveryNth(n)));
        self
    }

    /// Fire `point` on exactly its `k`-th hit (1-based).
    pub fn at(mut self, point: &str, k: u64) -> FaultPlan {
        self.rules.push((point.to_string(), Mode::At(k)));
        self
    }

    /// Fire `point` on every hit.
    pub fn always(mut self, point: &str) -> FaultPlan {
        self.rules.push((point.to_string(), Mode::Always));
        self
    }

    fn mode(&self, point: &str) -> Option<Mode> {
        self.rules.iter().find(|(p, _)| p == point).map(|(_, m)| *m)
    }
}

/// The installed plan plus per-point hit/fired counters.
#[derive(Debug, Default)]
struct Active {
    plan: FaultPlan,
    hits: HashMap<String, u64>,
    fired: HashMap<String, u64>,
}

static REGISTRY: OnceLock<Mutex<Option<Active>>> = OnceLock::new();

// A panicking thread is the *expected* client of this registry (that is
// what it injects), so a poisoned mutex must not cascade: the state is a
// plan plus counters, both valid at every instruction boundary.
fn registry() -> MutexGuard<'static, Option<Active>> {
    let m = REGISTRY.get_or_init(|| Mutex::new(None));
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Install `plan`, replacing any previous one and zeroing all counters.
pub fn install(plan: FaultPlan) {
    *registry() = Some(Active {
        plan,
        ..Active::default()
    });
}

/// Remove the installed plan; every point stops firing.
pub fn clear() {
    *registry() = None;
}

/// Is a fault plan currently installed?
pub fn is_active() -> bool {
    registry().is_some()
}

/// Record one arrival at `point` and decide whether it fires under the
/// installed plan. Always `false` when no plan is installed.
pub fn should_fire(point: &str) -> bool {
    let mut guard = registry();
    let Some(active) = guard.as_mut() else {
        return false;
    };
    let hit = active.hits.entry(point.to_string()).or_insert(0);
    *hit += 1;
    let hit = *hit;
    let fire = match active.plan.mode(point) {
        None => false,
        Some(Mode::Always) => true,
        Some(Mode::At(k)) => hit == k,
        Some(Mode::EveryNth(0)) => false,
        Some(Mode::EveryNth(n)) => mix(active.plan.seed, point, hit).is_multiple_of(n),
    };
    if fire {
        *active.fired.entry(point.to_string()).or_insert(0) += 1;
    }
    fire
}

/// How many times `point` has been hit since the plan was installed.
pub fn hits(point: &str) -> u64 {
    registry()
        .as_ref()
        .and_then(|a| a.hits.get(point).copied())
        .unwrap_or(0)
}

/// How many of those hits actually fired.
pub fn fired(point: &str) -> u64 {
    registry()
        .as_ref()
        .and_then(|a| a.fired.get(point).copied())
        .unwrap_or(0)
}

/// splitmix64 over `(seed, fnv1a(point), hit)` — the per-hit decision
/// stream. Pure, so a schedule replays identically from its seed.
fn mix(seed: u64, point: &str, hit: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in point.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut z = seed ^ h ^ hit.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests that install plans must not
    // interleave.
    fn serialized() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        match GATE.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn no_plan_never_fires() {
        let _g = serialized();
        clear();
        assert!(!is_active());
        assert!(!should_fire("io.read"));
        assert_eq!(hits("io.read"), 0);
        assert_eq!(fired("io.read"), 0);
    }

    #[test]
    fn at_fires_exactly_once() {
        let _g = serialized();
        install(FaultPlan::new(7).at("persist.load", 3));
        let fired_seq: Vec<bool> = (0..6).map(|_| should_fire("persist.load")).collect();
        assert_eq!(fired_seq, [false, false, true, false, false, false]);
        assert_eq!(hits("persist.load"), 6);
        assert_eq!(fired("persist.load"), 1);
        clear();
    }

    #[test]
    fn always_fires_and_unlisted_points_do_not() {
        let _g = serialized();
        install(FaultPlan::new(1).always("store.fsync"));
        assert!(should_fire("store.fsync"));
        assert!(should_fire("store.fsync"));
        assert!(!should_fire("store.rename"));
        assert_eq!(hits("store.rename"), 1, "misses still count as hits");
        clear();
    }

    #[test]
    fn every_nth_is_deterministic_and_near_rate() {
        let _g = serialized();
        let run = |seed: u64| -> Vec<bool> {
            install(FaultPlan::new(seed).every("worker.job", 8));
            let v = (0..512).map(|_| should_fire("worker.job")).collect();
            clear();
            v
        };
        let a = run(0xC0FFEE);
        let b = run(0xC0FFEE);
        assert_eq!(a, b, "same seed, same schedule");
        let c = run(0xBEEF);
        assert_ne!(a, c, "different seeds select different subsets");
        let rate = a.iter().filter(|&&f| f).count();
        // ~1 in 8 of 512 = 64 expected; allow a generous band (the subset
        // is hash-selected, not strictly periodic).
        assert!((20..=120).contains(&rate), "fired {rate}/512");
    }

    #[test]
    fn every_one_always_fires_and_every_zero_never() {
        let _g = serialized();
        install(FaultPlan::new(3).every("a", 1).every("b", 0));
        assert!(should_fire("a") && should_fire("a"));
        assert!(!should_fire("b") && !should_fire("b"));
        clear();
    }

    #[test]
    fn install_resets_counters() {
        let _g = serialized();
        install(FaultPlan::new(1).always("p"));
        assert!(should_fire("p"));
        install(FaultPlan::new(1).always("p"));
        assert_eq!(hits("p"), 0);
        clear();
    }
}
