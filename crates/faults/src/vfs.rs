//! # Virtual filesystem layer (DESIGN.md §17)
//!
//! Every durable write in PIMENTO — segment files, tombstone sidecars,
//! the shard `MANIFEST`, stored profiles — goes through the [`Vfs`]
//! trait instead of calling `std::fs` directly. Production code uses
//! [`StdVfs`], a thin veneer over the real filesystem. Under the
//! `fault-injection` feature the same call sites can be pointed at
//! [`SimVfs`], an in-memory filesystem that models the failure modes a
//! real disk exposes across a crash:
//!
//! * **torn writes** — file content written but never fsynced survives a
//!   crash only as an arbitrary prefix;
//! * **lost namespace operations** — a rename or create not followed by
//!   a directory fsync may be rolled back;
//! * **dropped fsyncs** — a misbehaving device acknowledges `fsync` but
//!   persists nothing;
//! * **disk-full** — a byte budget makes writes fail with `ENOSPC`
//!   after a short write, exactly like a full partition.
//!
//! [`SimVfs`] also counts every *mutating* operation (write, fsync,
//! rename, remove, mkdir) as a **crash point**. A harness first replays
//! a commit sequence cleanly to learn the number of points `N`, then
//! replays it `N` more times with [`SimVfs::set_crash_at`] arming point
//! `k` for each `k in 1..=N`: the armed operation fails, every
//! subsequent operation fails (the filesystem is "offline"), and
//! [`SimVfs::reboot`] materialises the post-crash disk under a chosen
//! [`CrashStyle`]. Recovery code is then asserted to reproduce either
//! the pre-write or the post-commit state — never a third one.
//!
//! The module also hosts the shared durability idiom ([`write_durable`]:
//! temp file → fsync → atomic rename → directory fsync, with temp
//! cleanup on failure so `ENOSPC` retries can succeed) and the
//! quarantine policy helpers ([`quarantine_file`],
//! [`enforce_quarantine_cap`]) used by the stores and the scrubber.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Abstract filesystem operations for durable state.
///
/// The trait is whole-file oriented on purpose: every PIMENTO artifact
/// is written in one shot and committed by rename, so streaming APIs
/// would only widen the surface the crash harness has to enumerate.
/// All methods are safe to call from multiple threads.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Create (or truncate) `path` and write `bytes` to it.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush `path`'s content to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Flush `dir`'s entries (creations, renames, removals) to stable
    /// storage. Best-effort on platforms where directories cannot be
    /// opened for sync.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Read the full content of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// List the files (not directories) directly under `dir`, sorted.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Length in bytes of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
}

/// The production [`Vfs`]: a thin veneer over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

/// A ready-to-share handle to the production filesystem.
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is best-effort: some filesystems refuse to
        // open a directory for writing/sync, and recovery handles a
        // lost namespace update by falling back to the prior
        // generation. Never fail the commit over it.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// Whether an I/O error means the disk is full (`ENOSPC`).
///
/// Matched on the raw OS error so the check works uniformly for real
/// filesystem errors and for the budget-exhausted errors [`SimVfs`]
/// synthesises.
pub fn is_disk_full(err: &io::Error) -> bool {
    err.raw_os_error() == Some(ENOSPC_CODE)
}

/// `ENOSPC` on every platform PIMENTO targets.
const ENOSPC_CODE: i32 = 28;

#[cfg(feature = "fault-injection")]
fn enospc() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC_CODE)
}

/// Durably publish `bytes` as `dir/name`: write `dir/name.tmp`, fsync
/// it, atomically rename over the destination, fsync the directory.
///
/// On any failure the temp file is removed (best-effort) so a full
/// disk is not further burdened by stranded temps and a retry after
/// space frees can succeed. The destination is either untouched or
/// fully replaced — never torn — as long as fsyncs are honest.
pub fn write_durable(vfs: &dyn Vfs, dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp_name = format!("{name}.tmp");
    let tmp = dir.join(&tmp_name);
    let result = (|| {
        vfs.write_file(&tmp, bytes)?;
        vfs.fsync(&tmp)?;
        vfs.rename(&tmp, &dir.join(name))?;
        vfs.fsync_dir(dir)
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// Suffix a quarantined artifact carries: `<original>.q<seq>.quarantined`.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

/// One quarantined artifact, as reported by [`quarantine_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedFile {
    /// Full path of the quarantined copy.
    pub path: PathBuf,
    /// Eviction order: lower sequence numbers are older.
    pub seq: u64,
    /// Size in bytes.
    pub len: u64,
}

/// Caps on quarantined artifacts in one directory; see
/// [`enforce_quarantine_cap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineCap {
    /// Maximum number of `*.quarantined` files kept.
    pub max_files: usize,
    /// Maximum total bytes of `*.quarantined` files kept.
    pub max_bytes: u64,
}

impl Default for QuarantineCap {
    /// 64 files / 64 MiB: enough to diagnose a flapping disk, bounded
    /// enough never to fill the partition it is protecting.
    fn default() -> QuarantineCap {
        QuarantineCap {
            max_files: 64,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Parse `<original>.q<seq>.quarantined` back into its sequence number.
fn quarantine_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(QUARANTINE_SUFFIX)?;
    let (_, tag) = stem.rsplit_once('.')?;
    let digits = tag.strip_prefix('q')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every quarantined artifact under `dir`, oldest (lowest `seq`) first.
pub fn quarantine_stats(vfs: &dyn Vfs, dir: &Path) -> Vec<QuarantinedFile> {
    let mut out = Vec::new();
    let Ok(files) = vfs.list(dir) else {
        return out;
    };
    for path in files {
        if let Some(seq) = quarantine_seq(&path) {
            let len = vfs.file_len(&path).unwrap_or(0);
            out.push(QuarantinedFile { path, seq, len });
        }
    }
    out.sort_by_key(|a| a.seq);
    out
}

/// Move a damaged artifact aside as `<name>.q<seq>.quarantined`, where
/// `seq` is one past the highest sequence already present in its
/// directory, then age out the oldest quarantined files until `cap`
/// holds. Returns the quarantine path.
pub fn quarantine_file(vfs: &dyn Vfs, path: &Path, cap: QuarantineCap) -> io::Result<PathBuf> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unnamed artifact"))?;
    let seq = quarantine_stats(vfs, dir)
        .last()
        .map(|q| q.seq + 1)
        .unwrap_or(1);
    let target = dir.join(format!("{name}.q{seq:06}{QUARANTINE_SUFFIX}"));
    vfs.rename(path, &target)?;
    enforce_quarantine_cap(vfs, dir, cap);
    Ok(target)
}

/// Evict quarantined files oldest-first until both the count and the
/// total-bytes cap hold. Returns how many files were evicted. Eviction
/// failures are ignored: the cap is a bound on growth, not an
/// invariant worth crashing a scrubber over.
pub fn enforce_quarantine_cap(vfs: &dyn Vfs, dir: &Path, cap: QuarantineCap) -> usize {
    let mut kept = quarantine_stats(vfs, dir);
    let mut total: u64 = kept.iter().map(|q| q.len).sum();
    let mut evicted = 0;
    while kept.len() > cap.max_files || total > cap.max_bytes {
        let oldest = kept.remove(0);
        if vfs.remove_file(&oldest.path).is_ok() {
            evicted += 1;
        }
        total = total.saturating_sub(oldest.len);
        if kept.is_empty() {
            break;
        }
    }
    evicted
}

#[cfg(feature = "fault-injection")]
pub use sim::{CrashStyle, SimVfs};

#[cfg(feature = "fault-injection")]
mod sim {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet, HashMap};
    use std::sync::Mutex;

    /// What a simulated crash preserves; see [`SimVfs::reboot`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CrashStyle {
        /// Worst case: only state explicitly made durable survives.
        /// Namespace operations (creates, renames, removals) not
        /// committed by a directory fsync are rolled back; file content
        /// not committed by a file fsync survives only as a torn
        /// prefix.
        Lose,
        /// Best case: everything the process wrote survives, fsynced
        /// or not. Recovery must accept this too — a crash is allowed
        /// to be lucky.
        Keep,
        /// Namespace operations all survive (as on a journalling
        /// filesystem that commits metadata promptly), but unsynced
        /// file content is torn. This is the style that manufactures a
        /// *visible* torn artifact when an fsync was dropped.
        Torn,
    }

    #[derive(Debug, Clone)]
    struct Inode {
        live: Vec<u8>,
        /// Content guaranteed on stable storage (`None` until the
        /// first honest fsync, reset by an in-place truncate).
        synced: Option<Vec<u8>>,
    }

    #[derive(Debug, Default)]
    struct SimState {
        /// Live namespace: what the running process observes.
        ns: BTreeMap<PathBuf, u64>,
        /// Durable namespace: the paths (and inode bindings) a `Lose`
        /// crash preserves. Updated only by `fsync_dir`.
        durable_ns: BTreeMap<PathBuf, u64>,
        /// Directories. These survive every crash style: directory
        /// creation races are not a failure mode PIMENTO's commit
        /// protocol depends on.
        dirs: BTreeSet<PathBuf>,
        inodes: HashMap<u64, Inode>,
        next_ino: u64,
        /// Mutating operations seen so far (the crash-point counter).
        ops: u64,
        crash_at: Option<u64>,
        crashed: bool,
        /// Remaining disk bytes, if a budget is set.
        budget: Option<u64>,
        drop_fsyncs: bool,
        seed: u64,
    }

    /// An in-memory filesystem with simulated crash, torn-write,
    /// dropped-fsync and disk-full behaviour. See the module docs for
    /// the harness protocol.
    #[derive(Debug)]
    pub struct SimVfs {
        state: Mutex<SimState>,
    }

    fn offline() -> io::Error {
        io::Error::other("simvfs: filesystem offline after simulated crash")
    }

    fn not_found(path: &Path) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("simvfs: no such file: {}", path.display()),
        )
    }

    impl SimVfs {
        /// An empty simulated filesystem. `seed` drives the (fully
        /// deterministic) choice of torn-write prefix lengths.
        pub fn new(seed: u64) -> SimVfs {
            SimVfs {
                state: Mutex::new(SimState {
                    seed,
                    ..SimState::default()
                }),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
            // A panic while holding the lock only happens if a test
            // assertion fired inside a closure; the state is still
            // coherent for the next assertion.
            self.state.lock().unwrap_or_else(|p| p.into_inner())
        }

        /// Arm (or disarm with `None`) a crash at the `k`-th *future*
        /// mutating operation, 1-based against [`SimVfs::mutations`].
        /// The armed operation fails after applying a torn prefix (for
        /// writes), and every subsequent operation fails until
        /// [`SimVfs::reboot`].
        pub fn set_crash_at(&self, k: Option<u64>) {
            let mut s = self.lock();
            s.crash_at = k;
        }

        /// How many mutating operations (crash points) have occurred.
        pub fn mutations(&self) -> u64 {
            self.lock().ops
        }

        /// Whether an armed crash has fired.
        pub fn crashed(&self) -> bool {
            self.lock().crashed
        }

        /// Cap the disk at `bytes` total live content (`None` removes
        /// the cap). Writes that would exceed it apply a short write
        /// and fail with `ENOSPC`; removing files frees space.
        pub fn set_budget(&self, bytes: Option<u64>) {
            let mut s = self.lock();
            s.budget = bytes;
        }

        /// When set, `fsync`/`fsync_dir` report success without
        /// persisting anything — the lying-device failure mode that
        /// makes torn artifacts reachable past a rename commit.
        pub fn set_drop_fsyncs(&self, drop: bool) {
            let mut s = self.lock();
            s.drop_fsyncs = drop;
        }

        /// Simulate the machine restarting after a crash: materialise
        /// the surviving disk under `style`, then bring the filesystem
        /// back online with every survivor fully durable. Resets the
        /// crash-point counter and disarms any pending crash.
        pub fn reboot(&self, style: CrashStyle) {
            let mut s = self.lock();
            let survivors: Vec<(PathBuf, Vec<u8>)> = match style {
                CrashStyle::Keep => s
                    .ns
                    .iter()
                    .filter_map(|(p, ino)| {
                        s.inodes.get(ino).map(|n| (p.clone(), n.live.clone()))
                    })
                    .collect(),
                CrashStyle::Lose => s
                    .durable_ns
                    .iter()
                    .filter_map(|(p, ino)| {
                        s.inodes
                            .get(ino)
                            .map(|n| (p.clone(), crash_content(s.seed, p, n)))
                    })
                    .collect(),
                CrashStyle::Torn => s
                    .ns
                    .iter()
                    .filter_map(|(p, ino)| {
                        s.inodes
                            .get(ino)
                            .map(|n| (p.clone(), crash_content(s.seed, p, n)))
                    })
                    .collect(),
            };
            s.ns.clear();
            s.durable_ns.clear();
            s.inodes.clear();
            for (path, content) in survivors {
                let ino = s.next_ino;
                s.next_ino += 1;
                s.inodes.insert(
                    ino,
                    Inode {
                        live: content.clone(),
                        synced: Some(content),
                    },
                );
                s.ns.insert(path.clone(), ino);
                s.durable_ns.insert(path, ino);
            }
            s.crashed = false;
            s.crash_at = None;
            s.ops = 0;
        }

        /// The set of paths a `Lose`-style crash would preserve.
        pub fn durable_paths(&self) -> Vec<PathBuf> {
            self.lock().durable_ns.keys().cloned().collect()
        }
    }

    /// Post-crash content of one inode: the fsynced bytes if the fsync
    /// was honest, otherwise a deterministic torn prefix of whatever
    /// was in flight.
    fn crash_content(seed: u64, path: &Path, inode: &Inode) -> Vec<u8> {
        match &inode.synced {
            Some(c) => c.clone(),
            None => {
                let h = mix64(seed, path_hash(path), inode.live.len() as u64);
                let keep = (h % (inode.live.len() as u64 + 1)) as usize;
                inode.live[..keep].to_vec()
            }
        }
    }

    /// splitmix64 over three words — the deterministic torn-prefix
    /// stream (same construction as the registry's per-hit mixer).
    fn mix64(seed: u64, a: u64, b: u64) -> u64 {
        let mut z = seed
            ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ b.wrapping_mul(0xd1b5_4a32_d192_ed03);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn path_hash(path: &Path) -> u64 {
        // FNV-1a over the lossy path string: stable and cheap.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.to_string_lossy().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    impl SimState {
        /// Gate every mutating operation: count it, fail it if it is
        /// the armed crash point, fail everything once crashed.
        fn gate(&mut self) -> io::Result<bool> {
            if self.crashed {
                return Err(offline());
            }
            self.ops += 1;
            if self.crash_at == Some(self.ops) {
                self.crashed = true;
                return Ok(true);
            }
            Ok(false)
        }

        fn used_bytes(&self) -> u64 {
            self.ns
                .values()
                .filter_map(|ino| self.inodes.get(ino))
                .map(|n| n.live.len() as u64)
                .sum()
        }

        /// Drop inodes no longer referenced by either namespace.
        fn gc_inode(&mut self, ino: u64) {
            let referenced = self.ns.values().any(|i| *i == ino)
                || self.durable_ns.values().any(|i| *i == ino);
            if !referenced {
                self.inodes.remove(&ino);
            }
        }
    }

    impl Vfs for SimVfs {
        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            let mut s = self.lock();
            if s.gate()? {
                return Err(io::Error::other("simvfs: simulated crash in create_dir_all"));
            }
            let mut cur = PathBuf::new();
            for part in dir.components() {
                cur.push(part);
                s.dirs.insert(cur.clone());
            }
            Ok(())
        }

        fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            let mut s = self.lock();
            let crashing = s.gate()?;
            // How many bytes actually land: all of them normally, a
            // deterministic prefix when this op is the crash point, a
            // budget-limited prefix when the disk fills.
            let mut landed = bytes.len();
            let mut verdict = Ok(());
            if let Some(budget) = s.budget {
                let other_used = s.used_bytes()
                    - s.ns
                        .get(path)
                        .and_then(|ino| s.inodes.get(ino))
                        .map(|n| n.live.len() as u64)
                        .unwrap_or(0);
                let room = budget.saturating_sub(other_used) as usize;
                if bytes.len() > room {
                    landed = room;
                    verdict = Err(enospc());
                }
            }
            if crashing {
                let h = mix64(s.seed, path_hash(path), s.ops);
                landed = (h % (landed as u64 + 1)) as usize;
                verdict = Err(io::Error::other(format!(
                    "simvfs: simulated crash at op {}",
                    s.ops
                )));
            }
            let content = bytes[..landed].to_vec();
            match s.ns.get(path).copied() {
                Some(ino) => {
                    // In-place create truncates the existing inode:
                    // worst case, the previously fsynced content is
                    // gone and a crash leaves a torn mix — model that
                    // by forgetting the synced copy.
                    if let Some(n) = s.inodes.get_mut(&ino) {
                        n.live = content;
                        n.synced = None;
                    }
                }
                None => {
                    let ino = s.next_ino;
                    s.next_ino += 1;
                    s.inodes.insert(
                        ino,
                        Inode {
                            live: content,
                            synced: None,
                        },
                    );
                    s.ns.insert(path.to_path_buf(), ino);
                }
            }
            verdict
        }

        fn fsync(&self, path: &Path) -> io::Result<()> {
            let mut s = self.lock();
            if s.gate()? {
                return Err(io::Error::other("simvfs: simulated crash in fsync"));
            }
            let ino = *s.ns.get(path).ok_or_else(|| not_found(path))?;
            if s.drop_fsyncs {
                return Ok(()); // the device lies: nothing persisted
            }
            if let Some(n) = s.inodes.get_mut(&ino) {
                n.synced = Some(n.live.clone());
            }
            Ok(())
        }

        fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
            let mut s = self.lock();
            if s.gate()? {
                return Err(io::Error::other("simvfs: simulated crash in fsync_dir"));
            }
            if s.drop_fsyncs {
                return Ok(());
            }
            // Commit this directory's live entries (creations, renames
            // and removals alike) to the durable namespace.
            let stale: Vec<PathBuf> = s
                .durable_ns
                .keys()
                .filter(|p| p.parent() == Some(dir))
                .cloned()
                .collect();
            let fresh: Vec<(PathBuf, u64)> = s
                .ns
                .iter()
                .filter(|(p, _)| p.parent() == Some(dir))
                .map(|(p, ino)| (p.clone(), *ino))
                .collect();
            let mut dropped = Vec::new();
            for p in stale {
                if let Some(ino) = s.durable_ns.remove(&p) {
                    dropped.push(ino);
                }
            }
            for (p, ino) in fresh {
                s.durable_ns.insert(p, ino);
            }
            for ino in dropped {
                s.gc_inode(ino);
            }
            Ok(())
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            let mut s = self.lock();
            if s.gate()? {
                return Err(io::Error::other("simvfs: simulated crash in rename"));
            }
            let ino = s.ns.remove(from).ok_or_else(|| not_found(from))?;
            if let Some(old) = s.ns.insert(to.to_path_buf(), ino) {
                s.gc_inode(old);
            }
            Ok(())
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            let mut s = self.lock();
            if s.gate()? {
                return Err(io::Error::other("simvfs: simulated crash in remove_file"));
            }
            let ino = s.ns.remove(path).ok_or_else(|| not_found(path))?;
            s.gc_inode(ino);
            Ok(())
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            let s = self.lock();
            if s.crashed {
                return Err(offline());
            }
            let ino = s.ns.get(path).ok_or_else(|| not_found(path))?;
            s.inodes
                .get(ino)
                .map(|n| n.live.clone())
                .ok_or_else(|| not_found(path))
        }

        fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            let s = self.lock();
            if s.crashed {
                return Err(offline());
            }
            Ok(s.ns
                .keys()
                .filter(|p| p.parent() == Some(dir))
                .cloned()
                .collect())
        }

        fn exists(&self, path: &Path) -> bool {
            let s = self.lock();
            if s.crashed {
                return false;
            }
            s.ns.contains_key(path) || s.dirs.contains(path)
        }

        fn file_len(&self, path: &Path) -> io::Result<u64> {
            let s = self.lock();
            if s.crashed {
                return Err(offline());
            }
            let ino = s.ns.get(path).ok_or_else(|| not_found(path))?;
            s.inodes
                .get(ino)
                .map(|n| n.live.len() as u64)
                .ok_or_else(|| not_found(path))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_vfs_round_trip_and_durable_write() {
        let dir = std::env::temp_dir().join(format!("pimento-vfs-{}", std::process::id()));
        let vfs = StdVfs;
        vfs.create_dir_all(&dir).unwrap();
        write_durable(&vfs, &dir, "artifact", b"hello").unwrap();
        assert_eq!(vfs.read(&dir.join("artifact")).unwrap(), b"hello");
        assert!(!vfs.exists(&dir.join("artifact.tmp")));
        assert_eq!(vfs.file_len(&dir.join("artifact")).unwrap(), 5);
        assert_eq!(vfs.list(&dir).unwrap(), vec![dir.join("artifact")]);
        vfs.remove_file(&dir.join("artifact")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_names_sequence_and_cap() {
        let dir = std::env::temp_dir().join(format!("pimento-vfs-q-{}", std::process::id()));
        let vfs = StdVfs;
        vfs.create_dir_all(&dir).unwrap();
        let cap = QuarantineCap {
            max_files: 2,
            max_bytes: 1 << 20,
        };
        for i in 0..4u8 {
            let p = dir.join(format!("seg{i}.snap"));
            vfs.write_file(&p, &[i; 8]).unwrap();
            quarantine_file(&vfs, &p, cap).unwrap();
        }
        let kept = quarantine_stats(&vfs, &dir);
        assert_eq!(kept.len(), 2, "count cap holds: {kept:?}");
        // Oldest-first eviction keeps the two newest (seq 3 and 4).
        assert_eq!(kept[0].seq, 3);
        assert_eq!(kept[1].seq, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_byte_cap_evicts_oldest() {
        let dir = std::env::temp_dir().join(format!("pimento-vfs-qb-{}", std::process::id()));
        let vfs = StdVfs;
        vfs.create_dir_all(&dir).unwrap();
        let cap = QuarantineCap {
            max_files: 100,
            max_bytes: 20,
        };
        for i in 0..3u8 {
            let p = dir.join(format!("f{i}"));
            vfs.write_file(&p, &[i; 10]).unwrap();
            quarantine_file(&vfs, &p, cap).unwrap();
        }
        let kept = quarantine_stats(&vfs, &dir);
        let total: u64 = kept.iter().map(|q| q.len).sum();
        assert!(total <= 20, "byte cap holds: {kept:?}");
        assert_eq!(kept.first().map(|q| q.seq), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_is_detected() {
        assert!(is_disk_full(&io::Error::from_raw_os_error(28)));
        assert!(!is_disk_full(&io::Error::other("boom")));
    }

    #[cfg(feature = "fault-injection")]
    mod sim {
        use super::super::*;
        use std::path::Path;

        fn dir() -> &'static Path {
            Path::new("/data")
        }

        #[test]
        fn clean_run_counts_mutations() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            write_durable(&vfs, dir(), "a", b"one").unwrap();
            // mkdir + write + fsync + rename + fsync_dir = 5 points.
            assert_eq!(vfs.mutations(), 5);
        }

        #[test]
        fn lose_crash_before_dir_fsync_rolls_back() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            write_durable(&vfs, dir(), "a", b"old").unwrap();
            let committed = vfs.mutations();
            // Crash on the rename of the second publish: the new
            // content was fsynced but its namespace entry was not.
            vfs.set_crash_at(Some(committed + 3));
            let err = write_durable(&vfs, dir(), "a", b"new").unwrap_err();
            assert!(err.to_string().contains("simulated crash"));
            vfs.reboot(CrashStyle::Lose);
            assert_eq!(vfs.read(&dir().join("a")).unwrap(), b"old");
        }

        #[test]
        fn keep_crash_after_rename_sees_new_content() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            write_durable(&vfs, dir(), "a", b"old").unwrap();
            let committed = vfs.mutations();
            vfs.set_crash_at(Some(committed + 4)); // dir fsync
            let _ = write_durable(&vfs, dir(), "a", b"new");
            vfs.reboot(CrashStyle::Keep);
            assert_eq!(vfs.read(&dir().join("a")).unwrap(), b"new");
        }

        #[test]
        fn torn_write_survives_as_prefix() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            // Crash inside the write itself: op 2 (after mkdir).
            vfs.set_crash_at(Some(2));
            let _ = vfs.write_file(&dir().join("a.tmp"), b"0123456789");
            vfs.reboot(CrashStyle::Torn);
            let got = vfs.read(&dir().join("a.tmp")).unwrap();
            assert!(b"0123456789".starts_with(&got[..]), "prefix: {got:?}");
        }

        #[test]
        fn everything_fails_after_crash_until_reboot() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            vfs.write_file(&dir().join("a"), b"x").unwrap();
            vfs.set_crash_at(Some(vfs.mutations() + 1));
            assert!(vfs.write_file(&dir().join("b"), b"y").is_err());
            assert!(vfs.read(&dir().join("a")).is_err());
            assert!(vfs.fsync(&dir().join("a")).is_err());
            assert!(!vfs.exists(&dir().join("a")));
            vfs.reboot(CrashStyle::Keep);
            assert_eq!(vfs.read(&dir().join("a")).unwrap(), b"x");
        }

        #[test]
        fn enospc_budget_short_write_and_retry() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            vfs.set_budget(Some(10));
            let err = vfs.write_file(&dir().join("big.tmp"), &[7u8; 32]).unwrap_err();
            assert!(is_disk_full(&err), "got {err}");
            // The short write landed; cleaning it up frees the space.
            assert!(vfs.file_len(&dir().join("big.tmp")).unwrap() <= 10);
            vfs.remove_file(&dir().join("big.tmp")).unwrap();
            vfs.write_file(&dir().join("small"), &[1u8; 10]).unwrap();
            assert_eq!(vfs.read(&dir().join("small")).unwrap(), [1u8; 10]);
        }

        #[test]
        fn write_durable_cleans_temp_on_enospc() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            vfs.set_budget(Some(4));
            let err = write_durable(&vfs, dir(), "a", b"too big to fit").unwrap_err();
            assert!(is_disk_full(&err));
            assert!(!vfs.exists(&dir().join("a.tmp")), "temp cleaned up");
            vfs.set_budget(Some(1024));
            write_durable(&vfs, dir(), "a", b"too big to fit").unwrap();
            assert_eq!(vfs.read(&dir().join("a")).unwrap(), b"too big to fit");
        }

        #[test]
        fn dropped_fsync_can_tear_a_renamed_file() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            vfs.set_drop_fsyncs(true);
            write_durable(&vfs, dir(), "a", b"supposedly durable").unwrap();
            vfs.reboot(CrashStyle::Torn);
            // The rename survived (Torn keeps the namespace) but the
            // content was never really fsynced: a torn prefix remains.
            let got = vfs.read(&dir().join("a")).unwrap();
            assert!(b"supposedly durable".starts_with(&got[..]));
        }

        #[test]
        fn in_place_overwrite_forfeits_durability() {
            let vfs = SimVfs::new(7);
            vfs.create_dir_all(dir()).unwrap();
            vfs.write_file(&dir().join("a"), b"first").unwrap();
            vfs.fsync(&dir().join("a")).unwrap();
            vfs.fsync_dir(dir()).unwrap();
            // Overwriting in place truncates the inode: the earlier
            // fsync no longer protects the old content.
            vfs.write_file(&dir().join("a"), b"second-version").unwrap();
            vfs.reboot(CrashStyle::Lose);
            let got = vfs.read(&dir().join("a")).unwrap();
            assert!(b"second-version".starts_with(&got[..]), "torn: {got:?}");
        }
    }
}
