//! `PIMCOL4` columnar snapshots: flat, offset-indexed, CRC-checked.
//!
//! The legacy v3 snapshot ([`crate::persist`]) stores only the parsed
//! document arenas; every open re-builds the tag, value, and inverted
//! indexes on the heap. This module writes the *indexes themselves* as
//! flat columnar sections, so opening a snapshot is O(validation) instead
//! of O(rebuild): the file loads into one immutable [`Bytes`] buffer and
//! the packed index backings ([`TagIndex`], [`ValueIndex`],
//! [`InvertedIndex`]) are zero-copy windows over it — no per-posting or
//! per-element heap allocation happens at open. ("Zero-copy" throughout
//! means *no rebuild*: the crate is `forbid(unsafe_code)`, so packed rows
//! are decoded on access with `from_le_bytes`, never pointer-cast.)
//!
//! ## On-disk layout (all integers little-endian)
//!
//! ```text
//! header   24 bytes:
//!   magic          "PIMCOL4\0"                      8 bytes
//!   u32            format version (4)
//!   u32            section count
//!   u32            CRC32 of the section directory
//!   u32            reserved (0)
//! directory  32 bytes per section:
//!   name           8 bytes, NUL-padded ASCII
//!   u64            section offset (from file start, 8-byte aligned)
//!   u64            section length in bytes
//!   u32            CRC32 of the section bytes
//!   u32            reserved (0)
//! sections   each 8-byte aligned, zero-padded between:
//!   meta     u32 tokenizer kind (0 plain / 1 stemming), u32 doc count,
//!            u32 symbol count, u32 reserved
//!   symtab   dense symbol column (see `SymbolTable::column_bytes`)
//!   docs     node arenas, one per document in id order (the v3 per-node
//!            record encoding; decoded to heap at open — documents are
//!            the one part queries mutate/traverse as linked arenas)
//!   tags     u32 sym domain, u32 total rows,
//!            per-symbol directory (u32 start row, u32 row count) × domain,
//!            18-byte element rows (u32 doc, u32 node, u32 start, u32 end,
//!            u16 level), (doc, start)-sorted per symbol
//!   vals     same shape as tags with 26-byte rows: u64 f64-bits value
//!            followed by the 18-byte element row, value-sorted per symbol
//!   inv      u32 doc count, u32 token count, u32 name-heap length,
//!            u32 runs-blob length; u32 per-doc token counts;
//!            24-byte token rows sorted by name (u32 name offset, u32 name
//!            length, u32 doc freq, u32 run count, u32 runs offset,
//!            u32 total postings); UTF-8 name heap; runs blob — per token:
//!            12-byte doc-run entries (u32 doc, u32 payload offset, u32
//!            posting count), then delta-encoded varint payload, each
//!            posting a (pos, label, text-node) triple, first absolute,
//!            rest deltas (see `crate::varint`)
//! ```
//!
//! Integrity is per-section: the opener checks the directory CRC, then
//! each section's CRC, then structural bounds (directory spans, row
//! counts, name/run offsets) — a flipped bit or truncation surfaces as
//! [`PersistError::SnapshotCorrupt`] *naming the failing section* before
//! any query can observe bad data. Older magics (v1–v3) are rejected with
//! the typed [`PersistError::SnapshotVersion`].

use crate::inverted::{InvertedIndex, Posting, RUN_ROW, TOKEN_ROW};
use crate::persist::{crc32, put_document, read_document, PersistError};
use crate::store::{Collection, DocId};
use crate::tags::{put_elem_row, u32_at, u64_at, TagIndex, ELEM_ROW};
use crate::tokenize::Tokenizer;
use crate::values::{put_val_row, ValueIndex, VAL_ROW};
use crate::varint::put_varint;
use bytes::Bytes;
use pimento_xml::{SymbolId, SymbolTable};

/// v4 magic: the columnar format this module reads and writes.
pub(crate) const COLUMNAR_MAGIC: &[u8; 8] = b"PIMCOL4\0";
/// Columnar snapshot format version (the `u32` following the magic).
pub const COLUMNAR_VERSION: u32 = 4;

/// Header size: magic + version + section count + directory CRC + reserved.
const HEADER_LEN: usize = 24;
/// Directory row size: name + offset + length + CRC + reserved.
const DIR_ROW: usize = 32;

/// Section names in file order. The opener looks sections up by name, so
/// order is a writer convention, not a reader requirement.
const SECTIONS: [&str; 6] = ["meta", "symtab", "docs", "tags", "vals", "inv"];

/// True when `data` starts with the v4 columnar magic — the cheap sniff
/// the engine uses to pick an open path.
pub fn is_columnar(data: &[u8]) -> bool {
    data.get(..COLUMNAR_MAGIC.len()) == Some(COLUMNAR_MAGIC.as_slice())
}

/// Everything a columnar snapshot opens into: the decoded document store
/// plus the three packed (zero-copy) indexes.
#[derive(Debug)]
pub struct OpenedIndex {
    /// Decoded document arenas + symbol table.
    pub collection: Collection,
    /// Packed inverted index (varint posting runs, decoded per lookup).
    pub inverted: InvertedIndex,
    /// Packed tag index (flat element rows).
    pub tags: TagIndex,
    /// Packed value index (flat value rows).
    pub values: ValueIndex,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn align8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn meta_section(tokenizer: Tokenizer, doc_count: u32, sym_count: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&u32::from(tokenizer.stemming).to_le_bytes());
    out.extend_from_slice(&doc_count.to_le_bytes());
    out.extend_from_slice(&sym_count.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

fn docs_section(coll: &Collection) -> Vec<u8> {
    let mut out = Vec::new();
    for (_, doc) in coll.iter() {
        put_document(&mut out, doc);
    }
    out
}

fn tags_section(tags: &TagIndex, sym_domain: u32) -> Vec<u8> {
    let mut dir = Vec::with_capacity(sym_domain as usize * 8);
    let mut rows = Vec::new();
    let mut start = 0u32;
    for s in 0..sym_domain {
        let view = tags.elements(SymbolId(s));
        dir.extend_from_slice(&start.to_le_bytes());
        dir.extend_from_slice(&(view.len() as u32).to_le_bytes());
        for e in view.iter() {
            put_elem_row(&mut rows, &e);
        }
        start += view.len() as u32;
    }
    let mut out = Vec::with_capacity(8 + dir.len() + rows.len());
    out.extend_from_slice(&sym_domain.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&dir);
    out.extend_from_slice(&rows);
    out
}

fn vals_section(values: &ValueIndex, sym_domain: u32) -> Vec<u8> {
    let mut dir = Vec::with_capacity(sym_domain as usize * 8);
    let mut rows = Vec::new();
    let mut start = 0u32;
    for s in 0..sym_domain {
        let entries = values.dump_tag(SymbolId(s));
        dir.extend_from_slice(&start.to_le_bytes());
        dir.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (v, e) in &entries {
            put_val_row(&mut rows, *v, e);
        }
        start += entries.len() as u32;
    }
    let mut out = Vec::with_capacity(8 + dir.len() + rows.len());
    out.extend_from_slice(&sym_domain.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&dir);
    out.extend_from_slice(&rows);
    out
}

/// Delta-encode one `(token, doc)` posting run: first triple absolute,
/// the rest as differences (all nondecreasing in document order).
fn put_run_payload(out: &mut Vec<u8>, run: &[Posting]) {
    let (mut pp, mut pl, mut pt) = (0u32, 0u32, 0u32);
    for (i, p) in run.iter().enumerate() {
        if i == 0 {
            put_varint(out, p.pos);
            put_varint(out, p.label);
            put_varint(out, p.text_node.0);
        } else {
            debug_assert!(p.pos >= pp && p.label >= pl && p.text_node.0 >= pt);
            put_varint(out, p.pos - pp);
            put_varint(out, p.label - pl);
            put_varint(out, p.text_node.0 - pt);
        }
        (pp, pl, pt) = (p.pos, p.label, p.text_node.0);
    }
}

fn inv_section(inverted: &InvertedIndex, doc_count: u32) -> Vec<u8> {
    let names = inverted.dump_token_names();
    let mut doc_tokens = Vec::with_capacity(doc_count as usize * 4);
    for d in 0..doc_count {
        doc_tokens.extend_from_slice(&inverted.doc_len(DocId(d)).to_le_bytes());
    }
    let mut token_rows = Vec::with_capacity(names.len() * TOKEN_ROW);
    let mut name_heap = Vec::new();
    let mut runs = Vec::new();
    for name in &names {
        let postings = inverted.postings(name);
        // Split into per-document runs (postings are (doc, pos)-sorted).
        let mut run_table = Vec::new();
        let mut payload = Vec::new();
        let mut run_count = 0u32;
        let mut i = 0;
        while i < postings.len() {
            let doc = postings[i].doc;
            let mut j = i;
            while j < postings.len() && postings[j].doc == doc {
                j += 1;
            }
            run_table.extend_from_slice(&doc.0.to_le_bytes());
            run_table.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            run_table.extend_from_slice(&((j - i) as u32).to_le_bytes());
            put_run_payload(&mut payload, &postings[i..j]);
            run_count += 1;
            i = j;
        }
        token_rows.extend_from_slice(&(name_heap.len() as u32).to_le_bytes());
        token_rows.extend_from_slice(&(name.len() as u32).to_le_bytes());
        token_rows.extend_from_slice(&inverted.doc_freq(name).to_le_bytes());
        token_rows.extend_from_slice(&run_count.to_le_bytes());
        token_rows.extend_from_slice(&(runs.len() as u32).to_le_bytes());
        token_rows.extend_from_slice(&(postings.len() as u32).to_le_bytes());
        name_heap.extend_from_slice(name.as_bytes());
        runs.extend_from_slice(&run_table);
        runs.extend_from_slice(&payload);
    }
    let mut out =
        Vec::with_capacity(16 + doc_tokens.len() + token_rows.len() + name_heap.len() + runs.len());
    out.extend_from_slice(&doc_count.to_le_bytes());
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    out.extend_from_slice(&(name_heap.len() as u32).to_le_bytes());
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    out.extend_from_slice(&doc_tokens);
    out.extend_from_slice(&token_rows);
    out.extend_from_slice(&name_heap);
    out.extend_from_slice(&runs);
    out
}

/// Serialize the collection *and its indexes* into a v4 columnar snapshot.
///
/// The indexes must have been built over exactly `coll` (the engine owns
/// that invariant); the symbol domain of the `tags`/`vals` directories is
/// the collection's symbol count.
pub fn save_index(
    coll: &Collection,
    inverted: &InvertedIndex,
    tags: &TagIndex,
    values: &ValueIndex,
) -> Bytes {
    let sym_count = coll.symbols().len() as u32;
    let doc_count = coll.len() as u32;
    let sections: [(&str, Vec<u8>); 6] = [
        (
            "meta",
            meta_section(inverted.tokenizer(), doc_count, sym_count),
        ),
        ("symtab", coll.symbols().column_bytes()),
        ("docs", docs_section(coll)),
        ("tags", tags_section(tags, sym_count)),
        ("vals", vals_section(values, sym_count)),
        ("inv", inv_section(inverted, doc_count)),
    ];
    debug_assert!(sections.iter().map(|(n, _)| *n).eq(SECTIONS));

    // Lay out the payload after header + directory, 8-byte aligning each
    // section so every offset in the directory is directly sliceable.
    let mut payload = Vec::new();
    let base = HEADER_LEN + DIR_ROW * sections.len();
    debug_assert_eq!(base % 8, 0);
    let mut directory = Vec::with_capacity(DIR_ROW * sections.len());
    for (name, bytes) in &sections {
        align8(&mut payload);
        let offset = (base + payload.len()) as u64;
        let mut name8 = [0u8; 8];
        name8[..name.len()].copy_from_slice(name.as_bytes());
        directory.extend_from_slice(&name8);
        directory.extend_from_slice(&offset.to_le_bytes());
        directory.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        directory.extend_from_slice(&crc32(bytes).to_le_bytes());
        directory.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(bytes);
    }

    let mut out = Vec::with_capacity(base + payload.len());
    out.extend_from_slice(COLUMNAR_MAGIC);
    out.extend_from_slice(&COLUMNAR_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&directory).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&directory);
    out.extend_from_slice(&payload);
    Bytes::from(out)
}

// ---------------------------------------------------------------------------
// Opener
// ---------------------------------------------------------------------------

/// One parsed directory entry.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    name: &'static str,
    offset: usize,
    len: usize,
    crc: u32,
}

/// Map a NUL-padded directory name to its static section name (so
/// corruption errors can carry `&'static str`).
fn section_name(raw: &[u8]) -> Option<&'static str> {
    let trimmed: &[u8] = match raw.iter().position(|&b| b == 0) {
        Some(n) => raw.get(..n)?,
        None => raw,
    };
    SECTIONS.into_iter().find(|s| s.as_bytes() == trimmed)
}

/// Checked slice of `data[off..off + len]`: directory-supplied offsets are
/// untrusted, so overflow and out-of-bounds both land on `Truncated`
/// instead of wrapping or panicking.
fn slice_at(data: &[u8], off: usize, len: usize) -> Result<&[u8], PersistError> {
    off.checked_add(len)
        .and_then(|end| data.get(off..end))
        .ok_or(PersistError::Truncated)
}

/// The byte window a directory entry describes.
fn section_bytes<'a>(data: &'a [u8], e: &DirEntry) -> Result<&'a [u8], PersistError> {
    slice_at(data, e.offset, e.len)
}

/// Triage the header: magic family and version. Shared by the opener and
/// [`inspect`].
fn check_header(data: &[u8]) -> Result<u32, PersistError> {
    if data.len() < HEADER_LEN {
        return Err(PersistError::Truncated);
    }
    let magic = data.get(..8).ok_or(PersistError::Truncated)?;
    for (old, found) in [(b"PIMCOL1\0", 1u32), (b"PIMCOL2\0", 2), (b"PIMCOL3\0", 3)] {
        if magic == old.as_slice() {
            return Err(PersistError::SnapshotVersion {
                found,
                expected: COLUMNAR_VERSION,
            });
        }
    }
    if magic != COLUMNAR_MAGIC.as_slice() {
        return Err(PersistError::BadMagic);
    }
    let version = u32_at(data, 8);
    if version != COLUMNAR_VERSION {
        return Err(PersistError::SnapshotVersion {
            found: version,
            expected: COLUMNAR_VERSION,
        });
    }
    Ok(u32_at(data, 12))
}

/// Parse and CRC-verify the section directory.
fn read_directory(data: &[u8]) -> Result<Vec<DirEntry>, PersistError> {
    let section_count = check_header(data)? as usize;
    let dir_len = DIR_ROW
        .checked_mul(section_count)
        .ok_or(PersistError::Truncated)?;
    let dir_bytes = slice_at(data, HEADER_LEN, dir_len)?;
    if crc32(dir_bytes) != u32_at(data, 16) {
        return Err(PersistError::SnapshotCorrupt {
            section: "directory",
        });
    }
    let mut entries = Vec::with_capacity(section_count);
    for row in dir_bytes.chunks_exact(DIR_ROW) {
        let Some(name) = row.get(..8).and_then(section_name) else {
            // Unknown sections from a future minor revision are skipped;
            // their bytes are simply never referenced.
            continue;
        };
        let offset = u64_at(row, 8) as usize;
        let len = u64_at(row, 16) as usize;
        if offset.checked_add(len).is_none_or(|end| end > data.len()) {
            return Err(PersistError::Truncated);
        }
        entries.push(DirEntry {
            name,
            offset,
            len,
            crc: u32_at(row, 24),
        });
    }
    Ok(entries)
}

fn find<'a>(entries: &'a [DirEntry], name: &str) -> Result<&'a DirEntry, PersistError> {
    entries
        .iter()
        .find(|e| e.name == name)
        .ok_or(PersistError::BadArena("missing snapshot section"))
}

/// Open a v4 columnar snapshot over one shared buffer.
///
/// Validation is O(file bytes) for the CRC sweeps plus O(symbols + tokens)
/// structural checks; the only heap decoding is the `docs` arenas. The
/// returned indexes are packed views over `data` — no postings or element
/// rows are materialized here.
pub fn open_index(data: Bytes) -> Result<OpenedIndex, PersistError> {
    let entries = read_directory(&data)?;
    #[cfg(feature = "fault-injection")]
    if pimento_faults::should_fire("index.persist.load") {
        return Err(PersistError::SnapshotCorrupt {
            section: "directory",
        });
    }
    // Per-section integrity before any decoding.
    for e in &entries {
        if crc32(section_bytes(&data, e)?) != e.crc {
            return Err(PersistError::SnapshotCorrupt { section: e.name });
        }
    }

    // meta
    let meta = find(&entries, "meta")?;
    if meta.len < 16 {
        return Err(PersistError::SnapshotCorrupt { section: "meta" });
    }
    let m = section_bytes(&data, meta)?;
    let tokenizer = match u32_at(m, 0) {
        0 => Tokenizer::plain(),
        1 => Tokenizer::stemming(),
        _ => return Err(PersistError::BadArena("unknown tokenizer kind")),
    };
    let doc_count = u32_at(m, 4);
    let sym_count = u32_at(m, 8);

    // symtab
    let symtab = find(&entries, "symtab")?;
    let symbols = SymbolTable::from_column_bytes(section_bytes(&data, symtab)?)
        .map_err(PersistError::BadArena)?;
    if symbols.len() as u32 != sym_count {
        return Err(PersistError::BadArena("symbol count mismatch"));
    }

    // docs — the one heap-decoded section (arena traversal needs it).
    let docs = find(&entries, "docs")?;
    let mut coll = Collection::new();
    *coll.symbols_mut() = symbols;
    let mut buf = section_bytes(&data, docs)?;
    for _ in 0..doc_count {
        let doc = read_document(&mut buf, sym_count)?;
        coll.add_document(doc);
    }
    if !buf.is_empty() {
        return Err(PersistError::BadArena("trailing bytes after documents"));
    }

    // tags
    let tags = find(&entries, "tags")?;
    let (tag_dir, tag_rows) = split_rowed(&data, tags, sym_count, ELEM_ROW, "tags")?;

    // vals
    let vals = find(&entries, "vals")?;
    let (val_dir, val_rows) = split_rowed(&data, vals, sym_count, VAL_ROW, "vals")?;

    // inv
    let inv = find(&entries, "inv")?;
    let (doc_tokens, token_rows, names, runs) = split_inv(&data, inv, doc_count)?;

    Ok(OpenedIndex {
        collection: coll,
        inverted: InvertedIndex::from_packed(tokenizer, doc_tokens, token_rows, names, runs),
        tags: TagIndex::from_packed(tag_dir, tag_rows),
        values: ValueIndex::from_packed(val_dir, val_rows),
    })
}

/// Validate and slice a `tags`/`vals`-shaped section into its directory
/// and row windows.
fn split_rowed(
    data: &Bytes,
    e: &DirEntry,
    sym_count: u32,
    row: usize,
    section: &'static str,
) -> Result<(Bytes, Bytes), PersistError> {
    let corrupt = || PersistError::SnapshotCorrupt { section };
    let b = section_bytes(data, e).map_err(|_| corrupt())?;
    if b.len() < 8 {
        return Err(corrupt());
    }
    let domain = u32_at(b, 0) as usize;
    let total = u32_at(b, 4) as usize;
    if domain != sym_count as usize {
        return Err(corrupt());
    }
    let dir_len = domain.checked_mul(8).ok_or_else(corrupt)?;
    let rows_len = total.checked_mul(row).ok_or_else(corrupt)?;
    let body_len = dir_len
        .checked_add(rows_len)
        .and_then(|v| v.checked_add(8))
        .ok_or_else(corrupt)?;
    if body_len != b.len() {
        return Err(corrupt());
    }
    // Every directory span must stay inside the row region, and spans must
    // tile it in order (start rows nondecreasing), so accessors can slice
    // without panicking.
    let dir_bytes = slice_at(b, 8, dir_len).map_err(|_| corrupt())?;
    let mut prev_end = 0usize;
    for span in dir_bytes.chunks_exact(8) {
        let start = u32_at(span, 0) as usize;
        let count = u32_at(span, 4) as usize;
        let end = start
            .checked_add(count)
            .filter(|&end| end <= total)
            .ok_or_else(corrupt)?;
        if start != prev_end {
            return Err(corrupt());
        }
        prev_end = end;
    }
    if prev_end != total {
        return Err(corrupt());
    }
    let dir_start = e.offset.checked_add(8).ok_or_else(corrupt)?;
    let rows_start = dir_start.checked_add(dir_len).ok_or_else(corrupt)?;
    let end = e.offset.checked_add(e.len).ok_or_else(corrupt)?;
    Ok((
        data.slice(dir_start..rows_start),
        data.slice(rows_start..end),
    ))
}

/// Validate and slice the `inv` section into its four windows.
fn split_inv(
    data: &Bytes,
    e: &DirEntry,
    expect_docs: u32,
) -> Result<(Bytes, Bytes, Bytes, Bytes), PersistError> {
    let corrupt = || PersistError::SnapshotCorrupt { section: "inv" };
    let b = section_bytes(data, e).map_err(|_| corrupt())?;
    if b.len() < 16 {
        return Err(corrupt());
    }
    let doc_count = u32_at(b, 0) as usize;
    let token_count = u32_at(b, 4) as usize;
    let names_len = u32_at(b, 8) as usize;
    let runs_len = u32_at(b, 12) as usize;
    if doc_count != expect_docs as usize {
        return Err(corrupt());
    }
    let dt_len = doc_count.checked_mul(4).ok_or_else(corrupt)?;
    let tr_len = token_count.checked_mul(TOKEN_ROW).ok_or_else(corrupt)?;
    let total = [16, dt_len, tr_len, names_len, runs_len]
        .into_iter()
        .try_fold(0usize, |a, x| a.checked_add(x))
        .ok_or_else(corrupt)?;
    if total != b.len() {
        return Err(corrupt());
    }
    let tr_base = dt_len.checked_add(16).ok_or_else(corrupt)?;
    let names_base = tr_base.checked_add(tr_len).ok_or_else(corrupt)?;
    let runs_base = names_base.checked_add(names_len).ok_or_else(corrupt)?;
    // Structural bounds per token row: the name must live inside the name
    // heap, the run table inside the runs blob, and names must be strictly
    // sorted (the lookup binary-searches them).
    let token_rows = b.get(tr_base..names_base).ok_or_else(corrupt)?;
    let names_heap = b.get(names_base..runs_base).ok_or_else(corrupt)?;
    let mut prev_name: Option<&[u8]> = None;
    for trow in token_rows.chunks_exact(TOKEN_ROW) {
        let name_off = u32_at(trow, 0) as usize;
        let name_len = u32_at(trow, 4) as usize;
        let run_count = u32_at(trow, 12) as usize;
        let runs_off = u32_at(trow, 16) as usize;
        let name_end = name_off
            .checked_add(name_len)
            .filter(|&end| end <= names_len)
            .ok_or_else(corrupt)?;
        let table_len = run_count.checked_mul(RUN_ROW).ok_or_else(corrupt)?;
        if runs_off
            .checked_add(table_len)
            .is_none_or(|end| end > runs_len)
        {
            return Err(corrupt());
        }
        let name = names_heap.get(name_off..name_end).ok_or_else(corrupt)?;
        if prev_name.is_some_and(|p| name <= p) {
            return Err(corrupt());
        }
        prev_name = Some(name);
    }
    let window = |rel_start: usize, rel_end: usize| -> Result<Bytes, PersistError> {
        let s = e.offset.checked_add(rel_start).ok_or_else(corrupt)?;
        let t = e.offset.checked_add(rel_end).ok_or_else(corrupt)?;
        Ok(data.slice(s..t))
    };
    Ok((
        window(16, tr_base)?,
        window(tr_base, names_base)?,
        window(names_base, runs_base)?,
        window(runs_base, e.len)?,
    ))
}

// ---------------------------------------------------------------------------
// Inspection (the `pimento snapshot inspect` CLI)
// ---------------------------------------------------------------------------

/// One section as reported by [`inspect`].
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Section name (`"body"` for a v3 snapshot's single region).
    pub name: String,
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Section length in bytes.
    pub len: u64,
    /// Stored CRC32.
    pub crc: u32,
    /// Whether the recomputed CRC matches.
    pub crc_ok: bool,
}

/// What [`inspect`] reports about a snapshot file.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Declared format version (3 or 4).
    pub version: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Whether the v4 section directory passed its CRC (always `true` for
    /// v3, which has no directory).
    pub directory_ok: bool,
    /// Per-section breakdown.
    pub sections: Vec<SectionReport>,
}

/// Describe a snapshot without opening it: magic/version triage, then the
/// section directory with per-section CRC verdicts. Handles both v4
/// (section directory) and v3 (single `body` region + footer CRC); v1/v2
/// return the typed version error. CRC mismatches are *reported*, not
/// errors — this is the diagnostic path for damaged files.
pub fn inspect(data: &[u8]) -> Result<SnapshotReport, PersistError> {
    if data.get(..8) == Some(b"PIMCOL3\0".as_slice()) {
        // v3: magic + version word, body, u32 CRC footer.
        if data.len() < 16 {
            return Err(PersistError::Truncated);
        }
        let body_len = data.len().saturating_sub(4);
        let body = data.get(..body_len).ok_or(PersistError::Truncated)?;
        let stored = u32_at(data, body_len);
        return Ok(SnapshotReport {
            version: 3,
            file_len: data.len() as u64,
            directory_ok: true,
            sections: vec![SectionReport {
                name: "body".to_string(),
                offset: 0,
                len: body.len() as u64,
                crc: stored,
                crc_ok: crc32(body) == stored,
            }],
        });
    }
    let section_count = check_header(data)? as usize;
    let dir_len = DIR_ROW
        .checked_mul(section_count)
        .ok_or(PersistError::Truncated)?;
    let dir_bytes = slice_at(data, HEADER_LEN, dir_len)?;
    let directory_ok = crc32(dir_bytes) == u32_at(data, 16);
    let mut sections = Vec::with_capacity(section_count);
    for row in dir_bytes.chunks_exact(DIR_ROW) {
        let raw_name = row.get(..8).unwrap_or(&[]);
        let nul = raw_name
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(raw_name.len());
        let name = String::from_utf8_lossy(raw_name.get(..nul).unwrap_or(raw_name)).into_owned();
        let offset = u64_at(row, 8);
        let len = u64_at(row, 16);
        let crc = u32_at(row, 24);
        // Out-of-bounds or overflowing spans are *reported* (crc_ok false),
        // not errors — this is the diagnostic path for damaged files.
        let window = offset
            .checked_add(len)
            .and_then(|end| usize::try_from(end).ok())
            .and_then(|end| usize::try_from(offset).ok().map(|start| (start, end)))
            .and_then(|(start, end)| data.get(start..end));
        let crc_ok = window.is_some_and(|w| crc32(w) == crc);
        sections.push(SectionReport {
            name,
            offset,
            len,
            crc,
            crc_ok,
        });
    }
    Ok(SnapshotReport {
        version: COLUMNAR_VERSION,
        file_len: data.len() as u64,
        directory_ok,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::RangeOp;

    fn sample() -> (Collection, InvertedIndex, TagIndex, ValueIndex) {
        let mut c = Collection::new();
        c.add_xml(
            r#"<dealer loc="cambridge"><car color="red"><price>500</price><note>good and cheap</note></car><car><price>2500</price><note>good condition</note></car></dealer>"#,
        )
        .unwrap();
        c.add_xml("<dealer><car><!--traded--><price>900</price><note>fair</note></car></dealer>")
            .unwrap();
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        let vals = ValueIndex::build(&c);
        (c, inv, tags, vals)
    }

    fn snapshot() -> (Collection, InvertedIndex, TagIndex, ValueIndex, Bytes) {
        let (c, inv, tags, vals) = sample();
        let snap = save_index(&c, &inv, &tags, &vals);
        (c, inv, tags, vals, snap)
    }

    #[test]
    fn roundtrip_is_query_identical() {
        let (c, inv, tags, vals, snap) = snapshot();
        let opened = open_index(snap).unwrap();
        assert!(opened.inverted.is_packed());
        assert!(opened.tags.is_packed());
        assert!(opened.values.is_packed());

        // Collection: same docs, same symbols/ids.
        assert_eq!(opened.collection.len(), c.len());
        for (i, name) in c.symbols().iter().enumerate() {
            assert_eq!(opened.collection.symbols().name(SymbolId(i as u32)), name);
        }

        // Inverted: identical postings, doc stats, vocabulary.
        assert_eq!(opened.inverted.vocabulary_size(), inv.vocabulary_size());
        assert_eq!(opened.inverted.num_docs(), inv.num_docs());
        for token in inv.dump_token_names() {
            assert_eq!(
                opened.inverted.postings(&token),
                inv.postings(&token),
                "{token}"
            );
            assert_eq!(opened.inverted.doc_freq(&token), inv.doc_freq(&token));
            for d in 0..inv.num_docs() {
                assert_eq!(
                    opened.inverted.doc_postings(&token, DocId(d)),
                    inv.doc_postings(&token, DocId(d))
                );
            }
        }
        assert_eq!(opened.inverted.doc_postings("good", DocId(9)).len(), 0);
        assert!(opened.inverted.postings("absent").is_empty());
        for d in 0..inv.num_docs() {
            assert_eq!(opened.inverted.doc_len(DocId(d)), inv.doc_len(DocId(d)));
        }

        // Tags: identical element views over the whole symbol domain.
        for s in 0..c.symbols().len() as u32 {
            let sym = SymbolId(s);
            assert_eq!(opened.tags.elements(sym), tags.elements(sym));
            assert_eq!(opened.tags.count(sym), tags.count(sym));
            for d in 0..c.len() as u32 {
                assert_eq!(
                    opened.tags.doc_elements(sym, DocId(d)),
                    tags.doc_elements(sym, DocId(d))
                );
            }
        }
        assert_eq!(opened.tags.num_tags(), tags.num_tags());

        // Values: identical range scans.
        let price = c.tag("price").unwrap();
        for op in [
            RangeOp::Lt,
            RangeOp::Le,
            RangeOp::Gt,
            RangeOp::Ge,
            RangeOp::Eq,
        ] {
            assert_eq!(
                opened.values.range(price, op, 900.0),
                vals.range(price, op, 900.0)
            );
        }
        assert_eq!(opened.values.count(price), vals.count(price));
    }

    #[test]
    fn empty_collection_roundtrips() {
        let c = Collection::new();
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        let vals = ValueIndex::build(&c);
        let opened = open_index(save_index(&c, &inv, &tags, &vals)).unwrap();
        assert!(opened.collection.is_empty());
        assert_eq!(opened.inverted.num_docs(), 0);
        assert!(opened.values.is_empty());
    }

    #[test]
    fn stemming_tokenizer_survives_roundtrip() {
        let mut c = Collection::new();
        c.add_xml("<a>selling cars</a>").unwrap();
        let inv = InvertedIndex::build(&c, Tokenizer::stemming());
        let tags = TagIndex::build(&c);
        let vals = ValueIndex::build(&c);
        let opened = open_index(save_index(&c, &inv, &tags, &vals)).unwrap();
        assert!(opened.inverted.tokenizer().stemming);
        assert_eq!(opened.inverted.postings("car").len(), 1);
        assert_eq!(opened.inverted.analyze("Cars"), ["car"]);
    }

    #[test]
    fn thawed_incremental_add_matches_full_rebuild() {
        let (mut c, ..) = sample();
        let snap = {
            let inv = InvertedIndex::build(&c, Tokenizer::plain());
            let tags = TagIndex::build(&c);
            let vals = ValueIndex::build(&c);
            save_index(&c, &inv, &tags, &vals)
        };
        let mut opened = open_index(snap).unwrap();
        // Grow the collection after opening packed: every index thaws.
        let d = c
            .add_xml("<dealer><car><price>100</price><note>good</note></car></dealer>")
            .unwrap();
        let doc = c.doc(d).clone();
        opened.collection.add_document(doc.clone());
        opened.inverted.index_document(d, &doc);
        opened.tags.index_document(d, &doc);
        opened.values.index_document(d, &doc);
        assert!(!opened.inverted.is_packed());
        assert!(!opened.tags.is_packed());
        assert!(!opened.values.is_packed());
        let full_inv = InvertedIndex::build(&c, Tokenizer::plain());
        let full_tags = TagIndex::build(&c);
        let full_vals = ValueIndex::build(&c);
        assert_eq!(opened.inverted.postings("good"), full_inv.postings("good"));
        assert_eq!(opened.inverted.doc_freq("good"), full_inv.doc_freq("good"));
        let car = c.tag("car").unwrap();
        assert_eq!(opened.tags.elements(car), full_tags.elements(car));
        let price = c.tag("price").unwrap();
        assert_eq!(
            opened.values.range(price, RangeOp::Le, 1e9),
            full_vals.range(price, RangeOp::Le, 1e9)
        );
    }

    #[test]
    fn corruption_matrix_names_the_failing_section() {
        let (.., snap) = snapshot();
        let report = inspect(&snap).unwrap();
        // Flip one bit inside every section in turn; the open must fail
        // with SnapshotCorrupt naming exactly that section.
        for s in &report.sections {
            let mut bytes = snap.to_vec();
            bytes[s.offset as usize + (s.len as usize) / 2] ^= 0x40;
            match open_index(Bytes::from(bytes)) {
                Err(PersistError::SnapshotCorrupt { section }) => {
                    assert_eq!(section, s.name, "flip in {} misattributed", s.name)
                }
                other => panic!("flip in {} not detected: {other:?}", s.name),
            }
        }
        // Directory corruption names the directory.
        let mut bytes = snap.to_vec();
        bytes[HEADER_LEN + 9] ^= 0x01;
        assert!(matches!(
            open_index(Bytes::from(bytes)),
            Err(PersistError::SnapshotCorrupt {
                section: "directory"
            })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let (.., snap) = snapshot();
        for cut in [
            0,
            4,
            12,
            HEADER_LEN - 1,
            HEADER_LEN + 3,
            snap.len() / 2,
            snap.len() - 1,
        ] {
            let bytes = Bytes::copy_from_slice(&snap[..cut]);
            assert!(open_index(bytes).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn version_triage() {
        let (.., snap) = snapshot();
        // Older magics are typed version errors, not corruption.
        for (magic, found) in [(b"PIMCOL1\0", 1u32), (b"PIMCOL2\0", 2), (b"PIMCOL3\0", 3)] {
            let mut bytes = snap.to_vec();
            bytes[..8].copy_from_slice(magic);
            assert!(matches!(
                open_index(Bytes::from(bytes)),
                Err(PersistError::SnapshotVersion { found: f, expected: COLUMNAR_VERSION }) if f == found
            ));
        }
        // Unknown magic.
        let mut bytes = snap.to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            open_index(Bytes::from(bytes)),
            Err(PersistError::BadMagic)
        ));
        // Future version word.
        let mut bytes = snap.to_vec();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            open_index(Bytes::from(bytes)),
            Err(PersistError::SnapshotVersion {
                found: 9,
                expected: COLUMNAR_VERSION
            })
        ));
    }

    #[test]
    fn legacy_v3_loader_redirects_v4() {
        let (.., snap) = snapshot();
        assert!(matches!(
            crate::persist::load_collection(&snap),
            Err(PersistError::SnapshotVersion {
                found: COLUMNAR_VERSION,
                expected: 3
            })
        ));
        assert!(is_columnar(&snap));
        assert!(!is_columnar(b"PIMCOL3\0rest"));
    }

    #[test]
    fn inspect_reports_sections() {
        let (c, inv, ..) = sample();
        let (.., snap) = snapshot();
        let report = inspect(&snap).unwrap();
        assert_eq!(report.version, COLUMNAR_VERSION);
        assert_eq!(report.file_len, snap.len() as u64);
        assert!(report.directory_ok);
        let names: Vec<&str> = report.sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, SECTIONS);
        assert!(report.sections.iter().all(|s| s.crc_ok));
        // Offsets are 8-byte aligned and nonoverlapping in order.
        let mut prev_end = (HEADER_LEN + DIR_ROW * SECTIONS.len()) as u64;
        for s in &report.sections {
            assert_eq!(s.offset % 8, 0);
            assert!(s.offset >= prev_end);
            prev_end = s.offset + s.len;
        }
        // A flipped bit turns exactly one section's verdict false.
        let mut bytes = snap.to_vec();
        let tags = report.sections.iter().find(|s| s.name == "tags").unwrap();
        bytes[tags.offset as usize + 1] ^= 0x80;
        let damaged = inspect(&bytes).unwrap();
        let bad: Vec<&str> = damaged
            .sections
            .iter()
            .filter(|s| !s.crc_ok)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(bad, ["tags"]);
        // v3 files inspect as a single body region.
        let v3 = crate::persist::save_collection(&c);
        let r3 = inspect(&v3).unwrap();
        assert_eq!(r3.version, 3);
        assert_eq!(r3.sections.len(), 1);
        assert_eq!(r3.sections[0].name, "body");
        assert!(r3.sections[0].crc_ok);
        let mut v3bad = v3.to_vec();
        v3bad[12] ^= 0x01;
        assert!(!inspect(&v3bad).unwrap().sections[0].crc_ok);
        // v1/v2 magics: typed version error.
        let mut v2 = v3.to_vec();
        v2[..8].copy_from_slice(b"PIMCOL2\0");
        assert!(matches!(
            inspect(&v2),
            Err(PersistError::SnapshotVersion { found: 2, .. })
        ));
        let _ = inv;
    }
}
