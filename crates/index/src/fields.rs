//! Typed field access: resolving `x.attr` references from ordering rules and
//! constraint predicates against an element.
//!
//! The paper's car example treats `color`, `mileage`, `horsepower` (hp),
//! `price` interchangeably as XML attributes or child elements (Fig. 1 has
//! them as child elements; the rules in Fig. 2 write `x.color`). The
//! resolver therefore looks at an XML attribute first, then falls back to
//! the text content of the first child element of that name.

use crate::store::{Collection, ElemRef};
use pimento_xml::nav::children_with_tag;
use pimento_xml::SymbolId;

/// A typed value extracted from a document.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Numeric content (integers and decimals both normalize to `f64`).
    Num(f64),
    /// Everything else, trimmed.
    Str(String),
}

impl FieldValue {
    /// Parse raw text into the most specific type.
    pub fn parse(raw: &str) -> FieldValue {
        let t = raw.trim();
        // Strip common numeric formatting ("50.000" in the paper's figure is
        // a thousands-formatted 50000; "$500" has a currency marker).
        let cleaned: String = t
            .chars()
            .filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if !cleaned.is_empty()
            && t.chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | ',' | '$' | ' ' | '%'))
        {
            // Dot disambiguation: several dots are always thousands
            // separators; a single dot followed by exactly three digits
            // after two or more leading digits reads as European thousands
            // formatting ("50.000" in the paper's Fig. 1 is 50000 miles),
            // anything else as a decimal point ("3.5").
            let dots = cleaned.matches('.').count();
            let thousands = dots > 1
                || matches!(cleaned.split_once('.'),
                    Some((head, tail)) if tail.len() == 3 && head.trim_start_matches('-').len() >= 2);
            let normalized = if thousands {
                cleaned.replace('.', "")
            } else {
                cleaned
            };
            if let Ok(n) = normalized.parse::<f64>() {
                return FieldValue::Num(n);
            }
        }
        FieldValue::Str(t.to_string())
    }

    /// Numeric view, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            FieldValue::Num(n) => Some(*n),
            FieldValue::Str(_) => None,
        }
    }

    /// String view (numbers render with minimal formatting).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            FieldValue::Num(_) => None,
        }
    }

    /// Case-insensitive equality against a constant.
    pub fn eq_const(&self, c: &str) -> bool {
        match self {
            FieldValue::Num(n) => c.trim().parse::<f64>().map(|x| x == *n).unwrap_or(false),
            FieldValue::Str(s) => s.eq_ignore_ascii_case(c.trim()),
        }
    }
}

/// Resolve `elem.field` to a typed value: XML attribute first, then the
/// first child element of that name, then the first *descendant* element
/// (real-world schemas nest fields — XMark keeps `age` inside
/// `person/profile`, while the rules say `x.age`).
pub fn field_value(coll: &Collection, elem: ElemRef, field: &str) -> Option<FieldValue> {
    coll.symbols()
        .get(field)
        .and_then(|sym| field_value_sym(coll, elem, sym))
}

/// [`field_value`] with the field name already resolved to an interned
/// symbol — the hot-path form: operators resolve each attribute name to a
/// [`SymbolId`] once per plan and probe by id per answer.
pub fn field_value_sym(coll: &Collection, elem: ElemRef, sym: SymbolId) -> Option<FieldValue> {
    let doc = coll.doc(elem.doc);
    let node = doc.node(elem.node);
    if let Some(v) = node.attr(sym) {
        return Some(FieldValue::parse(v));
    }
    if let Some(child) = children_with_tag(doc, elem.node, sym).next() {
        return Some(FieldValue::parse(&doc.text_content(child)));
    }
    if let Some(desc) = doc
        .descendant_elements(elem.node)
        .into_iter()
        .find(|&n| doc.node(n).tag() == Some(sym))
    {
        return Some(FieldValue::parse(&doc.text_content(desc)));
    }
    None
}

/// Resolve `elem.field` only when it parses as a number.
pub fn numeric_field(coll: &Collection, elem: ElemRef, field: &str) -> Option<f64> {
    field_value(coll, elem, field).and_then(|v| v.as_num())
}

/// The element's own text content as a typed value — used by constraint
/// predicates like `price < 2000` where the TPQ node *is* the price element.
pub fn content_value(coll: &Collection, elem: ElemRef) -> FieldValue {
    FieldValue::parse(&coll.text_content(elem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DocId;

    fn setup() -> (Collection, ElemRef) {
        let mut c = Collection::new();
        c.add_xml(
            r#"<car color="red"><mileage>50.000</mileage><hp>200</hp><price>$500</price><make>Honda</make></car>"#,
        )
        .unwrap();
        let root = c.doc(DocId(0)).root();
        (
            c,
            ElemRef {
                doc: DocId(0),
                node: root,
            },
        )
    }

    #[test]
    fn attribute_beats_child_element() {
        let (c, car) = setup();
        assert_eq!(
            field_value(&c, car, "color"),
            Some(FieldValue::Str("red".into()))
        );
    }

    #[test]
    fn child_element_text_resolves() {
        let (c, car) = setup();
        assert_eq!(
            field_value(&c, car, "make"),
            Some(FieldValue::Str("Honda".into()))
        );
        assert_eq!(numeric_field(&c, car, "hp"), Some(200.0));
    }

    #[test]
    fn thousands_formatting_parses() {
        let (c, car) = setup();
        assert_eq!(numeric_field(&c, car, "mileage"), Some(50_000.0));
    }

    #[test]
    fn currency_marker_parses() {
        let (c, car) = setup();
        assert_eq!(numeric_field(&c, car, "price"), Some(500.0));
    }

    #[test]
    fn missing_field_is_none() {
        let (c, car) = setup();
        assert_eq!(field_value(&c, car, "vin"), None);
        assert_eq!(numeric_field(&c, car, "make"), None);
    }

    #[test]
    fn parse_types() {
        assert_eq!(FieldValue::parse("42"), FieldValue::Num(42.0));
        assert_eq!(FieldValue::parse(" 3.5 "), FieldValue::Num(3.5));
        assert_eq!(FieldValue::parse("-7"), FieldValue::Num(-7.0));
        assert_eq!(FieldValue::parse("red"), FieldValue::Str("red".into()));
        assert_eq!(FieldValue::parse("1.2.3"), FieldValue::Num(123.0)); // thousands dots
    }

    #[test]
    fn eq_const_case_insensitive() {
        assert!(FieldValue::parse("Red").eq_const("red"));
        assert!(FieldValue::parse("500").eq_const("500"));
        assert!(!FieldValue::parse("500").eq_const("501"));
        assert!(!FieldValue::parse("red").eq_const("blue"));
    }

    #[test]
    fn content_value_of_leaf() {
        let (c, car) = setup();
        let doc = c.doc(car.doc);
        let hp = c.tag("hp").unwrap();
        let hp_node = doc.child_element(doc.root(), hp).unwrap();
        let v = content_value(
            &c,
            ElemRef {
                doc: car.doc,
                node: hp_node,
            },
        );
        assert_eq!(v, FieldValue::Num(200.0));
    }
}
