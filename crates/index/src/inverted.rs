//! Positional inverted index over a [`Collection`].
//!
//! For every token we store `(doc, global token position, region label of
//! the containing text node)`. Global positions run across the whole
//! document, so phrase matching is "consecutive positions"; region labels
//! make `ftcontains(e, kw)` a binary-searchable range check against `e`'s
//! `(start, end)` region. This mirrors the paper's reliance on "inverted
//! indices on keywords" (§6.4).
//!
//! Two backings live behind one API. The *heap* form (`token →
//! Vec<Posting>`) is built from documents and supports incremental adds.
//! The *packed* form is a zero-copy view over the `inv` section of a
//! `PIMCOL4` snapshot: a name-sorted token directory of fixed
//! [`TOKEN_ROW`]-byte rows plus delta-encoded varint posting runs grouped
//! per `(token, document)`. Lookups binary-search the directory and decode
//! only the runs they touch; nothing is rebuilt at load time. Accessors
//! return [`PostingsRef`], which derefs to `[Posting]` either way.

use crate::store::{Collection, DocId};
use crate::tags::u32_at;
use crate::tokenize::Tokenizer;
use crate::varint;
use bytes::Bytes;
use pimento_xml::{NodeId, NodeKind};
use std::collections::HashMap;
use std::ops::Deref;

/// One occurrence of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document the occurrence is in.
    pub doc: DocId,
    /// Global token position within the document (0-based, document order).
    pub pos: u32,
    /// Region label (`start == end`) of the containing text node; an element
    /// `e` contains the occurrence iff `e.start < label && label < e.end`.
    pub label: u32,
    /// The text node the occurrence came from.
    pub text_node: NodeId,
}

/// Postings handed back by [`InvertedIndex`] lookups: a borrowed slice
/// when the index is heap-backed, a freshly decoded vector when the
/// postings came out of packed varint runs. Derefs to `[Posting]`, so
/// callers index/iterate it like the slice the old API returned.
#[derive(Debug, Clone)]
pub struct PostingsRef<'a> {
    repr: PostingsRepr<'a>,
}

#[derive(Debug, Clone)]
enum PostingsRepr<'a> {
    Borrowed(&'a [Posting]),
    Owned(Vec<Posting>),
}

impl<'a> PostingsRef<'a> {
    /// An empty postings list.
    pub fn empty() -> Self {
        PostingsRef {
            repr: PostingsRepr::Borrowed(&[]),
        }
    }

    pub(crate) fn borrowed(s: &'a [Posting]) -> Self {
        PostingsRef {
            repr: PostingsRepr::Borrowed(s),
        }
    }

    pub(crate) fn owned(v: Vec<Posting>) -> Self {
        PostingsRef {
            repr: PostingsRepr::Owned(v),
        }
    }

    /// Narrow to postings `lo..hi` without copying the borrowed case.
    /// A range past the end yields the empty window.
    pub fn sliced(self, lo: usize, hi: usize) -> PostingsRef<'a> {
        match self.repr {
            PostingsRepr::Borrowed(s) => PostingsRef::borrowed(s.get(lo..hi).unwrap_or(&[])),
            PostingsRepr::Owned(mut v) => {
                v.truncate(hi);
                v.drain(..lo.min(v.len()));
                PostingsRef::owned(v)
            }
        }
    }
}

impl Deref for PostingsRef<'_> {
    type Target = [Posting];
    fn deref(&self) -> &[Posting] {
        match &self.repr {
            PostingsRepr::Borrowed(s) => s,
            PostingsRepr::Owned(v) => v,
        }
    }
}

impl PartialEq for PostingsRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for PostingsRef<'_> {}

/// On-disk size of one packed token-directory row: `name_off`, `name_len`,
/// `doc_freq`, `run_count`, `runs_off`, `total_postings` — six `u32`s.
pub(crate) const TOKEN_ROW: usize = 24;

/// On-disk size of one per-document run-table entry: `doc`, `payload_off`
/// (relative to the token's varint payload base), `posting_count`.
pub(crate) const RUN_ROW: usize = 12;

/// Packed backing: zero-copy windows into the snapshot buffer.
#[derive(Debug)]
pub(crate) struct PackedInverted {
    /// Per-document token counts (`u32` each).
    doc_tokens: Bytes,
    /// Name-sorted token directory, `TOKEN_ROW` bytes per token.
    token_rows: Bytes,
    /// Concatenated UTF-8 token names, addressed by the directory.
    names: Bytes,
    /// Per-token run blobs: `run_count` `RUN_ROW`-byte doc entries, then
    /// the delta-encoded varint payload.
    runs: Bytes,
}

/// Decoded view of one token-directory row.
#[derive(Debug, Clone, Copy)]
struct TokenRow {
    name_off: usize,
    name_len: usize,
    doc_freq: u32,
    run_count: usize,
    runs_off: usize,
    total_postings: usize,
}

impl PackedInverted {
    fn token_count(&self) -> usize {
        self.token_rows.len() / TOKEN_ROW
    }

    fn row(&self, i: usize) -> TokenRow {
        let at = i * TOKEN_ROW;
        TokenRow {
            name_off: u32_at(&self.token_rows, at) as usize,
            name_len: u32_at(&self.token_rows, at + 4) as usize,
            doc_freq: u32_at(&self.token_rows, at + 8),
            run_count: u32_at(&self.token_rows, at + 12) as usize,
            runs_off: u32_at(&self.token_rows, at + 16) as usize,
            total_postings: u32_at(&self.token_rows, at + 20) as usize,
        }
    }

    fn name(&self, row: TokenRow) -> &[u8] {
        // Name spans are validated against the heap when the snapshot
        // opens; an out-of-window row reads as the empty name.
        row.name_off
            .checked_add(row.name_len)
            .and_then(|end| self.names.get(row.name_off..end))
            .unwrap_or(&[])
    }

    /// Binary search the name-sorted directory.
    fn find(&self, token: &str) -> Option<TokenRow> {
        let (mut lo, mut hi) = (0usize, self.token_count());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let row = self.row(mid);
            match self.name(row).cmp(token.as_bytes()) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(row),
            }
        }
        None
    }

    /// Decode one `(token, doc)` varint run. Bounds were validated at
    /// open; a malformed payload (writer bug) yields a short/empty list
    /// rather than a panic — this is a hot path.
    fn decode_run(
        &self,
        payload_base: usize,
        off: usize,
        count: usize,
        doc: DocId,
        out: &mut Vec<Posting>,
    ) {
        let Some(mut buf) = self.runs.get(payload_base + off..) else {
            debug_assert!(false, "run payload offset out of bounds");
            return;
        };
        let (mut pos, mut label, mut text) = (0u32, 0u32, 0u32);
        for i in 0..count {
            let decoded = varint::get_varint(buf).and_then(|(dp, r)| {
                varint::get_varint(r)
                    .and_then(|(dl, r)| varint::get_varint(r).map(|(dt, r)| (dp, dl, dt, r)))
            });
            let Some((dp, dl, dt, rest)) = decoded else {
                debug_assert!(false, "malformed varint run");
                return;
            };
            buf = rest;
            if i == 0 {
                (pos, label, text) = (dp, dl, dt);
            } else {
                // Document order makes all three nondecreasing; saturate
                // instead of wrapping if the payload lies.
                pos = pos.saturating_add(dp);
                label = label.saturating_add(dl);
                text = text.saturating_add(dt);
            }
            out.push(Posting {
                doc,
                pos,
                label,
                text_node: NodeId(text),
            });
        }
    }

    /// All postings of `row`'s token, in `(doc, pos)` order.
    fn postings_of(&self, row: TokenRow) -> Vec<Posting> {
        let mut out = Vec::with_capacity(row.total_postings);
        let payload_base = row.runs_off + row.run_count * RUN_ROW;
        for r in 0..row.run_count {
            let at = row.runs_off + r * RUN_ROW;
            let doc = DocId(u32_at(&self.runs, at));
            let off = u32_at(&self.runs, at + 4) as usize;
            let count = u32_at(&self.runs, at + 8) as usize;
            self.decode_run(payload_base, off, count, doc, &mut out);
        }
        out
    }

    /// Postings of `row`'s token within `doc` only (binary-searched run
    /// table, single run decoded).
    fn doc_postings_of(&self, row: TokenRow, doc: DocId) -> Vec<Posting> {
        let run_at = |i: usize| u32_at(&self.runs, row.runs_off + i * RUN_ROW);
        let (mut lo, mut hi) = (0usize, row.run_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match run_at(mid).cmp(&doc.0) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let at = row.runs_off + mid * RUN_ROW;
                    let off = u32_at(&self.runs, at + 4) as usize;
                    let count = u32_at(&self.runs, at + 8) as usize;
                    let mut out = Vec::with_capacity(count);
                    let payload_base = row.runs_off + row.run_count * RUN_ROW;
                    self.decode_run(payload_base, off, count, doc, &mut out);
                    return out;
                }
            }
        }
        Vec::new()
    }
}

/// Heap backing: the mutable build-time form.
#[derive(Debug, Default)]
struct HeapInverted {
    /// token → postings sorted by (doc, pos).
    postings: HashMap<String, Vec<Posting>>,
    /// Per-document token count.
    doc_tokens: Vec<u32>,
    /// token → number of documents containing it.
    doc_freq: HashMap<String, u32>,
}

#[derive(Debug)]
enum InvRepr {
    Heap(HeapInverted),
    Packed(PackedInverted),
}

/// Inverted index; build with [`InvertedIndex::build`] or open packed from
/// a columnar snapshot.
#[derive(Debug)]
pub struct InvertedIndex {
    tokenizer: Tokenizer,
    repr: InvRepr,
}

impl InvertedIndex {
    /// Index every text node of every document in `coll`.
    pub fn build(coll: &Collection, tokenizer: Tokenizer) -> Self {
        let mut index = InvertedIndex {
            tokenizer,
            repr: InvRepr::Heap(HeapInverted {
                postings: HashMap::new(),
                doc_tokens: Vec::with_capacity(coll.len()),
                doc_freq: HashMap::new(),
            }),
        };
        for (doc_id, doc) in coll.iter() {
            index.index_document(doc_id, doc);
        }
        index
    }

    /// Wrap pre-validated packed sections (the `inv` section of a columnar
    /// snapshot); zero-copy slices of the snapshot buffer.
    pub(crate) fn from_packed(
        tokenizer: Tokenizer,
        doc_tokens: Bytes,
        token_rows: Bytes,
        names: Bytes,
        runs: Bytes,
    ) -> Self {
        InvertedIndex {
            tokenizer,
            repr: InvRepr::Packed(PackedInverted {
                doc_tokens,
                token_rows,
                names,
                runs,
            }),
        }
    }

    /// True when backed by packed snapshot sections.
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, InvRepr::Packed(_))
    }

    /// Thaw a packed backing into heap maps so mutation can proceed.
    fn ensure_heap(&mut self) {
        if !self.is_packed() {
            return;
        }
        let mut heap = HeapInverted::default();
        if let InvRepr::Packed(p) = &self.repr {
            heap.doc_tokens = (0..p.doc_tokens.len() / 4)
                .map(|i| u32_at(&p.doc_tokens, i * 4))
                .collect();
            for i in 0..p.token_count() {
                let row = p.row(i);
                let name = String::from_utf8_lossy(p.name(row)).into_owned();
                heap.doc_freq.insert(name.clone(), row.doc_freq);
                heap.postings.insert(name, p.postings_of(row));
            }
        }
        self.repr = InvRepr::Heap(heap);
    }

    /// Append one document's postings. `doc_id` must be the next id in
    /// sequence (postings stay `(doc, pos)`-sorted because ids grow) —
    /// this is what makes incremental collection growth cheap. A packed
    /// index thaws to heap form first.
    pub fn index_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) {
        self.ensure_heap();
        let tokenizer = self.tokenizer;
        let InvRepr::Heap(heap) = &mut self.repr else {
            return;
        };
        assert_eq!(
            doc_id.0 as usize,
            heap.doc_tokens.len(),
            "documents must be indexed in id order"
        );
        let mut pos = 0u32;
        let mut doc_terms: Vec<String> = Vec::new();
        for node_id in doc.node_ids() {
            let node = doc.node(node_id);
            if let NodeKind::Text(t) = &node.kind {
                for token in tokenizer.tokenize(t) {
                    doc_terms.push(token.clone());
                    let entry = heap.postings.entry(token).or_default();
                    entry.push(Posting {
                        doc: doc_id,
                        pos,
                        label: node.start,
                        text_node: node_id,
                    });
                    debug_assert!(
                        entry.len() < 2
                            || (entry[entry.len() - 2].doc, entry[entry.len() - 2].pos)
                                < (doc_id, pos)
                    );
                    pos += 1;
                }
            }
        }
        heap.doc_tokens.push(pos);
        // Document frequencies: +1 for every distinct term of this doc.
        doc_terms.sort_unstable();
        doc_terms.dedup();
        for t in doc_terms {
            *heap.doc_freq.entry(t).or_insert(0) += 1;
        }
    }

    /// The tokenizer this index was built with (queries must use the same).
    pub fn tokenizer(&self) -> Tokenizer {
        self.tokenizer
    }

    /// All postings of `token` (already normalized), sorted by (doc, pos).
    pub fn postings(&self, token: &str) -> PostingsRef<'_> {
        match &self.repr {
            InvRepr::Heap(h) => {
                PostingsRef::borrowed(h.postings.get(token).map(Vec::as_slice).unwrap_or(&[]))
            }
            InvRepr::Packed(p) => match p.find(token) {
                Some(row) => PostingsRef::owned(p.postings_of(row)),
                None => PostingsRef::empty(),
            },
        }
    }

    /// Postings of `token` within document `doc`. Heap-backed this is a
    /// sub-slice of the global list; packed it decodes exactly one
    /// `(token, doc)` run.
    pub fn doc_postings(&self, token: &str, doc: DocId) -> PostingsRef<'_> {
        match &self.repr {
            InvRepr::Heap(h) => {
                let all = h.postings.get(token).map(Vec::as_slice).unwrap_or(&[]);
                let lo = all.partition_point(|p| p.doc < doc);
                let hi = all.partition_point(|p| p.doc <= doc);
                PostingsRef::borrowed(all.get(lo..hi).unwrap_or(&[]))
            }
            InvRepr::Packed(p) => match p.find(token) {
                Some(row) => PostingsRef::owned(p.doc_postings_of(row, doc)),
                None => PostingsRef::empty(),
            },
        }
    }

    /// Number of documents containing `token`.
    pub fn doc_freq(&self, token: &str) -> u32 {
        match &self.repr {
            InvRepr::Heap(h) => h.doc_freq.get(token).copied().unwrap_or(0),
            InvRepr::Packed(p) => p.find(token).map(|r| r.doc_freq).unwrap_or(0),
        }
    }

    /// Number of documents indexed.
    pub fn num_docs(&self) -> u32 {
        match &self.repr {
            InvRepr::Heap(h) => h.doc_tokens.len() as u32,
            InvRepr::Packed(p) => (p.doc_tokens.len() / 4) as u32,
        }
    }

    /// Token count of a document.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        match &self.repr {
            InvRepr::Heap(h) => h.doc_tokens[doc.0 as usize],
            InvRepr::Packed(p) => u32_at(&p.doc_tokens, doc.0 as usize * 4),
        }
    }

    /// Number of distinct tokens in the index.
    pub fn vocabulary_size(&self) -> usize {
        match &self.repr {
            InvRepr::Heap(h) => h.postings.len(),
            InvRepr::Packed(p) => p.token_count(),
        }
    }

    /// Normalize a raw query keyword/phrase into index tokens.
    pub fn analyze(&self, phrase: &str) -> Vec<String> {
        self.tokenizer.tokenize(phrase)
    }

    /// Every distinct token paired with its document frequency, in name
    /// (byte) order. This is the aggregation input for sharded engines:
    /// summing these tables across doc-range segments reproduces the
    /// monolithic corpus statistics exactly (segments partition the
    /// documents, so per-token frequencies are disjoint integer counts).
    pub fn token_doc_freqs(&self) -> Vec<(String, u32)> {
        self.dump_token_names()
            .into_iter()
            .map(|name| {
                let df = self.doc_freq(&name);
                (name, df)
            })
            .collect()
    }

    /// All distinct tokens in name (byte) order — the snapshot writer's
    /// directory order, uniform over both backings.
    pub(crate) fn dump_token_names(&self) -> Vec<String> {
        match &self.repr {
            InvRepr::Heap(h) => {
                let mut names: Vec<String> = h.postings.keys().cloned().collect();
                names.sort_unstable();
                names
            }
            InvRepr::Packed(p) => (0..p.token_count())
                .map(|i| String::from_utf8_lossy(p.name(p.row(i))).into_owned())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(xmls: &[&str]) -> (Collection, InvertedIndex) {
        let mut c = Collection::new();
        for x in xmls {
            c.add_xml(x).unwrap();
        }
        let idx = InvertedIndex::build(&c, Tokenizer::plain());
        (c, idx)
    }

    #[test]
    fn postings_positions_are_global_per_document() {
        let (_, idx) = index(&["<a><b>good condition</b><c>good car</c></a>"]);
        let good = idx.postings("good");
        assert_eq!(good.len(), 2);
        assert_eq!(good[0].pos, 0);
        assert_eq!(good[1].pos, 2);
        assert_eq!(idx.postings("condition")[0].pos, 1);
    }

    #[test]
    fn labels_track_text_nodes() {
        let (c, idx) = index(&["<a><b>alpha</b><c>alpha</c></a>"]);
        let doc = c.doc(DocId(0));
        let b = doc.node(doc.root()).children[0];
        let alpha = idx.postings("alpha");
        // first occurrence's label falls inside b's region
        let nb = doc.node(b);
        assert!(nb.start < alpha[0].label && alpha[0].label < nb.end);
        assert!(!(nb.start < alpha[1].label && alpha[1].label < nb.end));
    }

    #[test]
    fn doc_postings_slices_per_document() {
        let (_, idx) = index(&["<a>x y</a>", "<a>y z</a>"]);
        assert_eq!(idx.doc_postings("y", DocId(0)).len(), 1);
        assert_eq!(idx.doc_postings("y", DocId(1)).len(), 1);
        assert_eq!(idx.doc_postings("x", DocId(1)).len(), 0);
        assert_eq!(idx.doc_freq("y"), 2);
        assert_eq!(idx.doc_freq("x"), 1);
        assert_eq!(idx.doc_freq("missing"), 0);
    }

    #[test]
    fn doc_lengths() {
        let (_, idx) = index(&["<a>one two three</a>", "<a>four</a>"]);
        assert_eq!(idx.doc_len(DocId(0)), 3);
        assert_eq!(idx.doc_len(DocId(1)), 1);
        assert_eq!(idx.num_docs(), 2);
    }

    #[test]
    fn empty_collection() {
        let c = Collection::new();
        let idx = InvertedIndex::build(&c, Tokenizer::plain());
        assert_eq!(idx.num_docs(), 0);
        assert!(idx.postings("anything").is_empty());
    }

    #[test]
    fn stemming_index_merges_forms() {
        let mut c = Collection::new();
        c.add_xml("<a>selling cars</a>").unwrap();
        let idx = InvertedIndex::build(&c, Tokenizer::stemming());
        assert_eq!(idx.postings("car").len(), 1);
        assert_eq!(idx.analyze("Cars"), ["car"]);
    }

    #[test]
    fn postings_ref_slicing_and_equality() {
        let (_, idx) = index(&["<a>one two one two one</a>"]);
        let one = idx.postings("one");
        assert_eq!(one.len(), 3);
        let window = one.clone().sliced(1, 3);
        assert_eq!(window.len(), 2);
        assert_eq!(window[0], one[1]);
        assert_eq!(idx.postings("one"), idx.postings("one"));
        assert_ne!(idx.postings("one"), idx.postings("two"));
        // Owned slicing keeps the same contents as borrowed slicing.
        let owned = PostingsRef::owned(one.to_vec()).sliced(1, 3);
        assert_eq!(owned, window);
        assert!(PostingsRef::empty().is_empty());
    }

    #[test]
    fn dump_token_names_is_sorted() {
        let (_, idx) = index(&["<a>zeta alpha mid</a>"]);
        assert_eq!(idx.dump_token_names(), ["alpha", "mid", "zeta"]);
    }
}
