//! Positional inverted index over a [`Collection`].
//!
//! For every token we store `(doc, global token position, region label of
//! the containing text node)`. Global positions run across the whole
//! document, so phrase matching is "consecutive positions"; region labels
//! make `ftcontains(e, kw)` a binary-searchable range check against `e`'s
//! `(start, end)` region. This mirrors the paper's reliance on "inverted
//! indices on keywords" (§6.4).

use crate::store::{Collection, DocId};
use crate::tokenize::Tokenizer;
use pimento_xml::{NodeId, NodeKind};
use std::collections::HashMap;

/// One occurrence of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document the occurrence is in.
    pub doc: DocId,
    /// Global token position within the document (0-based, document order).
    pub pos: u32,
    /// Region label (`start == end`) of the containing text node; an element
    /// `e` contains the occurrence iff `e.start < label && label < e.end`.
    pub label: u32,
    /// The text node the occurrence came from.
    pub text_node: NodeId,
}

/// Immutable inverted index; build once per collection with
/// [`InvertedIndex::build`].
#[derive(Debug)]
pub struct InvertedIndex {
    tokenizer: Tokenizer,
    /// token → postings sorted by (doc, pos).
    postings: HashMap<String, Vec<Posting>>,
    /// Per-document token count.
    doc_tokens: Vec<u32>,
    /// token → number of documents containing it.
    doc_freq: HashMap<String, u32>,
}

impl InvertedIndex {
    /// Index every text node of every document in `coll`.
    pub fn build(coll: &Collection, tokenizer: Tokenizer) -> Self {
        let mut index = InvertedIndex {
            tokenizer,
            postings: HashMap::new(),
            doc_tokens: Vec::with_capacity(coll.len()),
            doc_freq: HashMap::new(),
        };
        for (doc_id, doc) in coll.iter() {
            index.index_document(doc_id, doc);
        }
        index
    }

    /// Append one document's postings. `doc_id` must be the next id in
    /// sequence (postings stay `(doc, pos)`-sorted because ids grow) —
    /// this is what makes incremental collection growth cheap.
    pub fn index_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) {
        assert_eq!(
            doc_id.0 as usize,
            self.doc_tokens.len(),
            "documents must be indexed in id order"
        );
        let mut pos = 0u32;
        let mut doc_terms: Vec<String> = Vec::new();
        for node_id in doc.node_ids() {
            let node = doc.node(node_id);
            if let NodeKind::Text(t) = &node.kind {
                for token in self.tokenizer.tokenize(t) {
                    doc_terms.push(token.clone());
                    let entry = self.postings.entry(token).or_default();
                    entry.push(Posting { doc: doc_id, pos, label: node.start, text_node: node_id });
                    debug_assert!(
                        entry.len() < 2
                            || (entry[entry.len() - 2].doc, entry[entry.len() - 2].pos)
                                < (doc_id, pos)
                    );
                    pos += 1;
                }
            }
        }
        self.doc_tokens.push(pos);
        // Document frequencies: +1 for every distinct term of this doc.
        doc_terms.sort_unstable();
        doc_terms.dedup();
        for t in doc_terms {
            *self.doc_freq.entry(t).or_insert(0) += 1;
        }
    }

    /// The tokenizer this index was built with (queries must use the same).
    pub fn tokenizer(&self) -> Tokenizer {
        self.tokenizer
    }

    /// All postings of `token` (already normalized), sorted by (doc, pos).
    pub fn postings(&self, token: &str) -> &[Posting] {
        self.postings.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Postings of `token` within document `doc` (slice of the global list).
    pub fn doc_postings(&self, token: &str, doc: DocId) -> &[Posting] {
        let all = self.postings(token);
        let lo = all.partition_point(|p| p.doc < doc);
        let hi = all.partition_point(|p| p.doc <= doc);
        &all[lo..hi]
    }

    /// Number of documents containing `token`.
    pub fn doc_freq(&self, token: &str) -> u32 {
        self.doc_freq.get(token).copied().unwrap_or(0)
    }

    /// Number of documents indexed.
    pub fn num_docs(&self) -> u32 {
        self.doc_tokens.len() as u32
    }

    /// Token count of a document.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_tokens[doc.0 as usize]
    }

    /// Number of distinct tokens in the index.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Normalize a raw query keyword/phrase into index tokens.
    pub fn analyze(&self, phrase: &str) -> Vec<String> {
        self.tokenizer.tokenize(phrase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(xmls: &[&str]) -> (Collection, InvertedIndex) {
        let mut c = Collection::new();
        for x in xmls {
            c.add_xml(x).unwrap();
        }
        let idx = InvertedIndex::build(&c, Tokenizer::plain());
        (c, idx)
    }

    #[test]
    fn postings_positions_are_global_per_document() {
        let (_, idx) = index(&["<a><b>good condition</b><c>good car</c></a>"]);
        let good = idx.postings("good");
        assert_eq!(good.len(), 2);
        assert_eq!(good[0].pos, 0);
        assert_eq!(good[1].pos, 2);
        assert_eq!(idx.postings("condition")[0].pos, 1);
    }

    #[test]
    fn labels_track_text_nodes() {
        let (c, idx) = index(&["<a><b>alpha</b><c>alpha</c></a>"]);
        let doc = c.doc(DocId(0));
        let b = doc.node(doc.root()).children[0];
        let alpha = idx.postings("alpha");
        // first occurrence's label falls inside b's region
        let nb = doc.node(b);
        assert!(nb.start < alpha[0].label && alpha[0].label < nb.end);
        assert!(!(nb.start < alpha[1].label && alpha[1].label < nb.end));
    }

    #[test]
    fn doc_postings_slices_per_document() {
        let (_, idx) = index(&["<a>x y</a>", "<a>y z</a>"]);
        assert_eq!(idx.doc_postings("y", DocId(0)).len(), 1);
        assert_eq!(idx.doc_postings("y", DocId(1)).len(), 1);
        assert_eq!(idx.doc_postings("x", DocId(1)).len(), 0);
        assert_eq!(idx.doc_freq("y"), 2);
        assert_eq!(idx.doc_freq("x"), 1);
        assert_eq!(idx.doc_freq("missing"), 0);
    }

    #[test]
    fn doc_lengths() {
        let (_, idx) = index(&["<a>one two three</a>", "<a>four</a>"]);
        assert_eq!(idx.doc_len(DocId(0)), 3);
        assert_eq!(idx.doc_len(DocId(1)), 1);
        assert_eq!(idx.num_docs(), 2);
    }

    #[test]
    fn empty_collection() {
        let c = Collection::new();
        let idx = InvertedIndex::build(&c, Tokenizer::plain());
        assert_eq!(idx.num_docs(), 0);
        assert!(idx.postings("anything").is_empty());
    }

    #[test]
    fn stemming_index_merges_forms() {
        let mut c = Collection::new();
        c.add_xml("<a>selling cars</a>").unwrap();
        let idx = InvertedIndex::build(&c, Tokenizer::stemming());
        assert_eq!(idx.postings("car").len(), 1);
        assert_eq!(idx.analyze("Cars"), ["car"]);
    }
}
