//! # pimento-index
//!
//! Indexing substrate for the PIMENTO reproduction: the paper's query
//! evaluation "relies on inverted indices on keywords and on an index per
//! distinct tag" (§6.4). This crate provides both, plus the scoring model
//! and the typed field access that ordering rules need:
//!
//! * [`store::Collection`] — documents sharing a symbol table,
//! * [`inverted::InvertedIndex`] — positional keyword index whose postings
//!   carry region labels, so `ftcontains` is a range check,
//! * [`tags::TagIndex`] — per-tag element lists sorted by `(doc, start)`,
//!   the input streams of the structural joins,
//! * [`phrase`] — phrase adjacency + containment,
//! * [`score::Scorer`] — per-predicate scores normalized to [0, 1] so
//!   top-k pruning bounds are exact,
//! * [`fields`] — `x.attr` resolution for value-based ordering rules.
//!
//! ```
//! use pimento_index::{Collection, InvertedIndex, TagIndex, Tokenizer, Scorer, ft_contains};
//!
//! let mut coll = Collection::new();
//! coll.add_xml("<car><description>good condition</description></car>").unwrap();
//! let inv = InvertedIndex::build(&coll, Tokenizer::plain());
//! let tags = TagIndex::build(&coll);
//! let car = coll.tag("car").unwrap();
//! let elem = tags.elements(car).at(0);
//! assert!(ft_contains(&inv, &elem, &inv.analyze("good condition")));
//! let score = Scorer::new(&inv).ft_score(&inv, &elem, &inv.analyze("good condition"));
//! assert!(score > 0.0 && score < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod fields;
pub mod inverted;
pub mod parallel;
pub mod persist;
pub mod phrase;
pub mod score;
pub mod segment;
pub mod stats;
pub mod store;
pub mod tags;
pub mod tokenize;
pub mod tombstone;
pub mod values;
pub mod varint;

pub use columnar::{
    inspect, is_columnar, open_index, save_index, OpenedIndex, SectionReport, SnapshotReport,
    COLUMNAR_VERSION,
};
pub use fields::{content_value, field_value, field_value_sym, numeric_field, FieldValue};
pub use inverted::{InvertedIndex, Posting, PostingsRef};
pub use parallel::{build_collection_parallel, effective_workers, resolve_threads};
pub use persist::{crc32, load_collection, save_collection, PersistError, FORMAT_VERSION};
pub use phrase::{
    count_in_element, ft_all, ft_contains, occurrences_in_element, phrase_occurrences,
    postings_in_element,
};
pub use score::Scorer;
pub use segment::{
    global_doc_freqs, split_ranges, ManifestEntry, ShardManifest, MANIFEST_FILE, MANIFEST_HEADER,
    MANIFEST_HEADER_V2,
};
pub use stats::CorpusStats;
pub use store::{Collection, DocId, ElemRef};
pub use tags::{ElemEntry, ElemsView, TagIndex};
pub use tokenize::{stem, Tokenizer};
pub use tombstone::{TombstoneSet, TOMBSTONE_HEADER};
pub use values::{RangeOp, ValueIndex};
