//! Parallel collection building: parse many documents on worker threads,
//! then merge their symbol tables into one shared interner.
//!
//! Parsing dominates ingest cost and is embarrassingly parallel *except*
//! for the shared symbol table. Each worker therefore parses against its
//! own local table; the merge step interns every local name into the
//! shared table once and rewrites the documents' symbol ids through the
//! resulting mapping — an O(total names + total nodes) fix-up that is tiny
//! next to parsing.

use crate::store::Collection;
use pimento_xml::{parse_content, Document, SymbolId, SymbolTable, XmlError};

/// The worker count actually used for `requested` threads over `jobs`
/// units of work: at least one, at most the machine's parallelism, and
/// never more workers than jobs. The single clamp shared by ingest and
/// query execution (`0` means "one worker", i.e. inline).
pub fn effective_workers(requested: usize, jobs: usize) -> usize {
    // More workers than cores only adds scheduling overhead; clamp to the
    // machine (and never spawn more workers than units of work).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.max(1).min(cores).min(jobs.max(1))
}

/// Resolve a user-facing thread-count knob: `0` means "use the machine's
/// available parallelism", anything else is taken literally. This is the
/// single place the `0` convention is interpreted — callers then clamp
/// the resolved count with [`effective_workers`], so the two compose as
/// `effective_workers(resolve_threads(requested), jobs)`. (`--threads`
/// on the search CLI, `SearchOptions::threads`, and `pimento serve
/// --threads` all route through here; precedence is per-request override
/// → server/CLI flag → `0` = machine parallelism.)
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Parse `xmls` into a collection using up to `threads` worker threads
/// (`0` or `1` parses inline). Document order is preserved. The first
/// parse error (by document index) is reported.
pub fn build_collection_parallel<S: AsRef<str> + Sync>(
    xmls: &[S],
    threads: usize,
) -> Result<Collection, XmlError> {
    build_with_workers(xmls, effective_workers(threads, xmls.len()))
}

/// The unclamped worker path (tests exercise multi-worker merging even on
/// single-core machines). Workers beyond `xmls.len()` are never spawned
/// (the chunking caps them); `0` parses inline.
fn build_with_workers<S: AsRef<str> + Sync>(
    xmls: &[S],
    threads: usize,
) -> Result<Collection, XmlError> {
    if threads <= 1 || xmls.len() <= 1 {
        let mut coll = Collection::new();
        for x in xmls {
            coll.add_xml(x.as_ref())?;
        }
        return Ok(coll);
    }

    // Parse in parallel, one chunk of documents per worker (std scoped
    // threads: parsing shares nothing, so no synchronization is needed
    // beyond the disjoint output slots).
    let chunk = xmls.len().div_ceil(threads);
    // Each worker owns one output vec and pushes exactly one result per
    // input, so the flattened merge below sees every document in order
    // without any "slot not filled" case to handle.
    let mut parsed: Vec<Vec<Result<(Document, SymbolTable), XmlError>>> = xmls
        .chunks(chunk)
        .map(|c| Vec::with_capacity(c.len()))
        .collect();
    std::thread::scope(|scope| {
        for (inputs, outputs) in xmls.chunks(chunk).zip(parsed.iter_mut()) {
            scope.spawn(move || {
                for x in inputs {
                    let mut local = SymbolTable::new();
                    outputs.push(parse_content(x.as_ref(), &mut local).map(|d| (d, local)));
                }
            });
        }
    });

    // Merge sequentially, preserving document order: intern each worker's
    // names once, then rewrite symbol ids in place (no node copies).
    let mut coll = Collection::new();
    for slot in parsed.into_iter().flatten() {
        let (mut doc, local) = slot?;
        let mapping: Vec<SymbolId> = (0..local.len() as u32)
            .map(|i| coll.symbols_mut().intern(local.name(SymbolId(i))))
            .collect();
        doc.remap_symbols(&mapping);
        coll.add_document(doc);
    }
    Ok(coll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::InvertedIndex;

    #[test]
    fn resolve_then_clamp_is_the_canonical_pipeline() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(
            resolve_threads(0),
            cores,
            "0 resolves to machine parallelism"
        );
        assert_eq!(
            resolve_threads(3),
            3,
            "explicit counts pass through unclamped"
        );
        // The composition clamps exactly once: resolve interprets the `0`
        // convention, effective_workers applies the core/job bounds.
        assert_eq!(effective_workers(resolve_threads(0), usize::MAX), cores);
        assert_eq!(effective_workers(resolve_threads(1), usize::MAX), 1);
        assert_eq!(
            effective_workers(resolve_threads(cores + 64), 2),
            2.min(cores)
        );
    }
    use crate::tokenize::Tokenizer;
    use pimento_xml::to_string;

    fn docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "<dealer id=\"d{i}\"><car><price>{}</price><color>c{}</color></car></dealer>",
                    100 * i,
                    i % 3
                )
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let xmls = docs(17);
        let seq = build_with_workers(&xmls, 1).unwrap();
        let par = build_with_workers(&xmls, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for ((_, a), (_, b)) in seq.iter().zip(par.iter()) {
            assert_eq!(to_string(a, seq.symbols()), to_string(b, par.symbols()));
        }
        // Indexes built over both behave identically.
        let ia = InvertedIndex::build(&seq, Tokenizer::plain());
        let ib = InvertedIndex::build(&par, Tokenizer::plain());
        assert_eq!(ia.vocabulary_size(), ib.vocabulary_size());
        assert_eq!(ia.postings("c1").len(), ib.postings("c1").len());
    }

    #[test]
    fn symbols_are_deduplicated_across_workers() {
        let xmls = docs(8);
        let par = build_with_workers(&xmls, 4).unwrap();
        // "dealer", "car", "price", "color", "id" — one entry each.
        assert_eq!(par.symbols().len(), 5);
    }

    #[test]
    fn parse_error_is_reported() {
        let xmls = vec!["<ok/>".to_string(), "<broken>".to_string()];
        assert!(build_with_workers(&xmls, 2).is_err());
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<String> = Vec::new();
        assert!(build_collection_parallel(&empty, 8).unwrap().is_empty());
        let one = vec!["<a/>".to_string()];
        assert_eq!(build_collection_parallel(&one, 8).unwrap().len(), 1);
    }

    #[test]
    fn effective_workers_clamps() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // 0 requested means one inline worker, regardless of jobs.
        assert_eq!(effective_workers(0, 0), 1);
        assert_eq!(effective_workers(0, 100), 1);
        // 1 requested stays 1.
        assert_eq!(effective_workers(1, 100), 1);
        // Never more workers than jobs.
        assert_eq!(effective_workers(8, 1), 1);
        assert_eq!(effective_workers(8, 3), 3.min(cores));
        // Zero jobs still yields one worker (the caller's loop is empty).
        assert_eq!(effective_workers(8, 0), 1);
        // Huge requests clamp to the machine.
        assert_eq!(effective_workers(usize::MAX, usize::MAX), cores);
    }

    #[test]
    fn more_threads_than_documents() {
        let xmls = docs(3);
        let c = build_with_workers(&xmls, 64).unwrap();
        assert_eq!(c.len(), 3);
        // The public entry clamps to the machine but stays correct.
        let c2 = build_collection_parallel(&xmls, 64).unwrap();
        assert_eq!(c2.len(), 3);
    }
}
