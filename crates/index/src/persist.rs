//! Binary snapshots of a [`Collection`]: parse once, reload instantly.
//!
//! Parsing dominates collection load time (the indexes rebuild in a
//! fraction of the parse cost), so the snapshot stores the parsed arenas —
//! symbol table, node records, region labels — in a compact little-endian
//! format:
//!
//! ```text
//! magic   "PIMCOL3\0"                    8 bytes
//! u32     format version (currently 3)
//! u32     symbol count                   then len-prefixed UTF-8 names
//! u32     document count
//! per document:
//!   u32   root node id
//!   u32   node count
//!   per node:
//!     u8  kind (0 element / 1 text / 2 comment)
//!     element: u32 tag, u16 attr count, per attr (u32 sym, str value)
//!     text/comment: str payload
//!     u32 parent + 1 (0 = none)
//!     u32 child count, u32 × children
//!     u32 start, u32 end, u16 level
//! u32     CRC32 (IEEE) of everything above
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. The CRC32 footer (table-based,
//! dependency-free — see [`crc32`]) rejects bit flips and truncation with
//! the typed [`PersistError::SnapshotCorrupt`] before any decoding runs;
//! [`Document::from_parts`] re-validates the arena invariants on load, so
//! a malformed snapshot fails loudly instead of producing an inconsistent
//! store. (Format 2 used a 64-bit FNV-1a footer; FNV is a fine hash but a
//! weak integrity check — CRC32 detects all single-bit and all 2-bit
//! errors within its span, which is the failure model for at-rest
//! snapshots.)
//!
//! ## Versioning
//!
//! The header is versioned: the magic identifies the family and the `u32`
//! that follows it is the format version. Version triage happens *before*
//! the integrity check — a snapshot from another format has a different
//! footer layout, and the useful report is "wrong version", not
//! "corrupt". Snapshots from older formats — `"PIMCOL2\0"` (v2, FNV-1a
//! footer) and seed-era `"PIMCOL1\0"` (no version field) — are rejected
//! with the typed [`PersistError::SnapshotVersion`] instead of being
//! garbage-decoded. The serialized symbol table (names in [`SymbolId`]
//! order) is part of the payload, so reloading reproduces identical
//! interned ids.

use crate::store::Collection;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pimento_xml::{Document, Node, NodeId, NodeKind, SymbolId, SymbolTable};
use std::fmt;

/// v3 magic: the legacy heap-rebuild format this module reads and writes.
pub(crate) const MAGIC: &[u8; 8] = b"PIMCOL3\0";
/// Format 2 magic: same layout, but a 64-bit FNV-1a footer.
const V2_MAGIC: &[u8; 8] = b"PIMCOL2\0";
/// Seed-era magic: format 1 snapshots had no version field after the magic.
const LEGACY_MAGIC: &[u8; 8] = b"PIMCOL1\0";
/// Legacy (v3) snapshot format version (the `u32` following the magic).
/// The current columnar format is [`crate::columnar::COLUMNAR_VERSION`].
pub const FORMAT_VERSION: u32 = 3;

/// Snapshot decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Missing/incorrect magic header.
    BadMagic,
    /// Input ended early.
    Truncated,
    /// A CRC mismatch (bit corruption), naming the failing region: a v4
    /// section (`"directory"`, `"meta"`, `"symtab"`, `"docs"`, `"tags"`,
    /// `"vals"`, `"inv"`) or `"body"` for the v3 whole-file footer.
    SnapshotCorrupt {
        /// The section whose integrity check failed.
        section: &'static str,
    },
    /// A string was not valid UTF-8.
    BadString,
    /// A sharded-snapshot manifest violated its format (bad header,
    /// non-contiguous doc ranges, unsafe segment file name, …).
    BadManifest(&'static str),
    /// Arena invariants failed on reconstruction.
    BadArena(&'static str),
    /// A symbol id pointed outside the table.
    BadSymbol,
    /// The snapshot is from a different format version.
    SnapshotVersion {
        /// Version the snapshot declares (1 for seed-era headers, which
        /// carried no explicit version field).
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a PIMENTO collection snapshot"),
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::SnapshotCorrupt { section } => {
                write!(
                    f,
                    "snapshot failed its CRC32 integrity check in section `{section}` (bit corruption)"
                )
            }
            PersistError::BadString => write!(f, "snapshot contains invalid UTF-8"),
            PersistError::BadManifest(why) => {
                write!(f, "sharded snapshot manifest invalid: {why}")
            }
            PersistError::BadArena(why) => write!(f, "snapshot arena invalid: {why}"),
            PersistError::BadSymbol => write!(f, "snapshot references an unknown symbol"),
            PersistError::SnapshotVersion { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (expected {expected}); \
                 re-create the snapshot with this build"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize `coll` into a snapshot buffer.
pub fn save_collection(coll: &Collection) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    let symbols = coll.symbols();
    buf.put_u32_le(symbols.len() as u32);
    for i in 0..symbols.len() as u32 {
        put_str(&mut buf, symbols.name(SymbolId(i)));
    }
    buf.put_u32_le(coll.len() as u32);
    for (_, doc) in coll.iter() {
        put_document(&mut buf, doc);
    }
    let checksum = crc32(&buf);
    buf.put_u32_le(checksum);
    buf.freeze()
}

/// Encode one document's node arena (shared by the v3 body and the v4
/// `docs` section — the per-node record layout is identical).
pub(crate) fn put_document<B: BufMut>(buf: &mut B, doc: &Document) {
    buf.put_u32_le(doc.root().0);
    buf.put_u32_le(doc.len() as u32);
    for node in doc.nodes() {
        match &node.kind {
            NodeKind::Element { tag, attrs } => {
                buf.put_u8(0);
                buf.put_u32_le(tag.0);
                buf.put_u16_le(attrs.len() as u16);
                for (a, v) in attrs.iter() {
                    buf.put_u32_le(a.0);
                    put_str(buf, v);
                }
            }
            NodeKind::Text(t) => {
                buf.put_u8(1);
                put_str(buf, t);
            }
            NodeKind::Comment(c) => {
                buf.put_u8(2);
                put_str(buf, c);
            }
        }
        buf.put_u32_le(node.parent.map(|p| p.0 + 1).unwrap_or(0));
        buf.put_u32_le(node.children.len() as u32);
        for c in &node.children {
            buf.put_u32_le(c.0);
        }
        buf.put_u32_le(node.start);
        buf.put_u32_le(node.end);
        buf.put_u16_le(node.level);
    }
}

/// Decode one document encoded by [`put_document`]. `sym_count` bounds
/// the symbol ids the arena may reference.
pub(crate) fn read_document(buf: &mut &[u8], sym_count: u32) -> Result<Document, PersistError> {
    let check_sym = |id: u32| {
        if id < sym_count {
            Ok(SymbolId(id))
        } else {
            Err(PersistError::BadSymbol)
        }
    };
    let input_len = buf.len();
    let root = NodeId(get_u32(buf)?);
    let n_nodes = get_u32(buf)?;
    let mut nodes = Vec::with_capacity((n_nodes as usize).min(input_len));
    for _ in 0..n_nodes {
        let kind = match get_u8(buf)? {
            0 => {
                let tag = check_sym(get_u32(buf)?)?;
                let n_attrs = get_u16(buf)?;
                let mut attrs = Vec::with_capacity(n_attrs as usize);
                for _ in 0..n_attrs {
                    let a = check_sym(get_u32(buf)?)?;
                    let v = get_str(buf)?;
                    attrs.push((a, v));
                }
                NodeKind::Element {
                    tag,
                    attrs: attrs.into_boxed_slice(),
                }
            }
            1 => NodeKind::Text(get_str(buf)?),
            2 => NodeKind::Comment(get_str(buf)?),
            _ => return Err(PersistError::BadArena("unknown node kind")),
        };
        let parent_raw = get_u32(buf)?;
        let parent = if parent_raw == 0 {
            None
        } else {
            Some(NodeId(parent_raw - 1))
        };
        let n_children = get_u32(buf)?;
        if n_children as usize > input_len {
            return Err(PersistError::Truncated);
        }
        let mut children = Vec::with_capacity(n_children as usize);
        for _ in 0..n_children {
            children.push(NodeId(get_u32(buf)?));
        }
        let start = get_u32(buf)?;
        let end = get_u32(buf)?;
        let level = get_u16(buf)?;
        nodes.push(Node {
            kind,
            parent,
            children,
            start,
            end,
            level,
        });
    }
    Document::from_parts(nodes, root).map_err(PersistError::BadArena)
}

/// Deserialize a snapshot produced by [`save_collection`].
pub fn load_collection(data: &[u8]) -> Result<Collection, PersistError> {
    if data.len() < MAGIC.len() {
        return Err(PersistError::Truncated);
    }
    // Version triage first: older formats carry a different footer layout,
    // so running the v3 CRC over them would mislabel every old snapshot as
    // corrupt instead of naming the real problem.
    if &data[..MAGIC.len()] == LEGACY_MAGIC {
        // Seed-era snapshot: same family, pre-versioning header.
        return Err(PersistError::SnapshotVersion {
            found: 1,
            expected: FORMAT_VERSION,
        });
    }
    if &data[..MAGIC.len()] == V2_MAGIC {
        return Err(PersistError::SnapshotVersion {
            found: 2,
            expected: FORMAT_VERSION,
        });
    }
    if &data[..MAGIC.len()] == crate::columnar::COLUMNAR_MAGIC {
        // A v4 columnar snapshot reached the legacy loader; point the
        // caller at the right open path instead of mislabeling it corrupt.
        return Err(PersistError::SnapshotVersion {
            found: crate::columnar::COLUMNAR_VERSION,
            expected: FORMAT_VERSION,
        });
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    // Integrity next: nothing past this point decodes unverified bytes.
    if data.len() < MAGIC.len() + 4 + 4 {
        return Err(PersistError::Truncated);
    }
    let (body, tail) = data.split_at(data.len() - 4);
    let expected = match <[u8; 4]>::try_from(tail) {
        Ok(bytes) => u32::from_le_bytes(bytes),
        Err(_) => return Err(PersistError::Truncated),
    };
    if crc32(body) != expected {
        return Err(PersistError::SnapshotCorrupt { section: "body" });
    }
    #[cfg(feature = "fault-injection")]
    if pimento_faults::should_fire("index.persist.load") {
        return Err(PersistError::SnapshotCorrupt { section: "body" });
    }
    let mut buf = &body[MAGIC.len()..];
    let version = get_u32(&mut buf)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::SnapshotVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }

    let mut symbols = SymbolTable::new();
    let n_syms = get_u32(&mut buf)?;
    for _ in 0..n_syms {
        let name = get_str(&mut buf)?;
        symbols.intern(&name);
    }
    let sym_count = symbols.len() as u32;

    let mut coll = Collection::new();
    *coll.symbols_mut() = symbols;
    let n_docs = get_u32(&mut buf)?;
    for _ in 0..n_docs {
        let doc = read_document(&mut buf, sym_count)?;
        coll.add_document(doc);
    }
    Ok(coll)
}

pub(crate) fn put_str<B: BufMut>(buf: &mut B, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_u8(buf: &mut &[u8]) -> Result<u8, PersistError> {
    if buf.remaining() < 1 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u8())
}

pub(crate) fn get_u16(buf: &mut &[u8]) -> Result<u16, PersistError> {
    if buf.remaining() < 2 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u16_le())
}

pub(crate) fn get_u32(buf: &mut &[u8]) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32_le())
}

pub(crate) fn get_str(buf: &mut &[u8]) -> Result<String, PersistError> {
    let len = get_u32(buf)? as usize;
    let raw = buf.get(..len).ok_or(PersistError::Truncated)?;
    let s = std::str::from_utf8(raw)
        .map_err(|_| PersistError::BadString)?
        .to_string();
    buf.advance(len);
    Ok(s)
}

/// The 256-entry CRC32 (IEEE 802.3, polynomial `0xEDB88320`) lookup
/// table, built at compile time — no dependency, no runtime init.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) over `data` — the snapshot footer checksum, also reused
/// by the serve layer's durable profile store.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        // The mask keeps the index below the 256-entry table; `.get` lets
        // the optimizer prove it too, with no panic path left behind.
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE.get(idx).copied().unwrap_or(0);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::InvertedIndex;
    use crate::tags::TagIndex;
    use crate::tokenize::Tokenizer;
    use pimento_xml::to_string;

    fn sample() -> Collection {
        let mut c = Collection::new();
        c.add_xml(r#"<dealer><car color="red"><price>500</price><note>good &amp; cheap</note></car></dealer>"#)
            .unwrap();
        c.add_xml("<dealer><car><!--traded--><price>900</price></car></dealer>")
            .unwrap();
        c
    }

    #[test]
    fn roundtrip_preserves_documents() {
        let coll = sample();
        let snapshot = save_collection(&coll);
        let loaded = load_collection(&snapshot).unwrap();
        assert_eq!(loaded.len(), coll.len());
        for ((_, a), (_, b)) in coll.iter().zip(loaded.iter()) {
            assert_eq!(to_string(a, coll.symbols()), to_string(b, loaded.symbols()));
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn roundtrip_preserves_index_behaviour() {
        let coll = sample();
        let loaded = load_collection(&save_collection(&coll)).unwrap();
        let inv_a = InvertedIndex::build(&coll, Tokenizer::plain());
        let inv_b = InvertedIndex::build(&loaded, Tokenizer::plain());
        assert_eq!(inv_a.vocabulary_size(), inv_b.vocabulary_size());
        assert_eq!(inv_a.postings("good").len(), inv_b.postings("good").len());
        let tags_a = TagIndex::build(&coll);
        let tags_b = TagIndex::build(&loaded);
        assert_eq!(
            tags_a.count(coll.tag("car").unwrap()),
            tags_b.count(loaded.tag("car").unwrap())
        );
    }

    #[test]
    fn empty_collection_roundtrips() {
        let coll = Collection::new();
        let loaded = load_collection(&save_collection(&coll)).unwrap();
        assert!(loaded.is_empty());
    }

    /// FNV-1a as the v1/v2 formats used for their footer (test-only: the
    /// fixtures below rebuild old-format snapshots byte for byte).
    fn fnv1a(data: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    #[test]
    fn corruption_is_detected() {
        let coll = sample();
        let snapshot = save_collection(&coll);
        // Flip every single bit position past the magic in turn: each one
        // must surface as the typed corruption error, never as garbage
        // decode output (sampled stride keeps the test fast).
        for pos in (MAGIC.len()..snapshot.len()).step_by(97) {
            let mut bytes = snapshot.to_vec();
            bytes[pos] ^= 0x01;
            assert!(
                matches!(
                    load_collection(&bytes),
                    Err(PersistError::SnapshotCorrupt { .. })
                ),
                "flip at {pos} undetected"
            );
        }
        let mut bytes = snapshot.to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            load_collection(&bytes),
            Err(PersistError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check values (RFC 3720 appendix / zlib `crc32`).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn truncation_is_detected() {
        let coll = sample();
        let snapshot = save_collection(&coll);
        assert!(matches!(
            load_collection(&snapshot[..10]),
            Err(PersistError::Truncated)
        ));
        assert!(matches!(load_collection(&[]), Err(PersistError::Truncated)));
    }

    #[test]
    fn bad_magic_is_detected() {
        let coll = sample();
        let mut bytes = save_collection(&coll).to_vec();
        // Magic triage runs before the integrity check, so no checksum
        // fix-up is needed for this to be a BadMagic (not corruption).
        bytes[0] = b'X';
        assert!(matches!(
            load_collection(&bytes),
            Err(PersistError::BadMagic)
        ));
    }

    /// Rewrite a current snapshot into the seed "PIMCOL1\0" layout (legacy
    /// magic, no version field, FNV-1a u64 footer).
    fn as_seed_format(snapshot: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(snapshot.len());
        bytes.extend_from_slice(b"PIMCOL1\0");
        // Skip the version u32; keep the payload, drop the CRC32 footer.
        bytes.extend_from_slice(&snapshot[12..snapshot.len() - 4]);
        let sum = fnv1a(&bytes).to_le_bytes();
        bytes.extend_from_slice(&sum);
        bytes
    }

    /// Rewrite a current snapshot into the v2 "PIMCOL2\0" layout (version
    /// word 2, FNV-1a u64 footer) — the format the previous release wrote.
    fn as_v2_format(snapshot: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(snapshot.len() + 4);
        bytes.extend_from_slice(b"PIMCOL2\0");
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&snapshot[12..snapshot.len() - 4]);
        let sum = fnv1a(&bytes).to_le_bytes();
        bytes.extend_from_slice(&sum);
        bytes
    }

    #[test]
    fn seed_format_snapshot_is_rejected_with_typed_error() {
        let seed = as_seed_format(&save_collection(&sample()));
        assert!(matches!(
            load_collection(&seed),
            Err(PersistError::SnapshotVersion {
                found: 1,
                expected: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn v2_format_snapshot_is_rejected_with_typed_error() {
        let v2 = as_v2_format(&save_collection(&sample()));
        assert!(matches!(
            load_collection(&v2),
            Err(PersistError::SnapshotVersion {
                found: 2,
                expected: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn future_format_version_is_rejected() {
        let mut bytes = save_collection(&sample()).to_vec();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 4;
        let sum = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            load_collection(&bytes),
            Err(PersistError::SnapshotVersion {
                found: 99,
                expected: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn error_display() {
        assert!(PersistError::SnapshotCorrupt { section: "tags" }
            .to_string()
            .contains("tags"));
        assert!(PersistError::BadArena("why").to_string().contains("why"));
    }
}
