//! Phrase matching: finding occurrences of multi-token phrases and testing
//! `ftcontains(element, "phrase")` against region labels.

use crate::inverted::{InvertedIndex, Posting, PostingsRef};
use crate::store::DocId;
use crate::tags::ElemEntry;

/// One occurrence of a phrase: the posting of its first token.
pub type PhraseHit = Posting;

/// Find all occurrences of `tokens` (already analyzed) in document `doc`:
/// consecutive global token positions.
///
/// Positions are numbered continuously across text nodes, so a phrase may
/// span inline markup (`good <b>condition</b>` matches "good condition") —
/// the behaviour XQuery Full-Text's tokenization prescribes.
pub fn phrase_occurrences(index: &InvertedIndex, doc: DocId, tokens: &[String]) -> Vec<PhraseHit> {
    match tokens {
        [] => Vec::new(),
        [single] => index.doc_postings(single, doc).to_vec(),
        [first, rest @ ..] => {
            let firsts = index.doc_postings(first, doc);
            // Fetch each continuation token's postings once, outside the
            // candidate loop — on a packed index every doc_postings call
            // decodes a varint run, so this turns O(candidates × tokens)
            // decodes into O(tokens).
            let rest_lists: Vec<PostingsRef<'_>> = rest
                .iter()
                .map(|tok| index.doc_postings(tok, doc))
                .collect();
            let mut hits = Vec::new();
            'outer: for p in firsts.iter() {
                for (i, list) in rest_lists.iter().enumerate() {
                    let want = p.pos + 1 + i as u32;
                    if list.binary_search_by_key(&want, |q| q.pos).is_err() {
                        continue 'outer;
                    }
                }
                hits.push(*p);
            }
            hits
        }
    }
}

/// Postings of `token` whose occurrence lies strictly inside `elem`'s
/// region. Labels are monotone in token position (both follow document
/// order), so the region is a binary-searchable slice of the per-document
/// posting list — this is what keeps `ftcontains` probes cheap on large
/// documents.
pub fn postings_in_element<'a>(
    index: &'a InvertedIndex,
    elem: &ElemEntry,
    token: &str,
) -> PostingsRef<'a> {
    let in_doc = index.doc_postings(token, elem.doc);
    debug_assert!(in_doc.is_sorted_by_key(|p| p.label));
    let lo = in_doc.partition_point(|p| p.label <= elem.start);
    let hi = in_doc.partition_point(|p| p.label < elem.end);
    in_doc.sliced(lo, hi)
}

/// Count occurrences of `tokens` strictly inside element `elem`
/// (the `tf` used by scoring).
pub fn count_in_element(index: &InvertedIndex, elem: &ElemEntry, tokens: &[String]) -> u32 {
    occurrences_in_element(index, elem, tokens).len() as u32
}

/// Occurrences of `tokens` strictly inside element `elem`: the first token
/// must fall in `elem`'s region and the rest at the following positions.
pub fn occurrences_in_element(
    index: &InvertedIndex,
    elem: &ElemEntry,
    tokens: &[String],
) -> Vec<PhraseHit> {
    let [first, rest @ ..] = tokens else {
        return Vec::new();
    };
    let firsts = postings_in_element(index, elem, first);
    // One postings fetch per continuation token (not per candidate): on a
    // packed index each fetch decodes a varint run.
    let rest_lists: Vec<PostingsRef<'_>> = rest
        .iter()
        .map(|tok| index.doc_postings(tok, elem.doc))
        .collect();
    let mut hits = Vec::new();
    'outer: for p in firsts.iter() {
        for (i, list) in rest_lists.iter().enumerate() {
            let want = p.pos + 1 + i as u32;
            match list.binary_search_by_key(&want, |q| q.pos) {
                // The continuation must also fall inside the element — a
                // phrase straddling the element boundary is not contained.
                Ok(idx) if list.get(idx).is_some_and(|q| q.label < elem.end) => {}
                _ => continue 'outer,
            }
        }
        hits.push(*p);
    }
    hits
}

/// `ftcontains(elem, phrase)`: does the phrase occur anywhere in `elem`'s
/// subtree (paper §3: "contains an occurrence of the keyword at any
/// document depth")?
pub fn ft_contains(index: &InvertedIndex, elem: &ElemEntry, tokens: &[String]) -> bool {
    match tokens {
        [] => false,
        [single] => !postings_in_element(index, elem, single).is_empty(),
        _ => !occurrences_in_element(index, elem, tokens).is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Collection;
    use crate::tags::TagIndex;
    use crate::tokenize::Tokenizer;

    fn setup(xml: &str) -> (Collection, InvertedIndex, TagIndex) {
        let mut c = Collection::new();
        c.add_xml(xml).unwrap();
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        (c, inv, tags)
    }

    fn toks(index: &InvertedIndex, s: &str) -> Vec<String> {
        index.analyze(s)
    }

    #[test]
    fn single_token_occurrences() {
        let (_, inv, _) = setup("<a>good car good</a>");
        let hits = phrase_occurrences(&inv, DocId(0), &toks(&inv, "good"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn phrase_requires_adjacency() {
        let (_, inv, _) = setup("<a>good condition and good old condition</a>");
        assert_eq!(
            phrase_occurrences(&inv, DocId(0), &toks(&inv, "good condition")).len(),
            1
        );
        assert!(phrase_occurrences(&inv, DocId(0), &toks(&inv, "condition good")).is_empty());
    }

    #[test]
    fn three_token_phrase() {
        let (_, inv, _) = setup("<a>it is in good condition as always</a>");
        assert_eq!(
            phrase_occurrences(&inv, DocId(0), &toks(&inv, "in good condition")).len(),
            1
        );
    }

    #[test]
    fn ft_contains_respects_element_boundaries() {
        let (c, inv, tags) = setup(
            "<dealer><car><description>good condition</description></car><car><description>low mileage</description></car></dealer>",
        );
        let car = c.tag("car").unwrap();
        let cars = tags.elements(car);
        let good = toks(&inv, "good condition");
        assert!(ft_contains(&inv, &cars.at(0), &good));
        assert!(!ft_contains(&inv, &cars.at(1), &good));
        let low = toks(&inv, "low mileage");
        assert!(!ft_contains(&inv, &cars.at(0), &low));
        assert!(ft_contains(&inv, &cars.at(1), &low));
    }

    #[test]
    fn count_in_element_counts_tf() {
        let (c, inv, tags) = setup("<a><b>red red red</b><c>red</c></a>");
        let b = c.tag("b").unwrap();
        let elem = tags.elements(b).at(0);
        assert_eq!(count_in_element(&inv, &elem, &toks(&inv, "red")), 3);
        let a = c.tag("a").unwrap();
        assert_eq!(
            count_in_element(&inv, &tags.elements(a).at(0), &toks(&inv, "red")),
            4
        );
    }

    #[test]
    fn phrase_does_not_cross_text_node_boundary_with_markup() {
        let (c, inv, tags) = setup("<a><b>good</b><b>condition</b></a>");
        let a = c.tag("a").unwrap();
        let elem = tags.elements(a).at(0);
        // positions are adjacent globally (0,1) so this matches: markup
        // between text runs does not break adjacency in our encoding.
        assert!(ft_contains(&inv, &elem, &toks(&inv, "good condition")));
    }

    #[test]
    fn empty_phrase_never_matches() {
        let (c, inv, tags) = setup("<a>x</a>");
        let a = c.tag("a").unwrap();
        assert!(!ft_contains(&inv, &tags.elements(a).at(0), &[]));
    }

    #[test]
    fn case_insensitive_matching() {
        let (c, inv, tags) = setup("<a>United States</a>");
        let a = c.tag("a").unwrap();
        assert!(ft_contains(
            &inv,
            &tags.elements(a).at(0),
            &toks(&inv, "united states")
        ));
        assert!(ft_contains(
            &inv,
            &tags.elements(a).at(0),
            &toks(&inv, "UNITED STATES")
        ));
    }
}

/// `ftall(elem, terms [window w] [ordered])`: one occurrence of **every**
/// term inside `elem`, optionally all within a token window, optionally in
/// the listed order — the proximity/order full-text predicates of XQuery
/// Full-Text (each `terms[i]` is an analyzed token sequence; multi-token
/// terms are matched as phrases).
pub fn ft_all(
    index: &InvertedIndex,
    elem: &ElemEntry,
    terms: &[Vec<String>],
    window: Option<u32>,
    ordered: bool,
) -> bool {
    if terms.is_empty() {
        return false;
    }
    // Occurrences per term: (start position, end position) pairs.
    let mut occs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(terms.len());
    for t in terms {
        if t.is_empty() {
            return false;
        }
        let hits = occurrences_in_element(index, elem, t);
        if hits.is_empty() {
            return false;
        }
        occs.push(
            hits.iter()
                .map(|p| (p.pos, p.pos + t.len() as u32 - 1))
                .collect(),
        );
    }
    match (window, ordered) {
        (None, false) => true,
        (w, true) => ordered_chain_within(&occs, w),
        (Some(w), false) => unordered_cover_within(&occs, w),
    }
}

/// Is there an in-order chain (term i+1 starts after term i ends) whose
/// total span fits the window (if any)?
fn ordered_chain_within(occs: &[Vec<(u32, u32)>], window: Option<u32>) -> bool {
    // Greedy from each start of the first term: taking the earliest valid
    // continuation minimizes the chain end, so greedy is optimal per start.
    // (`ft_all` never passes an empty term list.)
    let Some((first, rest)) = occs.split_first() else {
        return false;
    };
    'starts: for &(start, mut prev_end) in first {
        for term in rest {
            match term.iter().find(|&&(s, _)| s > prev_end) {
                Some(&(_, e)) => prev_end = e,
                None => continue 'starts,
            }
        }
        let span = prev_end - start + 1;
        if window.is_none_or(|w| span <= w) {
            return true;
        }
    }
    false
}

/// Is there a token window of size `w` containing one occurrence of every
/// term (any order)?
fn unordered_cover_within(occs: &[Vec<(u32, u32)>], w: u32) -> bool {
    // Occurrence counts inside one element are small: try every choice of
    // "leftmost" occurrence and greedily check the others fit the window.
    let starts: Vec<(u32, u32)> = occs.iter().flatten().copied().collect();
    for &(left, _) in &starts {
        let fits = occs
            .iter()
            .all(|term| term.iter().any(|&(s, e)| s >= left && e < left + w));
        if fits {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod ft_all_tests {
    use super::*;
    use crate::store::Collection;
    use crate::tags::TagIndex;
    use crate::tokenize::Tokenizer;

    fn setup(xml: &str) -> (Collection, InvertedIndex, TagIndex) {
        let mut c = Collection::new();
        c.add_xml(xml).unwrap();
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        (c, inv, tags)
    }

    fn terms(inv: &InvertedIndex, ts: &[&str]) -> Vec<Vec<String>> {
        ts.iter().map(|t| inv.analyze(t)).collect()
    }

    fn elem(c: &Collection, tags: &TagIndex, tag: &str) -> ElemEntry {
        tags.elements(c.tag(tag).unwrap()).at(0)
    }

    #[test]
    fn all_terms_must_occur() {
        let (c, inv, tags) = setup("<a>good cheap car</a>");
        let e = elem(&c, &tags, "a");
        assert!(ft_all(
            &inv,
            &e,
            &terms(&inv, &["good", "car"]),
            None,
            false
        ));
        assert!(!ft_all(
            &inv,
            &e,
            &terms(&inv, &["good", "bike"]),
            None,
            false
        ));
        assert!(!ft_all(&inv, &e, &[], None, false));
    }

    #[test]
    fn window_constrains_span() {
        // positions: the(0) good(1) old(2) reliable(3) cheap(4)
        let (c, inv, tags) = setup("<a>the good old reliable cheap</a>");
        let e = elem(&c, &tags, "a");
        let ts = terms(&inv, &["good", "cheap"]);
        assert!(ft_all(&inv, &e, &ts, Some(4), false));
        assert!(!ft_all(&inv, &e, &ts, Some(3), false));
        assert!(ft_all(&inv, &e, &ts, None, false));
    }

    #[test]
    fn ordered_requires_listed_order() {
        let (c, inv, tags) = setup("<a>cheap but good</a>");
        let e = elem(&c, &tags, "a");
        assert!(ft_all(
            &inv,
            &e,
            &terms(&inv, &["cheap", "good"]),
            None,
            true
        ));
        assert!(!ft_all(
            &inv,
            &e,
            &terms(&inv, &["good", "cheap"]),
            None,
            true
        ));
        assert!(ft_all(
            &inv,
            &e,
            &terms(&inv, &["good", "cheap"]),
            None,
            false
        ));
    }

    #[test]
    fn ordered_with_window() {
        // cheap(0) stuff(1) ... good(5)
        let (c, inv, tags) = setup("<a>cheap stuff that is not good</a>");
        let e = elem(&c, &tags, "a");
        let ts = terms(&inv, &["cheap", "good"]);
        assert!(ft_all(&inv, &e, &ts, Some(6), true));
        assert!(!ft_all(&inv, &e, &ts, Some(5), true));
    }

    #[test]
    fn multi_token_terms_match_as_phrases() {
        let (c, inv, tags) = setup("<a>good condition and low mileage</a>");
        let e = elem(&c, &tags, "a");
        let ts = terms(&inv, &["good condition", "low mileage"]);
        assert!(ft_all(&inv, &e, &ts, Some(5), true));
        assert!(!ft_all(&inv, &e, &ts, Some(4), true));
        // "condition good" is not a phrase occurrence
        assert!(!ft_all(
            &inv,
            &e,
            &terms(&inv, &["condition good"]),
            None,
            false
        ));
    }

    #[test]
    fn respects_element_boundaries() {
        let (c, inv, tags) = setup("<r><a>good</a><b>cheap</b></r>");
        let a = elem(&c, &tags, "a");
        assert!(!ft_all(
            &inv,
            &a,
            &terms(&inv, &["good", "cheap"]),
            None,
            false
        ));
        let r = elem(&c, &tags, "r");
        assert!(ft_all(
            &inv,
            &r,
            &terms(&inv, &["good", "cheap"]),
            None,
            false
        ));
    }

    #[test]
    fn overlapping_occurrences_need_strict_ordering() {
        // "good good": ordered chain of [good, good] exists (two distinct
        // occurrences).
        let (c, inv, tags) = setup("<a>good good</a>");
        let e = elem(&c, &tags, "a");
        let ts = terms(&inv, &["good", "good"]);
        assert!(ft_all(&inv, &e, &ts, Some(2), true));
        // But a single occurrence cannot chain with itself.
        let (c2, inv2, tags2) = setup("<a>good</a>");
        let e2 = elem(&c2, &tags2, "a");
        assert!(!ft_all(
            &inv2,
            &e2,
            &terms(&inv2, &["good", "good"]),
            None,
            true
        ));
    }
}
