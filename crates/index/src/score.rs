//! Relevance scoring for keyword predicates.
//!
//! Every `ftcontains` predicate (and every keyword-based ordering rule)
//! contributes a score in **[0, 1]**. Normalizing per-predicate keeps the
//! paper's score bounds *exact*: `query_scorebound` / `kor_scorebound` are
//! simply the number of predicates (times their weights) remaining in the
//! plan suffix, which is what makes the `topkPrune` conditions safe (§6.3).

use crate::inverted::InvertedIndex;
use crate::phrase::count_in_element;
use crate::tags::ElemEntry;
use std::collections::HashMap;
use std::sync::Arc;

/// Scores keyword predicates against elements.
///
/// In the monolithic case the scorer reads document frequencies straight
/// from the index it was built over. A doc-range segment of a sharded
/// engine instead carries the *corpus-wide* statistics (total document
/// count plus a summed per-token document-frequency table), so segment
/// scores are bit-identical to what the monolithic scan would compute —
/// `idf` inputs are exact integer sums over the partition.
#[derive(Debug, Clone)]
pub struct Scorer {
    /// Total number of documents, cached from the index (or, for a
    /// segment of a sharded engine, the corpus-wide total).
    num_docs: u32,
    /// `tf` saturation constant: score grows as `tf / (tf + k1)`.
    k1: f64,
    /// Corpus-wide per-token document frequencies; `None` means "read
    /// them from the index at hand" (the monolithic case).
    global_df: Option<Arc<HashMap<String, u32>>>,
}

impl Scorer {
    /// Default saturation constant; 1.0 gives 0.5 at a single occurrence.
    pub const DEFAULT_K1: f64 = 1.0;

    /// Build a scorer over `index`.
    pub fn new(index: &InvertedIndex) -> Self {
        Scorer {
            num_docs: index.num_docs().max(1),
            k1: Self::DEFAULT_K1,
            global_df: None,
        }
    }

    /// Build a scorer that scores against corpus-wide statistics instead
    /// of the local index: `num_docs` is the total document count across
    /// every segment and `df` maps each token to its summed document
    /// frequency. Used by doc-range segments so sharded scoring matches
    /// the monolithic scan bit for bit.
    pub fn with_corpus_stats(num_docs: u32, df: Arc<HashMap<String, u32>>) -> Self {
        Scorer {
            num_docs: num_docs.max(1),
            k1: Self::DEFAULT_K1,
            global_df: Some(df),
        }
    }

    /// Override the saturation constant (must be positive).
    pub fn with_k1(mut self, k1: f64) -> Self {
        assert!(k1 > 0.0, "saturation constant must be positive");
        self.k1 = k1;
        self
    }

    /// Normalized inverse document frequency in (0, 1].
    ///
    /// A phrase's rarity is the rarity of its rarest token. Unseen tokens
    /// get full weight (they are maximally selective).
    pub fn nidf(&self, index: &InvertedIndex, tokens: &[String]) -> f64 {
        let n = self.num_docs as f64;
        let max_idf = (1.0 + n).ln();
        let df = tokens
            .iter()
            .map(|t| self.doc_freq(index, t))
            .max()
            .unwrap_or(0) as f64;
        let idf = (1.0 + n / (df + 1.0)).ln();
        (idf / max_idf).clamp(0.0, 1.0)
    }

    /// Document frequency of one token: corpus-wide when the scorer
    /// carries global statistics, otherwise from the local index.
    fn doc_freq(&self, index: &InvertedIndex, token: &str) -> u32 {
        match &self.global_df {
            Some(df) => df.get(token).copied().unwrap_or(0),
            None => index.doc_freq(token),
        }
    }

    /// Saturating term-frequency component in [0, 1).
    pub fn tf_component(&self, tf: u32) -> f64 {
        let tf = tf as f64;
        tf / (tf + self.k1)
    }

    /// Score `ftcontains(elem, tokens)`: 0.0 when absent, otherwise
    /// `tf/(tf+k1) * nidf` — always within [0, 1).
    pub fn ft_score(&self, index: &InvertedIndex, elem: &ElemEntry, tokens: &[String]) -> f64 {
        let tf = count_in_element(index, elem, tokens);
        if tf == 0 {
            return 0.0;
        }
        self.tf_component(tf) * self.nidf(index, tokens)
    }

    /// The exact maximum any single predicate can contribute.
    pub const MAX_PREDICATE_SCORE: f64 = 1.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Collection;
    use crate::tags::TagIndex;
    use crate::tokenize::Tokenizer;

    fn setup(xmls: &[&str]) -> (Collection, InvertedIndex, TagIndex, Scorer) {
        let mut c = Collection::new();
        for x in xmls {
            c.add_xml(x).unwrap();
        }
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        let s = Scorer::new(&inv);
        (c, inv, tags, s)
    }

    #[test]
    fn absent_phrase_scores_zero() {
        let (c, inv, tags, s) = setup(&["<a>hello world</a>"]);
        let a = c.tag("a").unwrap();
        assert_eq!(
            s.ft_score(&inv, &tags.elements(a).at(0), &inv.analyze("absent")),
            0.0
        );
    }

    #[test]
    fn score_increases_with_tf_but_saturates_below_one() {
        let (c, inv, tags, s) = setup(&["<a><b>red</b><c>red red red red</c></a>"]);
        let b = c.tag("b").unwrap();
        let cc = c.tag("c").unwrap();
        let kw = inv.analyze("red");
        let s_b = s.ft_score(&inv, &tags.elements(b).at(0), &kw);
        let s_c = s.ft_score(&inv, &tags.elements(cc).at(0), &kw);
        assert!(s_b > 0.0);
        assert!(s_c > s_b);
        assert!(s_c < Scorer::MAX_PREDICATE_SCORE);
    }

    #[test]
    fn rarer_terms_score_higher() {
        let (c, inv, tags, s) = setup(&[
            "<a>common rare</a>",
            "<a>common</a>",
            "<a>common</a>",
            "<a>common</a>",
        ]);
        let a = c.tag("a").unwrap();
        let first = &tags.elements(a).at(0);
        let rare = s.ft_score(&inv, first, &inv.analyze("rare"));
        let common = s.ft_score(&inv, first, &inv.analyze("common"));
        assert!(rare > common, "rare={rare} common={common}");
    }

    #[test]
    fn nidf_within_unit_interval() {
        let (_, inv, _, s) = setup(&["<a>x y z</a>", "<a>x</a>"]);
        for kw in ["x", "y", "never-seen"] {
            let v = s.nidf(&inv, &inv.analyze(kw));
            assert!((0.0..=1.0).contains(&v), "{kw}: {v}");
        }
    }

    #[test]
    fn k1_controls_saturation() {
        let (c, inv, tags, _) = setup(&["<a>red red</a>"]);
        let a = c.tag("a").unwrap();
        let e = &tags.elements(a).at(0);
        let kw = inv.analyze("red");
        let fast = Scorer::new(&inv).with_k1(0.1).ft_score(&inv, e, &kw);
        let slow = Scorer::new(&inv).with_k1(10.0).ft_score(&inv, e, &kw);
        assert!(fast > slow);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k1_rejected() {
        let (_, inv, _, _) = setup(&["<a>x</a>"]);
        let _ = Scorer::new(&inv).with_k1(0.0);
    }

    /// A corpus-stats scorer fed the index's own totals must reproduce the
    /// local scorer bit for bit — the sharded-engine identity in miniature.
    #[test]
    fn corpus_stats_scorer_matches_local() {
        let (_, inv, _, local) = setup(&["<a>x y</a>", "<a>x</a>", "<a>z z</a>"]);
        let df: HashMap<String, u32> = inv.token_doc_freqs().into_iter().collect();
        let global = Scorer::with_corpus_stats(inv.num_docs(), Arc::new(df));
        for kw in ["x", "y", "z", "never-seen"] {
            let tokens = inv.analyze(kw);
            assert_eq!(
                local.nidf(&inv, &tokens).to_bits(),
                global.nidf(&inv, &tokens).to_bits(),
                "{kw}"
            );
        }
    }
}
