//! Sharded-corpus building blocks: doc-range splitting, corpus-wide
//! statistics aggregation, and the sharded-snapshot manifest.
//!
//! A sharded engine slices its collection into contiguous document
//! ranges ("segments"), each indexed independently. Three invariants make
//! the per-segment scans recombine bit-identically with the monolithic
//! scan (DESIGN.md §15):
//!
//! 1. **Ranges partition the corpus** — [`split_ranges`] yields contiguous,
//!    disjoint, covering ranges, so a global doc id maps to exactly one
//!    segment and `global = segment base + local`.
//! 2. **Symbol ids are corpus-global** — every segment carries a full copy
//!    of the corpus symbol table ([`crate::Collection::subset`]), so one
//!    compiled plan is valid against every segment.
//! 3. **Scoring statistics are corpus-global** — [`global_doc_freqs`] sums
//!    exact per-token document counts across segments; a
//!    [`crate::Scorer::with_corpus_stats`] scorer then feeds `idf` the same
//!    integers the monolithic index would.
//!
//! On disk, a sharded snapshot is a directory: one v4 columnar file per
//! segment plus a [`ShardManifest`] listing each file with its doc-id
//! base, decoded by [`ShardManifest::parse`] (a `panic-path` lint root —
//! malformed manifests surface as [`PersistError`], never a panic).

use crate::inverted::InvertedIndex;
use crate::persist::PersistError;
use std::collections::HashMap;
use std::ops::Range;

/// File name of the manifest inside a sharded snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Header line identifying a v1 sharded-snapshot manifest.
pub const MANIFEST_HEADER: &str = "pimento-shards v1";

/// Header line identifying a v2 manifest: adds a corpus `generation`
/// line and optional per-segment tombstone sidecar files (the live
/// ingest write path, DESIGN.md §16).
pub const MANIFEST_HEADER_V2: &str = "pimento-shards v2";

/// Split `num_docs` documents into at most `shards` contiguous, disjoint,
/// covering ranges of near-equal size (the first `num_docs % shards`
/// ranges get one extra document). Fewer documents than shards yields one
/// singleton range per document; `shards == 0` is treated as 1. Empty
/// ranges are never produced (an empty corpus yields no ranges).
pub fn split_ranges(num_docs: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(num_docs.max(1));
    if num_docs == 0 {
        return Vec::new();
    }
    let base = num_docs / shards;
    let extra = num_docs % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Sum per-token document frequencies across segment indexes. Because the
/// segments partition the corpus, each document is counted exactly once
/// and the sums equal the monolithic index's `doc_freq` for every token.
pub fn global_doc_freqs(indexes: &[&InvertedIndex]) -> HashMap<String, u32> {
    let mut df = HashMap::new();
    for index in indexes {
        for (token, freq) in index.token_doc_freqs() {
            *df.entry(token).or_insert(0) += freq;
        }
    }
    df
}

/// One segment entry in a [`ShardManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Segment file name, relative to the snapshot directory. Plain file
    /// names only — no path separators.
    pub file: String,
    /// Global doc id of the segment's first document.
    pub doc_base: u32,
    /// Number of documents in the segment.
    pub docs: u32,
    /// Tombstone sidecar file name (v2 manifests), when the segment has
    /// deleted documents.
    pub tombstones: Option<String>,
}

/// The manifest of a sharded snapshot directory: the segment files in
/// doc-range order, with their doc-id bases and counts, plus (v2) the
/// corpus generation the directory captures.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardManifest {
    /// Segments in doc-range order (`doc_base` strictly increasing from 0,
    /// ranges contiguous).
    pub segments: Vec<ManifestEntry>,
    /// Corpus generation at the time the manifest was written (0 for v1
    /// manifests, which predate the generation protocol).
    pub generation: u64,
}

/// Reject file names that could escape the snapshot directory or
/// collide with the manifest itself.
fn check_file_name(file: &str) -> Result<(), PersistError> {
    if file.contains('/') || file.contains('\\') || file == ".." || file == MANIFEST_FILE {
        return Err(PersistError::BadManifest("unsafe segment file name"));
    }
    Ok(())
}

impl ShardManifest {
    /// Canonical file name for segment `i` of a sharded snapshot.
    pub fn segment_file_name(i: usize) -> String {
        format!("segment-{i:03}.v4.snap")
    }

    /// Canonical file name for a delta segment published at `generation`
    /// (delta files are generation-stamped so a compaction can never
    /// reuse a live file name).
    pub fn delta_file_name(generation: u64) -> String {
        format!("delta-{generation:06}.v4.snap")
    }

    /// Canonical file name for segment `i` of the corpus persisted at
    /// `generation` (compactions use these so a new layout never
    /// overwrites a file the previous manifest still references).
    pub fn generation_file_name(generation: u64, i: usize) -> String {
        format!("segment-g{generation:06}-{i:03}.v4.snap")
    }

    /// Canonical tombstone sidecar name for segment file `file` as of
    /// `generation`. Sidecars are generation-stamped so publishing new
    /// deletes never rewrites a file an older manifest references: a
    /// crash between sidecar write and manifest rename leaves the old
    /// generation exactly as it was published.
    pub fn tombstone_file_name(file: &str, generation: u64) -> String {
        format!("{file}.g{generation:06}.tomb")
    }

    /// Render the manifest text. A manifest with generation 0 and no
    /// tombstones renders in the v1 format (one `<file> <doc_base>
    /// <docs>` line per segment) for back-compatibility; otherwise the
    /// v2 format adds a `generation <n>` line, an optional fourth
    /// per-segment field naming the tombstone sidecar, and a final
    /// `crc <hex>` trailer over everything above it — without the
    /// trailer a torn (prefix-truncated) manifest could parse as a
    /// valid manifest with fewer segments, which is exactly the silent
    /// third state the crash harness exists to rule out.
    pub fn render(&self) -> String {
        let v2 = self.generation > 0 || self.segments.iter().any(|s| s.tombstones.is_some());
        let mut out = String::from(if v2 { MANIFEST_HEADER_V2 } else { MANIFEST_HEADER });
        out.push('\n');
        if v2 {
            out.push_str(&format!("generation {}\n", self.generation));
        }
        for seg in &self.segments {
            out.push_str(&format!("{} {} {}", seg.file, seg.doc_base, seg.docs));
            if let Some(t) = &seg.tombstones {
                out.push_str(&format!(" {t}"));
            }
            out.push('\n');
        }
        if v2 {
            let crc = crate::persist::crc32(out.as_bytes());
            out.push_str(&format!("crc {crc:08x}\n"));
        }
        out
    }

    /// Parse and validate manifest text (v1 or v2). Beyond the line
    /// grammar this checks the structural invariants the scatter-gather
    /// executor relies on: at least one segment, doc ranges contiguous
    /// from 0 (so no duplicate or overlapping ranges can slip through),
    /// every segment non-empty, no file listed twice, and file names
    /// free of path separators (a manifest must not escape its own
    /// directory).
    pub fn parse(text: &str) -> Result<ShardManifest, PersistError> {
        // A v2 manifest must end with a `crc <hex>` trailer covering
        // everything above it. Verify (and strip) it before the line
        // grammar: a torn prefix that cuts cleanly at a line boundary
        // would otherwise parse as a valid, smaller manifest.
        let mut body = text;
        if text.lines().next().map(str::trim) == Some(MANIFEST_HEADER_V2) {
            let trimmed = text.trim_end();
            let covered_len = trimmed
                .rfind('\n')
                .map(|i| i + 1)
                .ok_or(PersistError::BadManifest("missing crc trailer"))?;
            let stored = trimmed
                .get(covered_len..)
                .map(str::trim)
                .and_then(|l| l.strip_prefix("crc "))
                .and_then(|v| u32::from_str_radix(v.trim(), 16).ok())
                .ok_or(PersistError::BadManifest("missing crc trailer"))?;
            let covered = text
                .get(..covered_len)
                .ok_or(PersistError::BadManifest("missing crc trailer"))?;
            if crate::persist::crc32(covered.as_bytes()) != stored {
                return Err(PersistError::BadManifest("manifest checksum mismatch"));
            }
            body = covered;
        }
        let mut lines = body.lines().peekable();
        let header = lines.next().map(str::trim);
        let v2 = match header {
            Some(h) if h == MANIFEST_HEADER => false,
            Some(h) if h == MANIFEST_HEADER_V2 => true,
            _ => return Err(PersistError::BadManifest("missing header")),
        };
        let mut generation = 0u64;
        if v2 {
            generation = lines
                .next()
                .map(str::trim)
                .and_then(|l| l.strip_prefix("generation "))
                .and_then(|v| v.trim().parse().ok())
                .ok_or(PersistError::BadManifest("missing generation line"))?;
        }
        let mut segments: Vec<ManifestEntry> = Vec::new();
        let mut next_base = 0u32;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let file = fields
                .next()
                .ok_or(PersistError::BadManifest("missing file name"))?;
            let doc_base: u32 = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(PersistError::BadManifest("bad doc base"))?;
            let docs: u32 = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(PersistError::BadManifest("bad doc count"))?;
            let tombstones = match fields.next() {
                Some(t) if v2 => {
                    check_file_name(t)?;
                    Some(t.to_string())
                }
                Some(_) => return Err(PersistError::BadManifest("trailing fields")),
                None => None,
            };
            if fields.next().is_some() {
                return Err(PersistError::BadManifest("trailing fields"));
            }
            check_file_name(file)?;
            let dup = segments.iter().any(|s| {
                s.file == file
                    || s.tombstones.as_deref() == Some(file)
                    || tombstones
                        .as_deref()
                        .is_some_and(|t| t == s.file || Some(t) == s.tombstones.as_deref())
            });
            if dup || tombstones.as_deref() == Some(file) {
                return Err(PersistError::BadManifest("duplicate file in manifest"));
            }
            if doc_base != next_base {
                return Err(PersistError::BadManifest(
                    "doc ranges overlap or are not contiguous",
                ));
            }
            if docs == 0 {
                return Err(PersistError::BadManifest("empty segment"));
            }
            next_base = doc_base
                .checked_add(docs)
                .ok_or(PersistError::BadManifest("doc range overflows u32"))?;
            segments.push(ManifestEntry {
                file: file.to_string(),
                doc_base,
                docs,
                tombstones,
            });
        }
        if segments.is_empty() {
            return Err(PersistError::BadManifest("no segments"));
        }
        Ok(ShardManifest {
            segments,
            generation,
        })
    }

    /// Total documents across all segments (deleted documents included —
    /// tombstones hide documents, they do not renumber them).
    pub fn num_docs(&self) -> u32 {
        self.segments.last().map(|s| s.doc_base + s.docs).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Collection;
    use crate::tokenize::Tokenizer;
    use proptest::prelude::*;

    #[test]
    fn split_ranges_partition_the_corpus() {
        for (docs, shards) in [(10, 4), (4, 4), (3, 8), (1, 1), (100, 7)] {
            let ranges = split_ranges(docs, shards);
            assert!(ranges.len() <= shards.max(1));
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "{docs}/{shards}");
            }
            assert_eq!(ranges.last().map(|r| r.end), Some(docs));
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        assert!(split_ranges(0, 4).is_empty());
        assert_eq!(split_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn global_doc_freqs_sum_to_monolithic() {
        let xmls = [
            "<a>x y</a>",
            "<a>x</a>",
            "<a>y z</a>",
            "<a>z z z</a>",
            "<a>q</a>",
        ];
        let mut full = Collection::new();
        for x in &xmls {
            full.add_xml(x).unwrap();
        }
        let mono = InvertedIndex::build(&full, Tokenizer::plain());
        let head = full.subset(0..2);
        let tail = full.subset(2..5);
        let ih = InvertedIndex::build(&head, Tokenizer::plain());
        let it = InvertedIndex::build(&tail, Tokenizer::plain());
        let df = global_doc_freqs(&[&ih, &it]);
        for (token, freq) in mono.token_doc_freqs() {
            assert_eq!(df.get(&token).copied(), Some(freq), "{token}");
        }
        assert_eq!(df.len(), mono.vocabulary_size());
    }

    #[test]
    fn manifest_roundtrip() {
        let m = ShardManifest {
            segments: vec![
                ManifestEntry {
                    file: ShardManifest::segment_file_name(0),
                    doc_base: 0,
                    docs: 3,
                    tombstones: None,
                },
                ManifestEntry {
                    file: ShardManifest::segment_file_name(1),
                    doc_base: 3,
                    docs: 2,
                    tombstones: None,
                },
            ],
            generation: 0,
        };
        assert!(m.render().starts_with(MANIFEST_HEADER), "v1 back-compat");
        let back = ShardManifest::parse(&m.render()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.num_docs(), 5);
        assert_eq!(back.generation, 0);
    }

    #[test]
    fn manifest_v2_roundtrip_with_generation_and_tombstones() {
        let seg0 = ShardManifest::segment_file_name(0);
        let m = ShardManifest {
            segments: vec![
                ManifestEntry {
                    tombstones: Some(ShardManifest::tombstone_file_name(&seg0, 7)),
                    file: seg0,
                    doc_base: 0,
                    docs: 3,
                },
                ManifestEntry {
                    file: ShardManifest::delta_file_name(7),
                    doc_base: 3,
                    docs: 2,
                    tombstones: None,
                },
            ],
            generation: 7,
        };
        let text = m.render();
        assert!(text.starts_with(MANIFEST_HEADER_V2), "{text}");
        assert!(text.contains("generation 7"), "{text}");
        let back = ShardManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.generation, 7);
        assert_eq!(back.num_docs(), 5);
    }

    #[test]
    fn malformed_manifests_rejected() {
        let bad = [
            "",
            "not-a-manifest\nsegment-000.v4.snap 0 3\n",
            "pimento-shards v1\n",
            "pimento-shards v1\nseg.snap zero 3\n",
            "pimento-shards v1\nseg.snap 0 none\n",
            "pimento-shards v1\nseg.snap 0 3 extra\n",
            "pimento-shards v1\nseg.snap 1 3\n",
            "pimento-shards v1\na.snap 0 3\nb.snap 5 1\n",
            "pimento-shards v1\nseg.snap 0 0\n",
            "pimento-shards v1\n../evil.snap 0 3\n",
            "pimento-shards v1\nsub/evil.snap 0 3\n",
            "pimento-shards v1\nMANIFEST 0 3\n",
            "pimento-shards v2\na.snap 0 3\n",
            "pimento-shards v2\ngeneration x\na.snap 0 3\n",
            "pimento-shards v2\ngeneration 1\na.snap 0 3 ../t\n",
            "pimento-shards v2\ngeneration 1\na.snap 0 3 t extra\n",
        ];
        for text in bad {
            let texts = [text.to_string(), with_crc(text)];
            for text in &texts {
                assert!(
                    matches!(
                        ShardManifest::parse(text),
                        Err(PersistError::BadManifest(_))
                    ),
                    "{text:?}"
                );
            }
        }
    }

    /// Append the v2 `crc` trailer to hand-written manifest text.
    fn with_crc(body: &str) -> String {
        format!("{body}crc {:08x}\n", crate::persist::crc32(body.as_bytes()))
    }

    #[test]
    fn v2_manifest_without_or_with_wrong_crc_rejected() {
        let good = with_crc("pimento-shards v2\ngeneration 1\na.snap 0 3\n");
        assert!(ShardManifest::parse(&good).is_ok());
        // Missing trailer (a torn prefix at a line boundary).
        assert!(matches!(
            ShardManifest::parse("pimento-shards v2\ngeneration 1\na.snap 0 3\n"),
            Err(PersistError::BadManifest("missing crc trailer"))
        ));
        // A torn prefix that keeps the trailer-less body plus garbage.
        let bad = good.replace("a.snap 0 3", "a.snap 0 4");
        assert!(matches!(
            ShardManifest::parse(&bad),
            Err(PersistError::BadManifest("manifest checksum mismatch"))
        ));
        // Every line-boundary prefix of a valid v2 manifest is rejected.
        for (i, _) in good.char_indices().filter(|(_, c)| *c == '\n') {
            let prefix = &good[..=i];
            if prefix.len() < good.len() {
                assert!(ShardManifest::parse(prefix).is_err(), "prefix {i} accepted");
            }
        }
    }

    #[test]
    fn duplicate_and_overlapping_entries_rejected() {
        // Same file listed twice (ranges contiguous, so only the
        // duplicate-file check can catch it).
        let dup = "pimento-shards v1\na.snap 0 3\na.snap 3 2\n";
        assert!(matches!(
            ShardManifest::parse(dup),
            Err(PersistError::BadManifest("duplicate file in manifest"))
        ));
        // A tombstone sidecar colliding with a segment file.
        let collide = with_crc("pimento-shards v2\ngeneration 1\na.snap 0 3\nb.snap 3 2 a.snap\n");
        assert!(matches!(
            ShardManifest::parse(&collide),
            Err(PersistError::BadManifest("duplicate file in manifest"))
        ));
        // A segment naming itself as its tombstone sidecar.
        let self_ref = with_crc("pimento-shards v2\ngeneration 1\na.snap 0 3 a.snap\n");
        assert!(matches!(
            ShardManifest::parse(&self_ref),
            Err(PersistError::BadManifest("duplicate file in manifest"))
        ));
        // Overlapping ranges: second segment starts inside the first.
        let overlap = "pimento-shards v1\na.snap 0 3\nb.snap 2 2\n";
        assert!(matches!(
            ShardManifest::parse(overlap),
            Err(PersistError::BadManifest(
                "doc ranges overlap or are not contiguous"
            ))
        ));
        // Duplicate range: both segments claim base 0.
        let same = "pimento-shards v1\na.snap 0 3\nb.snap 0 3\n";
        assert!(ShardManifest::parse(same).is_err());
    }

    proptest! {
        /// Any (num_docs, shards) pair yields contiguous disjoint covering
        /// non-empty ranges.
        #[test]
        fn split_ranges_always_partition(num_docs in 0usize..500, shards in 0usize..32) {
            let ranges = split_ranges(num_docs, shards);
            let mut cursor = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end > r.start);
                cursor = r.end;
            }
            prop_assert_eq!(cursor, num_docs);
        }
    }
}
