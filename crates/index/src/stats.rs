//! Corpus statistics: what a user (or the CLI's `--analyze`) wants to know
//! about an indexed collection before querying it.

use crate::inverted::InvertedIndex;
use crate::store::Collection;
use crate::tags::TagIndex;
use pimento_xml::NodeKind;

/// Aggregate statistics over a collection and its indexes.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of documents.
    pub documents: usize,
    /// Total element count.
    pub elements: usize,
    /// Total text tokens indexed.
    pub tokens: u64,
    /// Distinct element/attribute names.
    pub distinct_names: usize,
    /// Distinct indexed tokens.
    pub vocabulary: usize,
    /// Maximum element depth seen.
    pub max_depth: u16,
    /// The most frequent element tags, `(name, count)`, descending.
    pub top_tags: Vec<(String, usize)>,
}

impl CorpusStats {
    /// Compute statistics (cheap: one pass over tag lists + index sizes).
    pub fn compute(coll: &Collection, inverted: &InvertedIndex, tags: &TagIndex) -> Self {
        let mut elements = 0usize;
        let mut max_depth = 0u16;
        let mut tag_counts: Vec<(String, usize)> = Vec::new();
        for (_, doc) in coll.iter() {
            for id in doc.node_ids() {
                let n = doc.node(id);
                if matches!(n.kind, NodeKind::Element { .. }) {
                    elements += 1;
                    max_depth = max_depth.max(n.level);
                }
            }
        }
        for i in 0..coll.symbols().len() as u32 {
            let sym = pimento_xml::SymbolId(i);
            let count = tags.count(sym);
            if count > 0 {
                tag_counts.push((coll.symbols().name(sym).to_string(), count));
            }
        }
        tag_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        tag_counts.truncate(10);
        let tokens = (0..coll.len() as u32)
            .map(|d| inverted.doc_len(crate::store::DocId(d)) as u64)
            .sum();
        CorpusStats {
            documents: coll.len(),
            elements,
            tokens,
            distinct_names: coll.symbols().len(),
            vocabulary: inverted.vocabulary_size(),
            max_depth,
            top_tags: tag_counts,
        }
    }

    /// Render a compact human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "collection: {} document(s), {} elements (max depth {}), {} tokens, \
             {} distinct names, vocabulary {}\n",
            self.documents,
            self.elements,
            self.max_depth,
            self.tokens,
            self.distinct_names,
            self.vocabulary
        );
        if !self.top_tags.is_empty() {
            out.push_str("top tags: ");
            let parts: Vec<String> = self
                .top_tags
                .iter()
                .map(|(t, c)| format!("{t}({c})"))
                .collect();
            out.push_str(&parts.join(", "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;

    fn setup() -> (Collection, InvertedIndex, TagIndex) {
        let mut c = Collection::new();
        c.add_xml(
            "<dealer><car><price>one two</price></car><car><price>three</price></car></dealer>",
        )
        .unwrap();
        c.add_xml("<dealer><lot/></dealer>").unwrap();
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        (c, inv, tags)
    }

    #[test]
    fn counts_are_exact() {
        let (c, inv, tags) = setup();
        let s = CorpusStats::compute(&c, &inv, &tags);
        assert_eq!(s.documents, 2);
        assert_eq!(s.elements, 7); // 2 dealers, 2 cars, 2 prices, 1 lot
        assert_eq!(s.tokens, 3);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.vocabulary, 3);
        assert_eq!(s.top_tags[0], ("car".to_string(), 2));
    }

    #[test]
    fn render_mentions_key_numbers() {
        let (c, inv, tags) = setup();
        let text = CorpusStats::compute(&c, &inv, &tags).render();
        assert!(text.contains("2 document(s)"));
        assert!(text.contains("top tags"));
    }

    #[test]
    fn empty_collection() {
        let c = Collection::new();
        let inv = InvertedIndex::build(&c, Tokenizer::plain());
        let tags = TagIndex::build(&c);
        let s = CorpusStats::compute(&c, &inv, &tags);
        assert_eq!(s.documents, 0);
        assert_eq!(s.elements, 0);
        assert!(s.top_tags.is_empty());
    }
}
