//! The collection store: a set of parsed documents sharing one symbol table.

use pimento_xml::{parse_content, Document, NodeId, SymbolId, SymbolTable, XmlError};

/// Identifier of a document within a [`Collection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// A node address that is unique across the collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemRef {
    /// Owning document.
    pub doc: DocId,
    /// Node within that document.
    pub node: NodeId,
}

/// A set of documents with a shared [`SymbolTable`], the unit over which
/// indexes are built and queries run.
#[derive(Debug, Default)]
pub struct Collection {
    symbols: SymbolTable,
    docs: Vec<Document>,
}

impl Collection {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble a collection from a symbol table and documents that were
    /// parsed (or generated) against it — the sharded-engine collapse and
    /// split path.
    pub fn from_parts(symbols: SymbolTable, docs: Vec<Document>) -> Self {
        Collection { symbols, docs }
    }

    /// Clone the documents in `range` into a new collection that carries a
    /// full copy of this collection's symbol table. Keeping the *entire*
    /// table (not just the symbols the slice uses) is what keeps symbol
    /// ids — and therefore compiled plans and matchers — valid across
    /// every segment of a sharded engine. Out-of-bounds portions of the
    /// range are ignored.
    pub fn subset(&self, range: std::ops::Range<usize>) -> Collection {
        let docs = self
            .docs
            .get(range.start.min(self.docs.len())..range.end.min(self.docs.len()))
            .unwrap_or(&[])
            .to_vec();
        Collection {
            symbols: self.symbols.clone(),
            docs,
        }
    }

    /// Parse `input` and add it, returning its id.
    pub fn add_xml(&mut self, input: &str) -> Result<DocId, XmlError> {
        let doc = parse_content(input, &mut self.symbols)?;
        Ok(self.add_document(doc))
    }

    /// Add an already-built document. The document must have been parsed (or
    /// generated) against this collection's symbol table.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        id
    }

    /// Borrow a document.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.0 as usize]
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table — needed when generators build
    /// documents directly into the collection.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether there are no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterate `(DocId, &Document)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, d)| (DocId(i as u32), d))
    }

    /// Intern a tag name (convenience passthrough).
    pub fn intern(&mut self, name: &str) -> SymbolId {
        self.symbols.intern(name)
    }

    /// Look up a tag name without interning.
    pub fn tag(&self, name: &str) -> Option<SymbolId> {
        self.symbols.get(name)
    }

    /// Resolve an [`ElemRef`] to its node.
    pub fn node(&self, r: ElemRef) -> &pimento_xml::Node {
        self.doc(r.doc).node(r.node)
    }

    /// Text content of the subtree at `r`.
    pub fn text_content(&self, r: ElemRef) -> String {
        self.doc(r.doc).text_content(r.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_documents() {
        let mut c = Collection::new();
        let d0 = c.add_xml("<a><b>x</b></a>").unwrap();
        let d1 = c.add_xml("<a><b>y</b></a>").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(d0, DocId(0));
        assert_eq!(d1, DocId(1));
        let b = c.tag("b").unwrap();
        let n0 = c.doc(d0).child_element(c.doc(d0).root(), b).unwrap();
        assert_eq!(c.text_content(ElemRef { doc: d0, node: n0 }), "x");
    }

    #[test]
    fn symbols_shared_across_documents() {
        let mut c = Collection::new();
        c.add_xml("<car/>").unwrap();
        c.add_xml("<dealer><car/></dealer>").unwrap();
        let car = c.tag("car").unwrap();
        let count: usize = c
            .iter()
            .map(|(_, d)| {
                d.node_ids()
                    .filter(|&n| d.node(n).tag() == Some(car))
                    .count()
            })
            .sum();
        assert_eq!(count, 2);
    }

    #[test]
    fn subset_keeps_full_symbol_table() {
        let mut c = Collection::new();
        c.add_xml("<a><b>x</b></a>").unwrap();
        c.add_xml("<c>y</c>").unwrap();
        let tail = c.subset(1..2);
        assert_eq!(tail.len(), 1);
        // Symbols interned only while parsing the first document are still
        // resolvable — segments share the full corpus table.
        assert_eq!(tail.tag("b"), c.tag("b"));
        assert_eq!(tail.tag("a"), c.tag("a"));
        let root = tail.doc(DocId(0)).root();
        assert_eq!(
            tail.text_content(ElemRef {
                doc: DocId(0),
                node: root
            }),
            "y"
        );
        // Ranges past the end are clamped, not a panic.
        assert!(c.subset(5..9).is_empty());
        assert_eq!(c.subset(0..99).len(), 2);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut c = Collection::new();
        assert!(c.add_xml("<a><b></a>").is_err());
        assert!(c.is_empty());
    }
}
