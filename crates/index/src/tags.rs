//! Per-tag element index: "an index per distinct tag" (paper §6.4).

use crate::store::{Collection, DocId, ElemRef};
use pimento_xml::{NodeId, NodeKind, SymbolId};
use std::collections::HashMap;

/// An element occurrence with its region label, the unit the structural
/// joins in `pimento-algebra` operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemEntry {
    /// Owning document.
    pub doc: DocId,
    /// The element node.
    pub node: NodeId,
    /// Region start label.
    pub start: u32,
    /// Region end label.
    pub end: u32,
    /// Depth (root element = 1).
    pub level: u16,
}

impl ElemEntry {
    /// Collection-wide address of this element.
    pub fn elem_ref(&self) -> ElemRef {
        ElemRef { doc: self.doc, node: self.node }
    }

    /// True iff `self` is a proper ancestor of `other` (same document).
    pub fn is_ancestor_of(&self, other: &ElemEntry) -> bool {
        self.doc == other.doc && self.start < other.start && other.end < self.end
    }

    /// True iff `self` is the parent of `other` (ancestor one level up).
    pub fn is_parent_of(&self, other: &ElemEntry) -> bool {
        self.is_ancestor_of(other) && self.level + 1 == other.level
    }
}

/// tag → all elements with that tag, sorted by `(doc, start)`.
#[derive(Debug, Default)]
pub struct TagIndex {
    by_tag: HashMap<SymbolId, Vec<ElemEntry>>,
}

impl TagIndex {
    /// Scan every document of `coll` and index its elements.
    pub fn build(coll: &Collection) -> Self {
        let mut index = TagIndex::default();
        for (doc_id, doc) in coll.iter() {
            index.index_document(doc_id, doc);
        }
        index
    }

    /// Append one document's elements. `doc_id` must be larger than every
    /// previously indexed id, which keeps the per-tag lists
    /// `(doc, start)`-sorted.
    pub fn index_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) {
        for node_id in doc.node_ids() {
            let node = doc.node(node_id);
            if let NodeKind::Element { tag, .. } = &node.kind {
                let list = self.by_tag.entry(*tag).or_default();
                debug_assert!(list.last().is_none_or(|l| (l.doc, l.start) < (doc_id, node.start)));
                list.push(ElemEntry {
                    doc: doc_id,
                    node: node_id,
                    start: node.start,
                    end: node.end,
                    level: node.level,
                });
            }
        }
    }

    /// All elements with tag `tag`, sorted by `(doc, start)`.
    pub fn elements(&self, tag: SymbolId) -> &[ElemEntry] {
        self.by_tag.get(&tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Elements with tag `tag` inside document `doc`.
    pub fn doc_elements(&self, tag: SymbolId, doc: DocId) -> &[ElemEntry] {
        let all = self.elements(tag);
        let lo = all.partition_point(|e| e.doc < doc);
        let hi = all.partition_point(|e| e.doc <= doc);
        &all[lo..hi]
    }

    /// Elements with tag `tag` whose region lies strictly inside
    /// `(doc, start, end)` — the descendants step of a structural join.
    pub fn elements_within(&self, tag: SymbolId, doc: DocId, start: u32, end: u32) -> &[ElemEntry] {
        let in_doc = self.doc_elements(tag, doc);
        let lo = in_doc.partition_point(|e| e.start <= start);
        let hi = in_doc.partition_point(|e| e.start < end);
        // Entries in [lo, hi) start inside the region; starting inside a
        // well-nested region implies ending inside it.
        &in_doc[lo..hi]
    }

    /// Number of distinct tags.
    pub fn num_tags(&self) -> usize {
        self.by_tag.len()
    }

    /// Total element count for `tag` (0 when absent).
    pub fn count(&self, tag: SymbolId) -> usize {
        self.elements(tag).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Collection, TagIndex) {
        let mut c = Collection::new();
        c.add_xml("<dealer><car><price>1</price></car><car><price>2</price></car></dealer>")
            .unwrap();
        c.add_xml("<dealer><car/></dealer>").unwrap();
        let t = TagIndex::build(&c);
        (c, t)
    }

    #[test]
    fn counts_per_tag() {
        let (c, t) = setup();
        assert_eq!(t.count(c.tag("car").unwrap()), 3);
        assert_eq!(t.count(c.tag("price").unwrap()), 2);
        assert_eq!(t.count(c.tag("dealer").unwrap()), 2);
        assert_eq!(t.num_tags(), 3);
    }

    #[test]
    fn doc_elements_slice() {
        let (c, t) = setup();
        let car = c.tag("car").unwrap();
        assert_eq!(t.doc_elements(car, DocId(0)).len(), 2);
        assert_eq!(t.doc_elements(car, DocId(1)).len(), 1);
    }

    #[test]
    fn elements_within_region() {
        let (c, t) = setup();
        let car = c.tag("car").unwrap();
        let price = c.tag("price").unwrap();
        let first_car = t.doc_elements(car, DocId(0))[0];
        let prices = t.elements_within(price, DocId(0), first_car.start, first_car.end);
        assert_eq!(prices.len(), 1);
        assert!(first_car.is_ancestor_of(&prices[0]));
        assert!(first_car.is_parent_of(&prices[0]));
    }

    #[test]
    fn ancestor_parent_predicates() {
        let (c, t) = setup();
        let dealer = c.tag("dealer").unwrap();
        let price = c.tag("price").unwrap();
        let d = t.doc_elements(dealer, DocId(0))[0];
        let p = t.doc_elements(price, DocId(0))[0];
        assert!(d.is_ancestor_of(&p));
        assert!(!d.is_parent_of(&p)); // two levels apart
        assert!(!p.is_ancestor_of(&d));
        // cross-document never related
        let d1 = t.doc_elements(dealer, DocId(1))[0];
        assert!(!d1.is_ancestor_of(&p));
    }

    #[test]
    fn unknown_tag_is_empty() {
        let (_, t) = setup();
        assert!(t.elements(SymbolId(999)).is_empty());
    }
}
