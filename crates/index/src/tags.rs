//! Per-tag element index: "an index per distinct tag" (paper §6.4).
//!
//! The index has two backings behind one API. [`TagIndex::build`] produces
//! the *heap* form (`tag → Vec<ElemEntry>`), which incremental ingest
//! appends to. Opening a `PIMCOL4` columnar snapshot produces the *packed*
//! form: the per-tag directory and the flat 18-byte entry rows stay inside
//! the snapshot's shared byte buffer, and accessors decode entries on the
//! fly — nothing is rebuilt at load time. [`ElemsView`] is the common
//! return type: a borrowed window over either backing that iterates
//! [`ElemEntry`] values and supports the binary searches the structural
//! joins rely on.

use crate::store::{Collection, DocId, ElemRef};
use bytes::Bytes;
use pimento_xml::{NodeId, NodeKind, SymbolId};
use std::collections::HashMap;

/// An element occurrence with its region label, the unit the structural
/// joins in `pimento-algebra` operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemEntry {
    /// Owning document.
    pub doc: DocId,
    /// The element node.
    pub node: NodeId,
    /// Region start label.
    pub start: u32,
    /// Region end label.
    pub end: u32,
    /// Depth (root element = 1).
    pub level: u16,
}

impl ElemEntry {
    /// Collection-wide address of this element.
    pub fn elem_ref(&self) -> ElemRef {
        ElemRef {
            doc: self.doc,
            node: self.node,
        }
    }

    /// True iff `self` is a proper ancestor of `other` (same document).
    pub fn is_ancestor_of(&self, other: &ElemEntry) -> bool {
        self.doc == other.doc && self.start < other.start && other.end < self.end
    }

    /// True iff `self` is the parent of `other` (ancestor one level up).
    pub fn is_parent_of(&self, other: &ElemEntry) -> bool {
        self.is_ancestor_of(other) && self.level + 1 == other.level
    }
}

/// On-disk size of one packed [`ElemEntry`] row (four `u32`s + one `u16`,
/// little-endian, unpadded).
pub(crate) const ELEM_ROW: usize = 18;

/// Little-endian field readers over packed rows. Bounds are validated when
/// the snapshot opens, and the readers are total on top of that: a read
/// past the window — impossible on a validated snapshot, asserted in debug
/// builds — yields zero instead of a hot-path panic. `forbid(unsafe_code)`
/// holds throughout: "zero-copy" means no rebuild, not pointer casting.
pub(crate) fn u16_at(b: &[u8], off: usize) -> u16 {
    let mut raw = [0u8; 2];
    match off.checked_add(2).and_then(|end| b.get(off..end)) {
        Some(src) => raw.copy_from_slice(src),
        None => debug_assert!(false, "u16_at past the validated window"),
    }
    u16::from_le_bytes(raw)
}

pub(crate) fn u32_at(b: &[u8], off: usize) -> u32 {
    let mut raw = [0u8; 4];
    match off.checked_add(4).and_then(|end| b.get(off..end)) {
        Some(src) => raw.copy_from_slice(src),
        None => debug_assert!(false, "u32_at past the validated window"),
    }
    u32::from_le_bytes(raw)
}

pub(crate) fn u64_at(b: &[u8], off: usize) -> u64 {
    let mut raw = [0u8; 8];
    match off.checked_add(8).and_then(|end| b.get(off..end)) {
        Some(src) => raw.copy_from_slice(src),
        None => debug_assert!(false, "u64_at past the validated window"),
    }
    u64::from_le_bytes(raw)
}

/// Append `e` to `out` in packed row form.
pub(crate) fn put_elem_row(out: &mut Vec<u8>, e: &ElemEntry) {
    out.extend_from_slice(&e.doc.0.to_le_bytes());
    out.extend_from_slice(&e.node.0.to_le_bytes());
    out.extend_from_slice(&e.start.to_le_bytes());
    out.extend_from_slice(&e.end.to_le_bytes());
    out.extend_from_slice(&e.level.to_le_bytes());
}

/// Decode the row starting at byte offset `off`.
pub(crate) fn elem_row_at(rows: &[u8], off: usize) -> ElemEntry {
    ElemEntry {
        doc: DocId(u32_at(rows, off)),
        node: NodeId(u32_at(rows, off + 4)),
        start: u32_at(rows, off + 8),
        end: u32_at(rows, off + 12),
        level: u16_at(rows, off + 16),
    }
}

#[derive(Debug, Clone, Copy)]
enum ViewRepr<'a> {
    /// Heap backing: a plain entry slice.
    Slice(&'a [ElemEntry]),
    /// Packed backing: `ELEM_ROW`-byte rows, decoded on access.
    Packed(&'a [u8]),
}

/// A borrowed, ordered window of [`ElemEntry`]s — the uniform result of
/// every [`TagIndex`] lookup, independent of backing. Entries are yielded
/// *by value* (packed rows are decoded on access); equality compares
/// contents, so heap- and snapshot-backed indexes over the same data
/// compare equal.
#[derive(Debug, Clone, Copy)]
pub struct ElemsView<'a> {
    repr: ViewRepr<'a>,
}

impl<'a> ElemsView<'a> {
    /// An empty view (unknown tag, empty region).
    pub fn empty() -> Self {
        ElemsView {
            repr: ViewRepr::Slice(&[]),
        }
    }

    pub(crate) fn from_slice(entries: &'a [ElemEntry]) -> Self {
        ElemsView {
            repr: ViewRepr::Slice(entries),
        }
    }

    pub(crate) fn from_rows(rows: &'a [u8]) -> Self {
        debug_assert_eq!(rows.len() % ELEM_ROW, 0);
        ElemsView {
            repr: ViewRepr::Packed(rows),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self.repr {
            ViewRepr::Slice(s) => s.len(),
            ViewRepr::Packed(b) => b.len() / ELEM_ROW,
        }
    }

    /// Whether the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry at `i`; panics when out of range (mirrors slice indexing).
    pub fn at(&self, i: usize) -> ElemEntry {
        self.get(i).expect("ElemView index out of range")
    }

    /// Entry at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<ElemEntry> {
        match self.repr {
            ViewRepr::Slice(s) => s.get(i).copied(),
            ViewRepr::Packed(b) => {
                let at = i.checked_mul(ELEM_ROW)?;
                (at.checked_add(ELEM_ROW)? <= b.len()).then(|| elem_row_at(b, at))
            }
        }
    }

    /// First entry, if any.
    pub fn first(&self) -> Option<ElemEntry> {
        self.get(0)
    }

    /// Iterate the entries in order.
    pub fn iter(&self) -> impl Iterator<Item = ElemEntry> + 'a {
        let v = *self;
        (0..v.len()).filter_map(move |i| v.get(i))
    }

    /// Materialize the view.
    pub fn to_vec(&self) -> Vec<ElemEntry> {
        match self.repr {
            ViewRepr::Slice(s) => s.to_vec(),
            ViewRepr::Packed(_) => self.iter().collect(),
        }
    }

    /// Index of the first entry for which `pred` is false — the same
    /// contract as `slice::partition_point` (entries must be partitioned
    /// by `pred`, which every caller's sort order guarantees).
    pub fn partition_point(&self, mut pred: impl FnMut(&ElemEntry) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid) {
                Some(e) if pred(&e) => lo = mid + 1,
                _ => hi = mid,
            }
        }
        lo
    }

    /// Sub-view over entry indexes `lo..hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> ElemsView<'a> {
        match self.repr {
            ViewRepr::Slice(s) => ElemsView {
                repr: ViewRepr::Slice(&s[lo..hi]),
            },
            ViewRepr::Packed(b) => ElemsView {
                repr: ViewRepr::Packed(&b[lo * ELEM_ROW..hi * ELEM_ROW]),
            },
        }
    }
}

impl PartialEq for ElemsView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for ElemsView<'_> {}

impl<'a> IntoIterator for ElemsView<'a> {
    type Item = ElemEntry;
    type IntoIter = Box<dyn Iterator<Item = ElemEntry> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Packed backing: zero-copy windows into the snapshot buffer.
#[derive(Debug)]
pub(crate) struct PackedTags {
    /// Per-symbol directory: `sym_domain` rows of `(start_row: u32,
    /// row_count: u32)` indexed directly by `SymbolId`.
    dir: Bytes,
    /// `ELEM_ROW`-byte entry rows, `(doc, start)`-sorted per symbol.
    rows: Bytes,
}

impl PackedTags {
    fn span(&self, tag: SymbolId) -> Option<(usize, usize)> {
        let at = tag.0 as usize * 8;
        if at + 8 > self.dir.len() {
            return None;
        }
        let start = u32_at(&self.dir, at) as usize;
        let count = u32_at(&self.dir, at + 4) as usize;
        Some((start, count))
    }
}

#[derive(Debug)]
enum TagsRepr {
    Heap(HashMap<SymbolId, Vec<ElemEntry>>),
    Packed(PackedTags),
}

/// tag → all elements with that tag, sorted by `(doc, start)`.
#[derive(Debug)]
pub struct TagIndex {
    repr: TagsRepr,
}

impl Default for TagIndex {
    fn default() -> Self {
        TagIndex {
            repr: TagsRepr::Heap(HashMap::new()),
        }
    }
}

impl TagIndex {
    /// Scan every document of `coll` and index its elements.
    pub fn build(coll: &Collection) -> Self {
        let mut index = TagIndex::default();
        for (doc_id, doc) in coll.iter() {
            index.index_document(doc_id, doc);
        }
        index
    }

    /// Wrap pre-validated packed sections (the `tags` section of a
    /// columnar snapshot). `dir` and `rows` are zero-copy slices of the
    /// snapshot buffer; bounds were checked by the opener.
    pub(crate) fn from_packed(dir: Bytes, rows: Bytes) -> Self {
        TagIndex {
            repr: TagsRepr::Packed(PackedTags { dir, rows }),
        }
    }

    /// True when backed by packed snapshot sections (no heap lists).
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, TagsRepr::Packed(_))
    }

    /// Convert a packed backing into heap lists so mutation can proceed.
    /// No-op on an already-heap index.
    fn ensure_heap(&mut self) {
        if self.is_packed() {
            let syms = match &self.repr {
                TagsRepr::Packed(p) => p.dir.len() / 8,
                TagsRepr::Heap(_) => 0,
            };
            let mut by_tag: HashMap<SymbolId, Vec<ElemEntry>> = HashMap::new();
            for s in 0..syms {
                let sym = SymbolId(s as u32);
                let entries = self.elements(sym).to_vec();
                if !entries.is_empty() {
                    by_tag.insert(sym, entries);
                }
            }
            self.repr = TagsRepr::Heap(by_tag);
        }
    }

    /// Append one document's elements. `doc_id` must be larger than every
    /// previously indexed id, which keeps the per-tag lists
    /// `(doc, start)`-sorted. A packed index thaws to heap form first
    /// (one-time cost on the first incremental add after a snapshot open).
    pub fn index_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) {
        self.ensure_heap();
        let TagsRepr::Heap(by_tag) = &mut self.repr else {
            // ensure_heap always leaves a heap repr behind.
            return;
        };
        for node_id in doc.node_ids() {
            let node = doc.node(node_id);
            if let NodeKind::Element { tag, .. } = &node.kind {
                let list = by_tag.entry(*tag).or_default();
                debug_assert!(list
                    .last()
                    .is_none_or(|l| (l.doc, l.start) < (doc_id, node.start)));
                list.push(ElemEntry {
                    doc: doc_id,
                    node: node_id,
                    start: node.start,
                    end: node.end,
                    level: node.level,
                });
            }
        }
    }

    /// All elements with tag `tag`, sorted by `(doc, start)`.
    pub fn elements(&self, tag: SymbolId) -> ElemsView<'_> {
        match &self.repr {
            TagsRepr::Heap(m) => {
                ElemsView::from_slice(m.get(&tag).map(Vec::as_slice).unwrap_or(&[]))
            }
            TagsRepr::Packed(p) => match p.span(tag) {
                Some((start, count)) if count > 0 => {
                    ElemsView::from_rows(&p.rows[start * ELEM_ROW..(start + count) * ELEM_ROW])
                }
                _ => ElemsView::empty(),
            },
        }
    }

    /// Elements with tag `tag` inside document `doc`.
    pub fn doc_elements(&self, tag: SymbolId, doc: DocId) -> ElemsView<'_> {
        let all = self.elements(tag);
        let lo = all.partition_point(|e| e.doc < doc);
        let hi = all.partition_point(|e| e.doc <= doc);
        all.slice(lo, hi)
    }

    /// Elements with tag `tag` whose region lies strictly inside
    /// `(doc, start, end)` — the descendants step of a structural join.
    pub fn elements_within(
        &self,
        tag: SymbolId,
        doc: DocId,
        start: u32,
        end: u32,
    ) -> ElemsView<'_> {
        let in_doc = self.doc_elements(tag, doc);
        let lo = in_doc.partition_point(|e| e.start <= start);
        let hi = in_doc.partition_point(|e| e.start < end);
        // Entries in [lo, hi) start inside the region; starting inside a
        // well-nested region implies ending inside it.
        in_doc.slice(lo, hi)
    }

    /// Number of distinct tags.
    pub fn num_tags(&self) -> usize {
        match &self.repr {
            TagsRepr::Heap(m) => m.len(),
            TagsRepr::Packed(p) => (0..p.dir.len() / 8)
                .filter(|&s| u32_at(&p.dir, s * 8 + 4) > 0)
                .count(),
        }
    }

    /// Total element count for `tag` (0 when absent).
    pub fn count(&self, tag: SymbolId) -> usize {
        self.elements(tag).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Collection, TagIndex) {
        let mut c = Collection::new();
        c.add_xml("<dealer><car><price>1</price></car><car><price>2</price></car></dealer>")
            .unwrap();
        c.add_xml("<dealer><car/></dealer>").unwrap();
        let t = TagIndex::build(&c);
        (c, t)
    }

    #[test]
    fn counts_per_tag() {
        let (c, t) = setup();
        assert_eq!(t.count(c.tag("car").unwrap()), 3);
        assert_eq!(t.count(c.tag("price").unwrap()), 2);
        assert_eq!(t.count(c.tag("dealer").unwrap()), 2);
        assert_eq!(t.num_tags(), 3);
    }

    #[test]
    fn doc_elements_slice() {
        let (c, t) = setup();
        let car = c.tag("car").unwrap();
        assert_eq!(t.doc_elements(car, DocId(0)).len(), 2);
        assert_eq!(t.doc_elements(car, DocId(1)).len(), 1);
    }

    #[test]
    fn elements_within_region() {
        let (c, t) = setup();
        let car = c.tag("car").unwrap();
        let price = c.tag("price").unwrap();
        let first_car = t.doc_elements(car, DocId(0)).at(0);
        let prices = t.elements_within(price, DocId(0), first_car.start, first_car.end);
        assert_eq!(prices.len(), 1);
        assert!(first_car.is_ancestor_of(&prices.at(0)));
        assert!(first_car.is_parent_of(&prices.at(0)));
    }

    #[test]
    fn ancestor_parent_predicates() {
        let (c, t) = setup();
        let dealer = c.tag("dealer").unwrap();
        let price = c.tag("price").unwrap();
        let d = t.doc_elements(dealer, DocId(0)).at(0);
        let p = t.doc_elements(price, DocId(0)).at(0);
        assert!(d.is_ancestor_of(&p));
        assert!(!d.is_parent_of(&p)); // two levels apart
        assert!(!p.is_ancestor_of(&d));
        // cross-document never related
        let d1 = t.doc_elements(dealer, DocId(1)).at(0);
        assert!(!d1.is_ancestor_of(&p));
    }

    #[test]
    fn unknown_tag_is_empty() {
        let (_, t) = setup();
        assert!(t.elements(SymbolId(999)).is_empty());
    }

    #[test]
    fn view_access_and_equality() {
        let (c, t) = setup();
        let car = c.tag("car").unwrap();
        let view = t.elements(car);
        assert_eq!(view.len(), 3);
        assert_eq!(view.get(2), Some(view.at(2)));
        assert_eq!(view.get(3), None);
        assert_eq!(view.first(), Some(view.at(0)));
        assert_eq!(view.to_vec().len(), 3);
        assert_eq!(view, t.elements(car));
        assert_ne!(view, t.elements(c.tag("price").unwrap()));
        let collected: Vec<ElemEntry> = view.into_iter().collect();
        assert_eq!(collected, view.to_vec());
        assert!(ElemsView::empty().first().is_none());
    }

    #[test]
    fn packed_rows_roundtrip() {
        let e = ElemEntry {
            doc: DocId(7),
            node: NodeId(9),
            start: 3,
            end: 44,
            level: 2,
        };
        let mut rows = Vec::new();
        put_elem_row(&mut rows, &e);
        put_elem_row(
            &mut rows,
            &ElemEntry {
                doc: DocId(8),
                node: NodeId(0),
                start: 1,
                end: 2,
                level: 1,
            },
        );
        assert_eq!(rows.len(), 2 * ELEM_ROW);
        let view = ElemsView::from_rows(&rows);
        assert_eq!(view.at(0), e);
        assert_eq!(view.at(1).doc, DocId(8));
        // Packed and slice views over the same entries compare equal.
        let entries = view.to_vec();
        assert_eq!(view, ElemsView::from_slice(&entries));
    }
}
