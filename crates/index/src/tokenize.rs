//! Text tokenization for full-text indexing and `ftcontains` predicates.
//!
//! The paper (§7.1) reports experimenting with stemming and case folding as
//! relaxation options for keywords, so the tokenizer exposes both: case
//! folding is always on (queries and documents meet in lowercase), and a
//! light suffix stemmer can be toggled per index / per query.

/// Tokenizer configuration shared by index build and query analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tokenizer {
    /// Apply the light suffix stemmer to every token.
    pub stemming: bool,
}

impl Tokenizer {
    /// Tokenizer without stemming (exact matching modulo case).
    pub fn plain() -> Self {
        Tokenizer { stemming: false }
    }

    /// Tokenizer with light stemming (the paper's relaxed keyword matching).
    pub fn stemming() -> Self {
        Tokenizer { stemming: true }
    }

    /// Split `text` into normalized tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else if !cur.is_empty() {
                out.push(self.finish(std::mem::take(&mut cur)));
            }
        }
        if !cur.is_empty() {
            out.push(self.finish(cur));
        }
        out
    }

    fn finish(&self, token: String) -> String {
        if self.stemming {
            stem(&token)
        } else {
            token
        }
    }
}

/// A light suffix stemmer (s/es/ies, ing, ed) — deliberately simpler than
/// Porter: it only needs to merge the obvious morphological variants that
/// the paper's relaxation experiments rely on, and must never map two
/// clearly unrelated words together.
pub fn stem(token: &str) -> String {
    let t = token;
    // Longest-suffix-first; guard with minimum stem lengths so short words
    // ("as", "is", "red") pass through untouched.
    if let Some(stripped) = t.strip_suffix("ies") {
        if stripped.len() >= 2 {
            return format!("{stripped}y");
        }
    }
    if let Some(stripped) = t.strip_suffix("ing") {
        if stripped.len() >= 3 {
            return stripped.to_string();
        }
    }
    if let Some(stripped) = t.strip_suffix("ed") {
        if stripped.len() >= 3 {
            return stripped.to_string();
        }
    }
    if let Some(stripped) = t.strip_suffix("es") {
        if stripped.len() >= 3 {
            return stripped.to_string();
        }
    }
    if let Some(stripped) = t.strip_suffix('s') {
        if stripped.len() >= 3 && !stripped.ends_with('s') && !stripped.ends_with('u') {
            return stripped.to_string();
        }
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics_and_lowercases() {
        let t = Tokenizer::plain();
        assert_eq!(
            t.tokenize("Good-Condition, LOW mileage!"),
            ["good", "condition", "low", "mileage"]
        );
    }

    #[test]
    fn keeps_digits() {
        let t = Tokenizer::plain();
        assert_eq!(
            t.tokenize("bought on 11/2005"),
            ["bought", "on", "11", "2005"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        let t = Tokenizer::plain();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("--- !!! ...").is_empty());
    }

    #[test]
    fn stemming_merges_plural_and_gerund() {
        assert_eq!(stem("cars"), "car");
        assert_eq!(stem("mining"), "min");
        assert_eq!(stem("queries"), "query");
        assert_eq!(stem("matched"), "match");
        assert_eq!(stem("boxes"), "box");
    }

    #[test]
    fn stemming_preserves_short_words() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("us"), "us");
        assert_eq!(stem("ss"), "ss");
        assert_eq!(stem("bus"), "bus");
    }

    #[test]
    fn stemming_tokenizer_applies_to_all_tokens() {
        let t = Tokenizer::stemming();
        assert_eq!(t.tokenize("selling cars"), ["sell", "car"]);
    }

    #[test]
    fn unicode_case_folding() {
        let t = Tokenizer::plain();
        assert_eq!(t.tokenize("Čar"), ["čar"]);
    }
}
