//! Tombstone bitmaps: segment-local delete markers (DESIGN.md §16).
//!
//! A delete never rewrites an immutable segment. Instead the owning
//! segment gains a [`TombstoneSet`] — a bitmap over its local doc ids —
//! consulted at the base of every per-segment scan, so deleted documents
//! vanish from results immediately while the segment's files and scoring
//! statistics stay untouched until the next merge compaction rebuilds
//! the doc-range layout without them (Lucene's delete semantics).
//!
//! On disk a tombstone set is a text sidecar next to its segment file:
//! a header, a `count` line, then the deleted local doc ids in strictly
//! increasing order. [`TombstoneSet::parse`] is a `panic-path` lint
//! root: malformed sidecars surface as [`PersistError`], never a panic.

use crate::persist::PersistError;
use crate::store::DocId;

/// Header line identifying a tombstone sidecar file.
pub const TOMBSTONE_HEADER: &str = "pimento-tombstones v1";

/// A set of deleted local doc ids within one segment, stored as a
/// bitmap (`u64` words) plus a running count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TombstoneSet {
    words: Vec<u64>,
    deleted: u32,
}

impl TombstoneSet {
    /// An empty set (nothing deleted).
    pub fn new() -> TombstoneSet {
        TombstoneSet::default()
    }

    /// Mark `doc` deleted. Returns `true` if it was live before.
    pub fn insert(&mut self, doc: DocId) -> bool {
        let (word, bit) = (doc.0 as usize / 64, doc.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.deleted += 1;
        true
    }

    /// Is `doc` deleted?
    pub fn contains(&self, doc: DocId) -> bool {
        self.words
            .get(doc.0 as usize / 64)
            .is_some_and(|w| w & (1u64 << (doc.0 % 64)) != 0)
    }

    /// Number of deleted documents.
    pub fn deleted_count(&self) -> u32 {
        self.deleted
    }

    /// `true` when nothing is deleted.
    pub fn is_empty(&self) -> bool {
        self.deleted == 0
    }

    /// The deleted local doc ids, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            (0..64)
                .filter(move |bit| w & (1u64 << bit) != 0)
                .map(move |bit| DocId(i as u32 * 64 + bit))
        })
    }

    /// Render the sidecar text: header, `count` line, one id per line in
    /// increasing order, and a final `crc <hex>` trailer over everything
    /// above it. Without the trailer a single flipped bit in an id digit
    /// would silently delete a *different* document — the count still
    /// matches and the ids still increase, so only a checksum can catch
    /// it (the scrubber relies on this, DESIGN.md §17).
    pub fn render(&self) -> String {
        let mut out = String::from(TOMBSTONE_HEADER);
        out.push('\n');
        out.push_str(&format!("count {}\n", self.deleted));
        for doc in self.iter() {
            out.push_str(&format!("{}\n", doc.0));
        }
        let crc = crate::persist::crc32(out.as_bytes());
        out.push_str(&format!("crc {crc:08x}\n"));
        out
    }

    /// Parse and validate sidecar text: the `crc` trailer first (it also
    /// rules out torn prefixes that cut at a line boundary), then the
    /// header, a `count` line that must match the number of id lines,
    /// and strictly increasing ids (the canonical order
    /// [`TombstoneSet::render`] writes).
    pub fn parse(text: &str) -> Result<TombstoneSet, PersistError> {
        let trimmed = text.trim_end();
        let covered_len = trimmed
            .rfind('\n')
            .map(|i| i + 1)
            .ok_or(PersistError::BadManifest("missing tombstone crc trailer"))?;
        let stored = trimmed
            .get(covered_len..)
            .and_then(|l| l.trim().strip_prefix("crc "))
            .and_then(|v| u32::from_str_radix(v.trim(), 16).ok())
            .ok_or(PersistError::BadManifest("missing tombstone crc trailer"))?;
        let covered = text
            .get(..covered_len)
            .ok_or(PersistError::BadManifest("missing tombstone crc trailer"))?;
        if crate::persist::crc32(covered.as_bytes()) != stored {
            return Err(PersistError::BadManifest("tombstone checksum mismatch"));
        }
        let mut lines = covered.lines();
        if lines.next().map(str::trim) != Some(TOMBSTONE_HEADER) {
            return Err(PersistError::BadManifest("missing tombstone header"));
        }
        let count: u32 = lines
            .next()
            .and_then(|l| l.trim().strip_prefix("count "))
            .and_then(|v| v.parse().ok())
            .ok_or(PersistError::BadManifest("bad tombstone count"))?;
        let mut set = TombstoneSet::new();
        let mut prev: Option<u32> = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let id: u32 = line
                .parse()
                .map_err(|_| PersistError::BadManifest("bad tombstone doc id"))?;
            if prev.is_some_and(|p| id <= p) {
                return Err(PersistError::BadManifest(
                    "tombstone ids not strictly increasing",
                ));
            }
            prev = Some(id);
            set.insert(DocId(id));
        }
        if set.deleted != count {
            return Err(PersistError::BadManifest(
                "tombstone count disagrees with id lines",
            ));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut t = TombstoneSet::new();
        assert!(t.is_empty());
        assert!(t.insert(DocId(3)));
        assert!(t.insert(DocId(70)));
        assert!(!t.insert(DocId(3)), "second delete is a no-op");
        assert!(t.contains(DocId(3)));
        assert!(t.contains(DocId(70)));
        assert!(!t.contains(DocId(4)));
        assert!(!t.contains(DocId(1000)), "past the bitmap is live");
        assert_eq!(t.deleted_count(), 2);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![DocId(3), DocId(70)]);
    }

    #[test]
    fn sidecar_roundtrip() {
        let mut t = TombstoneSet::new();
        for id in [0, 5, 63, 64, 200] {
            t.insert(DocId(id));
        }
        let back = TombstoneSet::parse(&t.render()).unwrap();
        assert_eq!(back, t);
        let empty = TombstoneSet::new();
        assert_eq!(TombstoneSet::parse(&empty.render()).unwrap(), empty);
    }

    /// Append the `crc` trailer to hand-written sidecar text.
    fn with_crc(body: &str) -> String {
        format!("{body}crc {:08x}\n", crate::persist::crc32(body.as_bytes()))
    }

    #[test]
    fn malformed_sidecars_rejected() {
        let bad = [
            "",
            "wrong-header\ncount 0\n",
            "pimento-tombstones v1\n",
            "pimento-tombstones v1\ncount x\n",
            "pimento-tombstones v1\ncount 2\n1\n",
            "pimento-tombstones v1\ncount 2\n2\n1\n",
            "pimento-tombstones v1\ncount 2\n1\n1\n",
            "pimento-tombstones v1\ncount 1\nnope\n",
        ];
        for text in bad {
            // Each bad body fails both bare (missing trailer) and with a
            // correct trailer appended (inner grammar rejection).
            let texts = [text.to_string(), with_crc(text)];
            for text in &texts {
                assert!(
                    matches!(
                        TombstoneSet::parse(text),
                        Err(PersistError::BadManifest(_))
                    ),
                    "{text:?}"
                );
            }
        }
    }

    #[test]
    fn sidecar_without_or_with_wrong_crc_rejected() {
        let mut t = TombstoneSet::new();
        t.insert(DocId(1));
        t.insert(DocId(7));
        let good = t.render();
        assert_eq!(TombstoneSet::parse(&good).unwrap(), t);

        // Strip the trailer: rejected, not parsed as the untrailed format.
        let body = good.rsplit_once("crc ").unwrap().0;
        assert!(matches!(
            TombstoneSet::parse(body),
            Err(PersistError::BadManifest("missing tombstone crc trailer"))
        ));

        // A single flipped id digit (1 → 3) keeps the grammar valid —
        // count matches, ids still increase — so only the crc catches it.
        let tampered = good.replace("\n1\n", "\n3\n");
        assert_ne!(tampered, good);
        assert!(matches!(
            TombstoneSet::parse(&tampered),
            Err(PersistError::BadManifest("tombstone checksum mismatch"))
        ));

        // Every line-boundary prefix of a valid sidecar is rejected.
        for (i, ch) in good.char_indices().skip(1) {
            if ch == '\n' && i + 1 < good.len() {
                let prefix = &good[..=i];
                assert!(
                    TombstoneSet::parse(prefix).is_err(),
                    "torn prefix parsed: {prefix:?}"
                );
            }
        }
    }
}
