//! Numeric value index: range scans for constraint predicates.
//!
//! Constraint predicates like `price < 2000` otherwise evaluate by parsing
//! an element's text content per candidate. This index records, per tag,
//! every *leaf* element (single text child) whose content parses as a
//! number, sorted by value — so `content relOp c` becomes a binary-searched
//! slice. The structural-join pre-filter consumes it to seed pattern nodes
//! that carry numeric constraints.
//!
//! Like [`crate::tags::TagIndex`], the index is either *heap*-backed
//! (built from documents, mutable) or *packed* — a zero-copy view over the
//! `vals` section of a `PIMCOL4` snapshot, where each entry is a fixed
//! [`VAL_ROW`]-byte row (`f64` bit pattern + packed element row) and the
//! binary searches decode values on access.

use crate::fields::FieldValue;
use crate::store::{Collection, DocId};
use crate::tags::{elem_row_at, put_elem_row, u64_at, ElemEntry, ELEM_ROW};
use bytes::Bytes;
use pimento_xml::{NodeKind, SymbolId};
use std::collections::HashMap;

/// On-disk size of one packed value row: the `f64` bit pattern
/// (little-endian `u64`) followed by the element row.
pub(crate) const VAL_ROW: usize = 8 + ELEM_ROW;

/// Append `(v, e)` to `out` in packed row form.
pub(crate) fn put_val_row(out: &mut Vec<u8>, v: f64, e: &ElemEntry) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
    put_elem_row(out, e);
}

fn val_row_at(rows: &[u8], i: usize) -> (f64, ElemEntry) {
    let off = i * VAL_ROW;
    (
        f64::from_bits(u64_at(rows, off)),
        elem_row_at(rows, off + 8),
    )
}

#[derive(Debug)]
struct PackedValues {
    /// Per-symbol directory: `(start_row: u32, row_count: u32)` pairs
    /// indexed by `SymbolId`.
    dir: Bytes,
    /// `VAL_ROW`-byte rows, value-sorted per symbol.
    rows: Bytes,
}

impl PackedValues {
    fn span(&self, tag: SymbolId) -> Option<(usize, usize)> {
        let at = tag.0 as usize * 8;
        if at + 8 > self.dir.len() {
            return None;
        }
        let start = crate::tags::u32_at(&self.dir, at) as usize;
        let count = crate::tags::u32_at(&self.dir, at + 4) as usize;
        Some((start, count))
    }

    /// The packed rows for `tag`, or an empty slice.
    fn tag_rows(&self, tag: SymbolId) -> &[u8] {
        match self.span(tag) {
            Some((start, count)) if count > 0 => {
                &self.rows[start * VAL_ROW..(start + count) * VAL_ROW]
            }
            _ => &[],
        }
    }
}

#[derive(Debug)]
enum ValsRepr {
    Heap(HashMap<SymbolId, Vec<(f64, ElemEntry)>>),
    Packed(PackedValues),
}

/// Per-tag numeric entries sorted by value.
#[derive(Debug)]
pub struct ValueIndex {
    repr: ValsRepr,
}

impl Default for ValueIndex {
    fn default() -> Self {
        ValueIndex {
            repr: ValsRepr::Heap(HashMap::new()),
        }
    }
}

/// Comparison operators the range scan answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl ValueIndex {
    /// Index every numeric leaf element of `coll`.
    pub fn build(coll: &Collection) -> Self {
        let mut index = ValueIndex::default();
        for (doc_id, doc) in coll.iter() {
            index.collect_document(doc_id, doc);
        }
        index.sort_all();
        index
    }

    /// Wrap pre-validated packed sections (the `vals` section of a
    /// columnar snapshot); zero-copy slices of the snapshot buffer.
    pub(crate) fn from_packed(dir: Bytes, rows: Bytes) -> Self {
        ValueIndex {
            repr: ValsRepr::Packed(PackedValues { dir, rows }),
        }
    }

    /// True when backed by packed snapshot sections.
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, ValsRepr::Packed(_))
    }

    /// Thaw a packed backing into heap lists so mutation can proceed.
    fn ensure_heap(&mut self) {
        if self.is_packed() {
            let syms = match &self.repr {
                ValsRepr::Packed(p) => p.dir.len() / 8,
                ValsRepr::Heap(_) => 0,
            };
            let mut by_tag: HashMap<SymbolId, Vec<(f64, ElemEntry)>> = HashMap::new();
            for s in 0..syms {
                let sym = SymbolId(s as u32);
                let entries = self.dump_tag(sym);
                if !entries.is_empty() {
                    by_tag.insert(sym, entries);
                }
            }
            self.repr = ValsRepr::Heap(by_tag);
        }
    }

    /// Append one document; the touched tags re-sort internally so single
    /// document adds stay cheap. A packed index thaws to heap form first.
    pub fn index_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) {
        let touched = self.collect_document(doc_id, doc);
        let ValsRepr::Heap(by_tag) = &mut self.repr else {
            return;
        };
        for tag in touched {
            if let Some(list) = by_tag.get_mut(&tag) {
                list.sort_by(|a, b| a.0.total_cmp(&b.0));
            }
        }
    }

    fn collect_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) -> Vec<SymbolId> {
        self.ensure_heap();
        let mut touched = Vec::new();
        let ValsRepr::Heap(by_tag) = &mut self.repr else {
            return touched;
        };
        for node_id in doc.node_ids() {
            let node = doc.node(node_id);
            let NodeKind::Element { tag, .. } = &node.kind else {
                continue;
            };
            // Leaf field: exactly one child, and it is a text node.
            let [only_child] = node.children.as_slice() else {
                continue;
            };
            let Some(text) = doc.node(*only_child).text() else {
                continue;
            };
            let FieldValue::Num(v) = FieldValue::parse(text) else {
                continue;
            };
            if v.is_nan() {
                continue;
            }
            by_tag.entry(*tag).or_default().push((
                v,
                ElemEntry {
                    doc: doc_id,
                    node: node_id,
                    start: node.start,
                    end: node.end,
                    level: node.level,
                },
            ));
            touched.push(*tag);
        }
        touched
    }

    fn sort_all(&mut self) {
        let ValsRepr::Heap(by_tag) = &mut self.repr else {
            return;
        };
        for list in by_tag.values_mut() {
            list.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
    }

    /// Elements with tag `tag` whose numeric content satisfies `op c`,
    /// sorted by value. Returns owned entries (the matching slice is
    /// usually small).
    pub fn range(&self, tag: SymbolId, op: RangeOp, c: f64) -> Vec<ElemEntry> {
        match &self.repr {
            ValsRepr::Heap(by_tag) => {
                let Some(list) = by_tag.get(&tag) else {
                    return Vec::new();
                };
                let lo = list.partition_point(|(v, _)| *v < c);
                let hi = list.partition_point(|(v, _)| *v <= c);
                let slice = match op {
                    RangeOp::Lt => &list[..lo],
                    RangeOp::Le => &list[..hi],
                    RangeOp::Gt => &list[hi..],
                    RangeOp::Ge => &list[lo..],
                    RangeOp::Eq => &list[lo..hi],
                };
                slice.iter().map(|(_, e)| *e).collect()
            }
            ValsRepr::Packed(p) => {
                let rows = p.tag_rows(tag);
                let n = rows.len() / VAL_ROW;
                let value_at = |i: usize| f64::from_bits(u64_at(rows, i * VAL_ROW));
                let lo = partition_rows(n, |i| value_at(i) < c);
                let hi = partition_rows(n, |i| value_at(i) <= c);
                let (a, b) = match op {
                    RangeOp::Lt => (0, lo),
                    RangeOp::Le => (0, hi),
                    RangeOp::Gt => (hi, n),
                    RangeOp::Ge => (lo, n),
                    RangeOp::Eq => (lo, hi),
                };
                (a..b).map(|i| val_row_at(rows, i).1).collect()
            }
        }
    }

    /// Number of indexed entries for `tag`.
    pub fn count(&self, tag: SymbolId) -> usize {
        match &self.repr {
            ValsRepr::Heap(by_tag) => by_tag.get(&tag).map(Vec::len).unwrap_or(0),
            ValsRepr::Packed(p) => p.tag_rows(tag).len() / VAL_ROW,
        }
    }

    /// Is anything indexed at all?
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            ValsRepr::Heap(by_tag) => by_tag.values().all(Vec::is_empty),
            ValsRepr::Packed(p) => p.rows.is_empty(),
        }
    }

    /// All `(value, entry)` pairs for `tag` in value order — the snapshot
    /// writer's dump path, uniform over both backings.
    pub(crate) fn dump_tag(&self, tag: SymbolId) -> Vec<(f64, ElemEntry)> {
        match &self.repr {
            ValsRepr::Heap(by_tag) => by_tag.get(&tag).cloned().unwrap_or_default(),
            ValsRepr::Packed(p) => {
                let rows = p.tag_rows(tag);
                (0..rows.len() / VAL_ROW)
                    .map(|i| val_row_at(rows, i))
                    .collect()
            }
        }
    }
}

/// `partition_point` over row indexes `0..n`.
fn partition_rows(n: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Collection, ValueIndex) {
        let mut c = Collection::new();
        c.add_xml(
            "<dealer><car><price>500</price></car><car><price>2500</price></car>\
             <car><price>1500</price><note>not a number</note></car></dealer>",
        )
        .unwrap();
        let v = ValueIndex::build(&c);
        (c, v)
    }

    #[test]
    fn range_scans() {
        let (c, v) = setup();
        let price = c.tag("price").unwrap();
        assert_eq!(v.count(price), 3);
        assert_eq!(v.range(price, RangeOp::Lt, 2000.0).len(), 2);
        assert_eq!(v.range(price, RangeOp::Le, 1500.0).len(), 2);
        assert_eq!(v.range(price, RangeOp::Gt, 1500.0).len(), 1);
        assert_eq!(v.range(price, RangeOp::Ge, 500.0).len(), 3);
        assert_eq!(v.range(price, RangeOp::Eq, 1500.0).len(), 1);
        assert_eq!(v.range(price, RangeOp::Eq, 999.0).len(), 0);
    }

    #[test]
    fn non_numeric_and_non_leaf_elements_skipped() {
        let (c, v) = setup();
        let note = c.tag("note").unwrap();
        assert_eq!(v.count(note), 0);
        let car = c.tag("car").unwrap();
        assert_eq!(
            v.count(car),
            0,
            "cars have element children, not a single text leaf"
        );
    }

    #[test]
    fn incremental_add_matches_rebuild() {
        let mut c = Collection::new();
        c.add_xml("<a><p>10</p></a>").unwrap();
        let mut v = ValueIndex::build(&c);
        let d1 = c.add_xml("<a><p>5</p><p>20</p></a>").unwrap();
        v.index_document(d1, c.doc(d1));
        let full = ValueIndex::build(&c);
        let p = c.tag("p").unwrap();
        assert_eq!(
            v.range(p, RangeOp::Le, 100.0),
            full.range(p, RangeOp::Le, 100.0)
        );
        assert_eq!(v.range(p, RangeOp::Lt, 10.0).len(), 1);
    }

    #[test]
    fn unknown_tag_empty() {
        let (_, v) = setup();
        assert_eq!(v.range(SymbolId(999), RangeOp::Lt, 1.0).len(), 0);
        assert!(!v.is_empty());
    }

    #[test]
    fn currency_and_thousands_values_indexed() {
        let mut c = Collection::new();
        c.add_xml("<a><price>$500</price><mileage>50.000</mileage></a>")
            .unwrap();
        let v = ValueIndex::build(&c);
        let price = c.tag("price").unwrap();
        let mileage = c.tag("mileage").unwrap();
        assert_eq!(v.range(price, RangeOp::Eq, 500.0).len(), 1);
        assert_eq!(v.range(mileage, RangeOp::Eq, 50_000.0).len(), 1);
    }

    #[test]
    fn packed_rows_match_heap_range() {
        let (c, v) = setup();
        let price = c.tag("price").unwrap();
        // Pack the dumped entries into rows and rebuild a packed index
        // with a single-symbol-domain directory.
        let domain = 8; // more syms than exist; extra dir slots stay empty
        let mut dir = Vec::new();
        let mut rows = Vec::new();
        let mut start = 0u32;
        for s in 0..domain {
            let entries = v.dump_tag(SymbolId(s));
            dir.extend_from_slice(&start.to_le_bytes());
            dir.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (val, e) in &entries {
                put_val_row(&mut rows, *val, e);
            }
            start += entries.len() as u32;
        }
        let packed = ValueIndex::from_packed(Bytes::from(dir), Bytes::from(rows));
        assert!(packed.is_packed());
        assert_eq!(packed.count(price), 3);
        for op in [
            RangeOp::Lt,
            RangeOp::Le,
            RangeOp::Gt,
            RangeOp::Ge,
            RangeOp::Eq,
        ] {
            assert_eq!(packed.range(price, op, 1500.0), v.range(price, op, 1500.0));
        }
        assert_eq!(packed.dump_tag(price), v.dump_tag(price));
        assert!(!packed.is_empty());
        // Thaw on incremental add keeps results identical.
        let mut thawed = ValueIndex::from_packed(Bytes::copy_from_slice(&[0; 64]), Bytes::new());
        let d = c.doc(DocId(0));
        thawed.index_document(DocId(0), d);
        assert!(!thawed.is_packed());
        assert_eq!(thawed.count(price), 3);
    }
}
