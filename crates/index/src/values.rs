//! Numeric value index: range scans for constraint predicates.
//!
//! Constraint predicates like `price < 2000` otherwise evaluate by parsing
//! an element's text content per candidate. This index records, per tag,
//! every *leaf* element (single text child) whose content parses as a
//! number, sorted by value — so `content relOp c` becomes a binary-searched
//! slice. The structural-join pre-filter consumes it to seed pattern nodes
//! that carry numeric constraints.

use crate::fields::FieldValue;
use crate::store::{Collection, DocId};
use crate::tags::ElemEntry;
use pimento_xml::{NodeKind, SymbolId};
use std::collections::HashMap;

/// Per-tag numeric entries sorted by value.
#[derive(Debug, Default)]
pub struct ValueIndex {
    by_tag: HashMap<SymbolId, Vec<(f64, ElemEntry)>>,
}

/// Comparison operators the range scan answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl ValueIndex {
    /// Index every numeric leaf element of `coll`.
    pub fn build(coll: &Collection) -> Self {
        let mut index = ValueIndex::default();
        for (doc_id, doc) in coll.iter() {
            index.collect_document(doc_id, doc);
        }
        index.sort_all();
        index
    }

    /// Append one document; the touched tags re-sort internally so single
    /// document adds stay cheap.
    pub fn index_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) {
        let touched = self.collect_document(doc_id, doc);
        for tag in touched {
            if let Some(list) = self.by_tag.get_mut(&tag) {
                list.sort_by(|a, b| a.0.total_cmp(&b.0));
            }
        }
    }

    fn collect_document(&mut self, doc_id: DocId, doc: &pimento_xml::Document) -> Vec<SymbolId> {
        let mut touched = Vec::new();
        for node_id in doc.node_ids() {
            let node = doc.node(node_id);
            let NodeKind::Element { tag, .. } = &node.kind else { continue };
            // Leaf field: exactly one child, and it is a text node.
            let [only_child] = node.children.as_slice() else { continue };
            let Some(text) = doc.node(*only_child).text() else { continue };
            let FieldValue::Num(v) = FieldValue::parse(text) else { continue };
            if v.is_nan() {
                continue;
            }
            self.by_tag.entry(*tag).or_default().push((
                v,
                ElemEntry {
                    doc: doc_id,
                    node: node_id,
                    start: node.start,
                    end: node.end,
                    level: node.level,
                },
            ));
            touched.push(*tag);
        }
        touched
    }

    fn sort_all(&mut self) {
        for list in self.by_tag.values_mut() {
            list.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
    }

    /// Elements with tag `tag` whose numeric content satisfies `op c`,
    /// sorted by value. Returns owned entries (the matching slice is
    /// usually small).
    pub fn range(&self, tag: SymbolId, op: RangeOp, c: f64) -> Vec<ElemEntry> {
        let Some(list) = self.by_tag.get(&tag) else { return Vec::new() };
        let lo = list.partition_point(|(v, _)| *v < c);
        let hi = list.partition_point(|(v, _)| *v <= c);
        let slice = match op {
            RangeOp::Lt => &list[..lo],
            RangeOp::Le => &list[..hi],
            RangeOp::Gt => &list[hi..],
            RangeOp::Ge => &list[lo..],
            RangeOp::Eq => &list[lo..hi],
        };
        slice.iter().map(|(_, e)| *e).collect()
    }

    /// Number of indexed entries for `tag`.
    pub fn count(&self, tag: SymbolId) -> usize {
        self.by_tag.get(&tag).map(Vec::len).unwrap_or(0)
    }

    /// Is anything indexed at all?
    pub fn is_empty(&self) -> bool {
        self.by_tag.values().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Collection, ValueIndex) {
        let mut c = Collection::new();
        c.add_xml(
            "<dealer><car><price>500</price></car><car><price>2500</price></car>\
             <car><price>1500</price><note>not a number</note></car></dealer>",
        )
        .unwrap();
        let v = ValueIndex::build(&c);
        (c, v)
    }

    #[test]
    fn range_scans() {
        let (c, v) = setup();
        let price = c.tag("price").unwrap();
        assert_eq!(v.count(price), 3);
        assert_eq!(v.range(price, RangeOp::Lt, 2000.0).len(), 2);
        assert_eq!(v.range(price, RangeOp::Le, 1500.0).len(), 2);
        assert_eq!(v.range(price, RangeOp::Gt, 1500.0).len(), 1);
        assert_eq!(v.range(price, RangeOp::Ge, 500.0).len(), 3);
        assert_eq!(v.range(price, RangeOp::Eq, 1500.0).len(), 1);
        assert_eq!(v.range(price, RangeOp::Eq, 999.0).len(), 0);
    }

    #[test]
    fn non_numeric_and_non_leaf_elements_skipped() {
        let (c, v) = setup();
        let note = c.tag("note").unwrap();
        assert_eq!(v.count(note), 0);
        let car = c.tag("car").unwrap();
        assert_eq!(v.count(car), 0, "cars have element children, not a single text leaf");
    }

    #[test]
    fn incremental_add_matches_rebuild() {
        let mut c = Collection::new();
        c.add_xml("<a><p>10</p></a>").unwrap();
        let mut v = ValueIndex::build(&c);
        let d1 = c.add_xml("<a><p>5</p><p>20</p></a>").unwrap();
        v.index_document(d1, c.doc(d1));
        let full = ValueIndex::build(&c);
        let p = c.tag("p").unwrap();
        assert_eq!(v.range(p, RangeOp::Le, 100.0), full.range(p, RangeOp::Le, 100.0));
        assert_eq!(v.range(p, RangeOp::Lt, 10.0).len(), 1);
    }

    #[test]
    fn unknown_tag_empty() {
        let (_, v) = setup();
        assert_eq!(v.range(SymbolId(999), RangeOp::Lt, 1.0).len(), 0);
        assert!(!v.is_empty());
    }

    #[test]
    fn currency_and_thousands_values_indexed() {
        let mut c = Collection::new();
        c.add_xml("<a><price>$500</price><mileage>50.000</mileage></a>").unwrap();
        let v = ValueIndex::build(&c);
        let price = c.tag("price").unwrap();
        let mileage = c.tag("mileage").unwrap();
        assert_eq!(v.range(price, RangeOp::Eq, 500.0).len(), 1);
        assert_eq!(v.range(mileage, RangeOp::Eq, 50_000.0).len(), 1);
    }
}
