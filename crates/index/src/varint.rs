//! Shared LEB128 varint + delta-pack codec for the columnar snapshot.
//!
//! Posting runs in the `PIMCOL4` snapshot (see [`crate::columnar`]) are
//! stored as delta-encoded varints: within one `(token, document)` run,
//! positions strictly increase and region labels / text-node ids are
//! nondecreasing (all three follow document order), so consecutive
//! differences are nonnegative and mostly tiny — one or two bytes each
//! instead of twelve. The codec is deliberately boring: unsigned LEB128
//! (7 payload bits per byte, high bit = continuation), no zigzag, because
//! no caller ever encodes a negative delta.
//!
//! Decoding is infallible-by-construction only on bytes this module
//! produced; everything here returns `Option`/`Result`-shaped outcomes so
//! corrupt snapshots surface as typed errors, never panics (the index
//! crate is a hot-path module).

/// Maximum encoded size of one `u32` varint (⌈32/7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 5;

/// Append `v` to `out` as an unsigned LEB128 varint (1–5 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode one varint from the front of `buf`, returning the value and the
/// remaining bytes. `None` on truncation, overlong encodings past 5
/// bytes, or a final byte that overflows `u32`.
pub fn get_varint(mut buf: &[u8]) -> Option<(u32, &[u8])> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT_LEN {
        let (&b, rest) = buf.split_first()?;
        buf = rest;
        let payload = (b & 0x7F) as u32;
        // The 5th byte may only carry the top 4 bits of a u32.
        if i == MAX_VARINT_LEN - 1 && payload > 0x0F {
            return None;
        }
        v |= payload << shift;
        shift += 7;
        if b & 0x80 == 0 {
            return Some((v, buf));
        }
    }
    None
}

/// Delta-pack a nondecreasing run: the first element absolute, each
/// subsequent element as its difference from the predecessor.
///
/// Panics in debug builds if `run` is not nondecreasing (the snapshot
/// writer's invariant); release builds would produce bytes that fail the
/// round-trip property, which the corruption tests catch.
pub fn put_delta_run(out: &mut Vec<u8>, run: &[u32]) {
    let mut prev = 0u32;
    for (i, &v) in run.iter().enumerate() {
        debug_assert!(i == 0 || v >= prev, "delta runs must be nondecreasing");
        put_varint(out, if i == 0 { v } else { v - prev });
        prev = v;
    }
}

/// Decode `count` delta-packed values from the front of `buf`, appending
/// the reconstructed absolutes to `into`. Returns the remaining bytes, or
/// `None` on truncation/overflow (a corrupt run).
pub fn get_delta_run<'a>(buf: &'a [u8], count: usize, into: &mut Vec<u32>) -> Option<&'a [u8]> {
    let mut rest = buf;
    let mut prev = 0u32;
    for i in 0..count {
        let (d, r) = get_varint(rest)?;
        rest = r;
        prev = if i == 0 { d } else { prev.checked_add(d)? };
        into.push(prev);
    }
    Some(rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn enc(v: u32) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, v);
        out
    }

    #[test]
    fn known_encodings() {
        assert_eq!(enc(0), [0x00]);
        assert_eq!(enc(1), [0x01]);
        assert_eq!(enc(127), [0x7F]);
        assert_eq!(enc(128), [0x80, 0x01]);
        assert_eq!(enc(300), [0xAC, 0x02]);
        assert_eq!(enc(16_383), [0xFF, 0x7F]);
        assert_eq!(enc(16_384), [0x80, 0x80, 0x01]);
        assert_eq!(enc(u32::MAX), [0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
        assert_eq!(enc(u32::MAX).len(), MAX_VARINT_LEN);
    }

    #[test]
    fn decode_leaves_tail_untouched() {
        let mut buf = enc(300);
        buf.extend_from_slice(b"tail");
        let (v, rest) = get_varint(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(rest, b"tail");
    }

    #[test]
    fn truncated_and_overlong_inputs_rejected() {
        assert_eq!(get_varint(&[]), None);
        assert_eq!(
            get_varint(&[0x80]),
            None,
            "continuation bit with no next byte"
        );
        assert_eq!(
            get_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]),
            None,
            "6-byte varint"
        );
        // 5th byte carrying more than the top 4 bits of a u32 overflows.
        assert_eq!(get_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x10]), None);
        // u32::MAX itself stays decodable.
        assert_eq!(
            get_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]).map(|(v, _)| v),
            Some(u32::MAX)
        );
    }

    #[test]
    fn empty_run_roundtrips() {
        let mut out = Vec::new();
        put_delta_run(&mut out, &[]);
        assert!(out.is_empty());
        let mut decoded = Vec::new();
        let rest = get_delta_run(&out, 0, &mut decoded).unwrap();
        assert!(rest.is_empty() && decoded.is_empty());
    }

    #[test]
    fn single_element_run_roundtrips() {
        for v in [0, 1, 127, 128, u32::MAX] {
            let mut out = Vec::new();
            put_delta_run(&mut out, &[v]);
            let mut decoded = Vec::new();
            get_delta_run(&out, 1, &mut decoded).unwrap();
            assert_eq!(decoded, [v]);
        }
    }

    #[test]
    fn max_delta_run_roundtrips() {
        // 0 → u32::MAX is the largest possible delta.
        let run = [0, u32::MAX, u32::MAX, u32::MAX];
        let mut out = Vec::new();
        put_delta_run(&mut out, &run);
        let mut decoded = Vec::new();
        get_delta_run(&out, run.len(), &mut decoded).unwrap();
        assert_eq!(decoded, run);
    }

    #[test]
    fn overflowing_delta_sum_rejected() {
        // Absolute u32::MAX followed by a delta of 1 overflows on decode.
        let mut out = Vec::new();
        put_varint(&mut out, u32::MAX);
        put_varint(&mut out, 1);
        let mut decoded = Vec::new();
        assert!(get_delta_run(&out, 2, &mut decoded).is_none());
    }

    #[test]
    fn truncated_run_rejected() {
        let mut out = Vec::new();
        put_delta_run(&mut out, &[5, 10, 500]);
        let mut decoded = Vec::new();
        assert!(get_delta_run(&out[..out.len() - 1], 3, &mut decoded).is_none());
    }

    proptest! {
        /// Any u32 round-trips through the varint codec, and the encoded
        /// length matches the 7-bits-per-byte schedule.
        #[test]
        fn varint_roundtrip(v in any::<u32>()) {
            let bytes = enc(v);
            prop_assert!(bytes.len() <= MAX_VARINT_LEN);
            let expected_len = (32 - v.leading_zeros()).div_ceil(7).max(1) as usize;
            prop_assert_eq!(bytes.len(), expected_len);
            let (decoded, rest) = get_varint(&bytes).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert!(rest.is_empty());
        }

        /// Any nondecreasing run — empty, single-element, and runs with
        /// u32::MAX-sized deltas included — round-trips through the delta
        /// pack, and concatenated runs decode independently.
        #[test]
        fn delta_run_roundtrip(raw in proptest::collection::vec(any::<u32>(), 0..64)) {
            // Sort to satisfy the nondecreasing invariant; duplicates stay
            // (delta 0 is a valid encoding).
            let mut run = raw;
            run.sort_unstable();
            let mut out = Vec::new();
            put_delta_run(&mut out, &run);
            // A second run directly after the first must not disturb it.
            put_delta_run(&mut out, &run);
            let mut decoded = Vec::new();
            let rest = get_delta_run(&out, run.len(), &mut decoded).unwrap();
            prop_assert_eq!(&decoded, &run);
            let mut decoded2 = Vec::new();
            let rest2 = get_delta_run(rest, run.len(), &mut decoded2).unwrap();
            prop_assert_eq!(&decoded2, &run);
            prop_assert!(rest2.is_empty());
        }
    }
}
