//! Adversarial-bytes fuzzing of the durable text formats (DESIGN.md
//! §17): [`ShardManifest::parse`] and [`TombstoneSet::parse`] are
//! recovery-path `panic-path` lint roots, so whatever a torn write, a
//! bit rot, or a hostile edit leaves on disk must surface as a typed
//! [`PersistError`] — never a panic — and a mutated artifact that still
//! parses must parse to *exactly* the original meaning (the crc
//! trailers make anything else a checksum mismatch).

use pimento_index::{PersistError, ShardManifest, TombstoneSet};
use proptest::prelude::*;

/// A canonical v2 manifest (generation line, tombstone sidecar column,
/// crc trailer) — the exact shape the ingest write path publishes.
fn sample_manifest() -> String {
    let text = "pimento-shards v2\n\
                generation 7\n\
                segment-g000007-000.v4.snap 0 3 segment-g000007-000.v4.snap.g000007.tomb\n\
                delta-000007.v4.snap 3 2\n";
    let crc = pimento_index::crc32(text.as_bytes());
    let full = format!("{text}crc {crc:08x}\n");
    ShardManifest::parse(&full).expect("sample manifest is valid");
    full
}

/// A canonical tombstone sidecar with its crc trailer.
fn sample_tombstones() -> String {
    let mut set = TombstoneSet::new();
    for id in [0, 1, 63, 64, 200] {
        set.insert(pimento_index::DocId(id));
    }
    set.render()
}

/// Parse either format, asserting only that the error channel is the
/// typed one (the call itself not panicking is the property proptest
/// enforces by running this at all).
fn parse_both(text: &str) -> (Result<ShardManifest, PersistError>, Result<TombstoneSet, PersistError>) {
    (ShardManifest::parse(text), TombstoneSet::parse(text))
}

proptest! {
    /// Arbitrary unicode never panics either parser.
    #[test]
    fn arbitrary_text_never_panics(text in ".*") {
        let _ = parse_both(&text);
    }

    /// Grammar-adjacent line soup (headers, counts, numbers, file-ish
    /// tokens) explores the deep paths without panicking.
    #[test]
    fn structured_line_soup_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("pimento-shards v1".to_string()),
                Just("pimento-shards v2".to_string()),
                Just("pimento-tombstones v1".to_string()),
                (0u64..100).prop_map(|g| format!("generation {g}")),
                (0u32..100).prop_map(|c| format!("count {c}")),
                (0u32..300).prop_map(|id| format!("{id}")),
                (0u32..1_000_000).prop_map(|c| format!("crc {c:08x}")),
                (0u32..1000, 0u32..50, 0u32..50)
                    .prop_map(|(f, b, d)| format!("seg{f}.v4.snap {b} {d}")),
            ],
            0..12,
        )
    ) {
        let mut text = lines.join("\n");
        text.push('\n');
        let _ = parse_both(&text);
    }

    /// A single mutated byte in a valid manifest either fails typed or
    /// parses to the original meaning — never a panic, never a silently
    /// different manifest.
    #[test]
    fn mutated_manifest_never_changes_meaning(offset in 0usize..200, delta in 1u8..=255) {
        let good = sample_manifest();
        let original = ShardManifest::parse(&good).unwrap();
        let mut bytes = good.into_bytes();
        let i = offset % bytes.len();
        bytes[i] = bytes[i].wrapping_add(delta);
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(parsed) = ShardManifest::parse(&text) {
            prop_assert_eq!(parsed.segments, original.segments);
            prop_assert_eq!(parsed.generation, original.generation);
        }
    }

    /// Same property for tombstone sidecars: the flipped-id-digit attack
    /// (`1` → `3` keeps the grammar valid) must die at the crc.
    #[test]
    fn mutated_tombstones_never_change_meaning(offset in 0usize..200, delta in 1u8..=255) {
        let good = sample_tombstones();
        let original = TombstoneSet::parse(&good).unwrap();
        let mut bytes = good.into_bytes();
        let i = offset % bytes.len();
        bytes[i] = bytes[i].wrapping_add(delta);
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(parsed) = TombstoneSet::parse(&text) {
            prop_assert_eq!(parsed, original);
        }
    }

    /// Every truncation of a valid artifact (a torn write cut anywhere,
    /// not just at a line boundary) is rejected or bit-meaning-identical.
    #[test]
    fn truncations_never_change_meaning(cut_manifest in 0usize..200, cut_tomb in 0usize..100) {
        let manifest = sample_manifest();
        let original = ShardManifest::parse(&manifest).unwrap();
        let cut = cut_manifest % manifest.len();
        if let Ok(parsed) = ShardManifest::parse(&manifest[..cut]) {
            prop_assert_eq!(parsed.segments, original.segments);
            prop_assert_eq!(parsed.generation, original.generation);
        }

        let tomb = sample_tombstones();
        let orig_set = TombstoneSet::parse(&tomb).unwrap();
        let cut = cut_tomb % tomb.len();
        if let Ok(parsed) = TombstoneSet::parse(&tomb[..cut]) {
            prop_assert_eq!(parsed, orig_set);
        }
    }
}
