//! # pimento-ingest
//!
//! The online write path of the PIMENTO reproduction (DESIGN.md §16):
//! a back office that turns a read-only scatter-gather engine into a
//! live corpus without giving up any of its reader guarantees.
//!
//! Three pieces:
//!
//! * [`LiveEngine`] — the swap cell. Readers load one `Arc<Engine>`
//!   per request; publication is an atomic pointer swap stamped with a
//!   monotonically increasing **corpus generation**.
//! * [`SegmentStore`] — crash-safe persistence. Generation-stamped
//!   segment files and tombstone sidecars, committed by an atomic
//!   `MANIFEST` rename (temp → fsync → rename → dir-fsync); a restart
//!   recovers exactly the last committed generation.
//! * [`Ingestor`] — the single writer. Adds become immutable delta
//!   segments that reuse the full-corpus symbol table and recompute
//!   corpus-global scoring stats (so compiled plans stay
//!   segment-agnostic and results stay bit-identical to a monolithic
//!   rebuild); deletes become tombstone bitmaps consulted at scatter
//!   time; a background merger compacts both back into the doc-range
//!   layout. Ordering is always persist-then-publish.
//!
//! ```
//! use pimento::Engine;
//! use pimento_index::Collection;
//! use pimento_ingest::{Ingestor, IngestConfig, LiveEngine};
//! use std::sync::Arc;
//!
//! let mut coll = Collection::new();
//! coll.add_xml("<library><book><title>seed</title></book></library>").unwrap();
//! let live = Arc::new(LiveEngine::new(Engine::new(coll)));
//! let ingestor = Ingestor::new(Arc::clone(&live), IngestConfig::default()).unwrap();
//!
//! let receipt = ingestor
//!     .add_documents(&["<library><book><title>new arrival</title></book></library>"])
//!     .unwrap();
//! assert_eq!(receipt.generation, 1);
//! assert_eq!(live.load().num_docs(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;
pub mod store;
pub mod writer;

pub use live::LiveEngine;
pub use store::SegmentStore;
pub use writer::{spawn_merger, IngestConfig, IngestReceipt, Ingestor, MergerHandle};

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use pimento::Engine;
    use pimento_index::Collection;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn doc(i: usize) -> String {
        format!(
            "<book><title>title{i}</title><body>shared word{} extra</body></book>",
            i % 3
        )
    }

    fn seed_engine(n: usize) -> Engine {
        let mut coll = Collection::new();
        for i in 0..n {
            coll.add_xml(&doc(i)).unwrap();
        }
        Engine::new(coll)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pimento-ingest-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Top-k scores against a query, as raw bits — the bit-identity
    /// oracle used across the ingest suite.
    fn score_bits(engine: &Engine, query: &str) -> Vec<(u32, u32, u64)> {
        let results = engine
            .search(
                query,
                &pimento::profile::UserProfile::default(),
                &pimento::SearchOptions::top(64),
            )
            .unwrap();
        results
            .hits
            .iter()
            .map(|h| (h.elem.doc.0, h.elem.node.0, h.s.to_bits()))
            .collect()
    }

    /// Monolithic rebuild of the same live corpus: the ground truth
    /// every published generation must match bit-for-bit.
    fn monolithic(docs: &[String]) -> Engine {
        let mut coll = Collection::new();
        for d in docs {
            coll.add_xml(d).unwrap();
        }
        Engine::new(coll)
    }

    #[test]
    fn adds_publish_and_match_monolithic_rebuild() {
        let live = Arc::new(LiveEngine::new(seed_engine(3)));
        let ing = Ingestor::new(Arc::clone(&live), IngestConfig::default()).unwrap();
        let r1 = ing.add_documents(&[doc(3), doc(4)]).unwrap();
        assert_eq!((r1.generation, r1.docs), (1, 2));
        let r2 = ing.add_documents(&[doc(5)]).unwrap();
        assert_eq!((r2.generation, r2.docs), (2, 1));

        let engine = live.load();
        assert_eq!(engine.num_docs(), 6);
        assert_eq!(engine.shard_count(), 3, "one delta segment per batch");

        let all: Vec<String> = (0..6).map(doc).collect();
        let mono = monolithic(&all);
        for q in ["//book", r#"//book[ftcontains(., "shared")]"#] {
            assert_eq!(score_bits(&engine, q), score_bits(&mono, q), "query {q}");
        }
    }

    #[test]
    fn deletes_hide_immediately_and_merge_compacts() {
        let live = Arc::new(LiveEngine::new(seed_engine(4)));
        let cfg = IngestConfig {
            compact_shards: 2,
            ..IngestConfig::default()
        };
        let ing = Ingestor::new(Arc::clone(&live), cfg).unwrap();
        ing.add_documents(&[doc(4), doc(5)]).unwrap();
        let r = ing.delete_documents(&[1, 4, 1]).unwrap();
        assert_eq!(r.docs, 2, "duplicate ids count once");

        let engine = live.load();
        assert_eq!(engine.num_docs(), 6, "tombstones hide, not renumber");
        assert_eq!(engine.live_docs(), 4);
        let hits = score_bits(&engine, "//book");
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|&(d, _, _)| d != 1 && d != 4));

        let merged = ing.merge_now().unwrap().expect("work to do");
        assert_eq!(merged.docs, 4);
        let engine = live.load();
        assert_eq!(engine.num_docs(), 4, "compaction renumbers");
        assert_eq!(engine.deleted_docs(), 0);
        assert_eq!(engine.shard_count(), 2);

        // Post-merge scores are bit-identical to a monolithic build of
        // the surviving documents in order.
        let survivors: Vec<String> = [0usize, 2, 3, 5].iter().map(|&i| doc(i)).collect();
        let mono = monolithic(&survivors);
        assert_eq!(score_bits(&engine, "//book"), score_bits(&mono, "//book"));
        assert!(ing.merge_now().unwrap().is_none(), "nothing left to merge");
    }

    #[test]
    fn bad_batches_fail_typed_and_change_nothing() {
        let live = Arc::new(LiveEngine::new(seed_engine(2)));
        let ing = Ingestor::new(Arc::clone(&live), IngestConfig::default()).unwrap();
        let empty: &[&str] = &[];
        assert!(matches!(
            ing.add_documents(empty),
            Err(pimento::Error::Ingest(_))
        ));
        assert!(matches!(
            ing.add_documents(&["<unclosed>"]),
            Err(pimento::Error::Xml(_))
        ));
        assert!(matches!(
            ing.delete_documents(&[99]),
            Err(pimento::Error::Ingest(_))
        ));
        let engine = live.load();
        assert_eq!(engine.generation(), 0, "failed writes publish nothing");
        assert_eq!(engine.num_docs(), 2);
    }

    #[test]
    fn persistence_recovers_last_published_generation() {
        let dir = tmp_dir("recover");
        let cfg = IngestConfig {
            data_dir: Some(dir.clone()),
            ..IngestConfig::default()
        };
        let live = Arc::new(LiveEngine::new(seed_engine(3)));
        let ing = Ingestor::new(Arc::clone(&live), cfg.clone()).unwrap();
        ing.add_documents(&[doc(3)]).unwrap();
        ing.delete_documents(&[0]).unwrap();
        let served = live.load();
        assert_eq!(served.generation(), 2);

        // "Restart": recover from the directory alone.
        let store = SegmentStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.generation(), 2);
        assert_eq!(recovered.num_docs(), 4);
        assert_eq!(recovered.deleted_docs(), 1);
        assert_eq!(
            score_bits(&recovered, "//book"),
            score_bits(&served, "//book"),
            "recovered corpus serves identical answers"
        );

        // Re-attaching a writer to the recovered engine adopts the
        // manifest without rewriting anything.
        let live2 = Arc::new(LiveEngine::new(recovered));
        let ing2 = Ingestor::new(Arc::clone(&live2), cfg).unwrap();
        ing2.add_documents(&[doc(9)]).unwrap();
        assert_eq!(live2.load().generation(), 3);
        drop(ing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merger_thread_compacts_at_threshold_and_shuts_down() {
        let live = Arc::new(LiveEngine::new(seed_engine(2)));
        let cfg = IngestConfig {
            merge_threshold: 2,
            compact_shards: 1,
            ..IngestConfig::default()
        };
        let ing = Arc::new(Ingestor::new(Arc::clone(&live), cfg).unwrap());
        let handle = spawn_merger(&ing).unwrap();
        ing.add_documents(&[doc(2)]).unwrap();
        ing.add_documents(&[doc(3)]).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while ing.merges() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(ing.merges(), 1, "merger compacted at the threshold");
        let engine = live.load();
        assert_eq!(engine.shard_count(), 1);
        assert_eq!(engine.num_docs(), 4);
        ing.shutdown();
        handle.join();
    }

    #[test]
    fn publish_hook_sees_every_generation() {
        let live = Arc::new(LiveEngine::new(seed_engine(2)));
        let ing = Ingestor::new(Arc::clone(&live), IngestConfig::default()).unwrap();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        ing.set_on_publish(move |generation| sink.lock().unwrap().push(generation));
        ing.add_documents(&[doc(2)]).unwrap();
        ing.delete_documents(&[0]).unwrap();
        ing.merge_now().unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
    }
}
