//! The live-engine swap cell: readers load one `Arc<Engine>` per
//! request and keep it for the request's whole lifetime, so a publish
//! mid-request can never mix two generations in one answer.

use pimento::Engine;
use std::sync::{Arc, RwLock};

/// A shared cell holding the currently published [`Engine`].
///
/// Publication is an atomic pointer swap: the writer builds the next
/// generation off to the side (segment construction, durable
/// persistence) and only then calls [`LiveEngine::swap`]. Readers that
/// loaded the previous `Arc` finish their request against it unharmed;
/// new requests observe the new generation. The lock is held only for
/// the clone/store itself — never across indexing or I/O.
#[derive(Debug)]
pub struct LiveEngine {
    inner: RwLock<Arc<Engine>>,
}

impl LiveEngine {
    /// Wrap an engine as the initial published generation.
    pub fn new(engine: Engine) -> LiveEngine {
        LiveEngine::from_arc(Arc::new(engine))
    }

    /// Wrap an already-shared engine as the initial published generation.
    pub fn from_arc(engine: Arc<Engine>) -> LiveEngine {
        LiveEngine {
            inner: RwLock::new(engine),
        }
    }

    /// The currently published engine. A poisoned lock is recovered —
    /// the cell only ever holds a fully published `Arc`, so the value is
    /// valid even if some reader panicked while holding the guard.
    pub fn load(&self) -> Arc<Engine> {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&guard)
    }

    /// Publish `next` as the live engine, returning the previous one.
    pub fn swap(&self, next: Arc<Engine>) -> Arc<Engine> {
        let mut guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *guard, next)
    }

    /// Generation of the currently published engine.
    pub fn generation(&self) -> u64 {
        self.load().generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;

    fn engine(xml: &str) -> Engine {
        let mut coll = Collection::new();
        coll.add_xml(xml).unwrap();
        Engine::new(coll)
    }

    #[test]
    fn swap_publishes_and_returns_previous() {
        let live = LiveEngine::new(engine("<a><b>one</b></a>"));
        assert_eq!(live.generation(), 0);
        let before = live.load();
        let next = Arc::new(engine("<a><b>two</b></a>").at_generation(1));
        let prev = live.swap(Arc::clone(&next));
        assert!(Arc::ptr_eq(&prev, &before), "swap returns the old engine");
        assert!(Arc::ptr_eq(&live.load(), &next));
        assert_eq!(live.generation(), 1);
        // The old Arc is still fully usable by in-flight requests.
        assert_eq!(before.num_docs(), 1);
    }
}
