//! Durable segment store: the crash-safety half of the write path
//! (DESIGN.md §16).
//!
//! Every publish persists **before** the in-memory swap, with the same
//! discipline as the profile store: write each file to a `.tmp`
//! sibling, fsync, atomically rename into place, fsync the directory;
//! the `MANIFEST` rename comes last and is the commit point. File
//! names are generation-stamped ([`ShardManifest::delta_file_name`],
//! [`ShardManifest::generation_file_name`], generation-suffixed
//! tombstone sidecars), so no publish ever rewrites a file the
//! previous manifest references — whatever manifest a restart finds,
//! every file it names is exactly as it was when that manifest was
//! committed. Superseded files are garbage-collected only *after* a
//! successful swap.
//!
//! All I/O goes through a [`Vfs`] handle (DESIGN.md §17): [`StdVfs`]
//! in production, `SimVfs` in the crash-enumeration harness. `ENOSPC`
//! surfaces as the typed [`Error::DiskFull`] with the temp file
//! cleaned up, so the old generation keeps serving and a retry after
//! space frees can succeed.

use pimento::{Engine, Error};
use pimento_faults::vfs::{self, StdVfs, Vfs};
use pimento_index::segment::{ShardManifest, MANIFEST_FILE};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A snapshot directory owned by the ingest pipeline.
#[derive(Debug, Clone)]
pub struct SegmentStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

/// Wrap an I/O error for `path`, classifying `ENOSPC` as the typed
/// [`Error::DiskFull`].
fn classify(path: &Path, e: &std::io::Error) -> Error {
    if vfs::is_disk_full(e) {
        Error::DiskFull(format!("{}: {e}", path.display()))
    } else {
        Error::Io(format!("{}: {e}", path.display()))
    }
}

impl SegmentStore {
    /// Open (creating if needed) the store directory on the real
    /// filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentStore, Error> {
        SegmentStore::open_with(Arc::new(StdVfs), dir)
    }

    /// Open the store against an explicit [`Vfs`] — the entry point the
    /// crash harness uses to run the whole commit protocol on `SimVfs`.
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: impl Into<PathBuf>) -> Result<SegmentStore, Error> {
        let dir = dir.into();
        vfs.create_dir_all(&dir).map_err(|e| classify(&dir, &e))?;
        Ok(SegmentStore { dir, vfs })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem this store talks to.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Whether a committed manifest exists (i.e. recovery has something
    /// to recover).
    pub fn has_manifest(&self) -> bool {
        self.vfs.exists(&self.dir.join(MANIFEST_FILE))
    }

    /// Parse the committed manifest.
    pub fn manifest(&self) -> Result<ShardManifest, Error> {
        let path = self.dir.join(MANIFEST_FILE);
        let raw = self.vfs.read(&path).map_err(|e| classify(&path, &e))?;
        let text = String::from_utf8(raw).map_err(|_| {
            Error::Snapshot(pimento_index::PersistError::BadManifest(
                "manifest is not UTF-8",
            ))
        })?;
        Ok(ShardManifest::parse(&text)?)
    }

    /// Reopen the last committed generation. Torn or truncated
    /// artifacts surface as typed errors — never a panic — so callers
    /// can quarantine and fall back (see
    /// [`SegmentStore::quarantine_corrupt`]).
    pub fn recover(&self) -> Result<Engine, Error> {
        Engine::from_sharded_dir_vfs(&*self.vfs, &self.dir)
    }

    /// After [`SegmentStore::recover`] fails, move every artifact of
    /// the damaged generation (`MANIFEST`, segment files, sidecars)
    /// aside as `*.quarantined` so a fresh bootstrap can proceed and an
    /// operator can still inspect the wreckage. Quarantine-not-crash:
    /// this is best-effort and never fails — it returns how many
    /// artifacts were moved.
    pub fn quarantine_corrupt(&self, cap: vfs::QuarantineCap) -> usize {
        let Ok(files) = self.vfs.list(&self.dir) else {
            return 0;
        };
        let mut moved = 0;
        for path in files {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let ours = name == MANIFEST_FILE
                || name.ends_with(".snap")
                || name.ends_with(".tomb")
                || name.ends_with(".tmp");
            if ours && vfs::quarantine_file(&*self.vfs, &path, cap).is_ok() {
                moved += 1;
            }
        }
        moved
    }

    /// Durably write one file: temp → fsync → atomic rename → directory
    /// fsync, with the temp removed on failure. Under the
    /// `fault-injection` feature the three I/O steps are named fault
    /// points (`ingest.persist.write` / `.fsync` / `.rename`).
    fn write_durable(&self, name: &str, bytes: &[u8]) -> Result<(), Error> {
        #[cfg(feature = "fault-injection")]
        for step in ["write", "fsync", "rename"] {
            if pimento_faults::should_fire(&format!("ingest.persist.{step}")) {
                return Err(Error::Io(format!(
                    "fault injected: ingest.persist.{step} ({name})"
                )));
            }
        }
        vfs::write_durable(&*self.vfs, &self.dir, name, bytes)
            .map_err(|e| classify(&self.dir.join(name), &e))
    }

    /// Durably persist `engine` under the given per-segment `files`.
    /// Only the segments listed in `write_segments` have their columnar
    /// files written (the rest are already on disk under the same
    /// names); tombstone sidecars and the manifest are always
    /// rewritten. Write order is the commit protocol: segment files,
    /// then sidecars, then `MANIFEST` last — an interruption anywhere
    /// leaves the previous manifest (and every file it names) intact.
    pub fn publish(
        &self,
        engine: &Engine,
        files: &[String],
        write_segments: &[usize],
    ) -> Result<ShardManifest, Error> {
        let manifest = engine.manifest_for(files)?;
        for &i in write_segments {
            let entry = manifest
                .segments
                .get(i)
                .ok_or(Error::Shard("segment index out of range"))?;
            let data = engine.segment_bytes(i)?;
            self.write_durable(&entry.file, &data)?;
        }
        for (entry, seg) in manifest.segments.iter().zip(engine.segments()) {
            if let (Some(name), Some(tombs)) = (&entry.tombstones, seg.db().tombstones()) {
                self.write_durable(name, tombs.render().as_bytes())?;
            }
        }
        self.write_durable(MANIFEST_FILE, manifest.render().as_bytes())?;
        Ok(manifest)
    }

    /// Best-effort removal of snapshot artifacts no longer referenced
    /// by `manifest` (superseded segments, old tombstone sidecars,
    /// stale `.tmp` leftovers). Returns how many files were removed.
    /// Errors are swallowed: gc must never compromise a committed
    /// generation, and an unreferenced file left behind is only wasted
    /// space. `*.quarantined` files are not gc'd here; they age out
    /// under the quarantine cap instead.
    pub fn gc(&self, manifest: &ShardManifest) -> usize {
        let mut keep: Vec<&str> = vec![MANIFEST_FILE];
        for entry in &manifest.segments {
            keep.push(&entry.file);
            if let Some(t) = &entry.tombstones {
                keep.push(t);
            }
        }
        let Ok(entries) = self.vfs.list(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let ours = name.ends_with(".snap")
                || name.ends_with(".tomb")
                || name.ends_with(".tmp")
                || name == MANIFEST_FILE;
            if ours && !keep.contains(&name) && self.vfs.remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;
    use std::fs;

    fn engine(n: usize) -> Engine {
        let mut coll = Collection::new();
        for i in 0..n {
            coll.add_xml(&format!("<doc><t>word{i} shared</t></doc>"))
                .unwrap();
        }
        Engine::new(coll)
    }

    #[test]
    fn publish_then_recover_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pimento-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SegmentStore::open(&dir).unwrap();
        assert!(!store.has_manifest());
        let eng = engine(4).at_generation(3);
        let files = vec![ShardManifest::generation_file_name(3, 0)];
        let manifest = store.publish(&eng, &files, &[0]).unwrap();
        assert!(store.has_manifest());
        assert_eq!(store.manifest().unwrap(), manifest);
        let back = store.recover().unwrap();
        assert_eq!(back.generation(), 3);
        assert_eq!(back.num_docs(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_only_unreferenced_artifacts() {
        let dir = std::env::temp_dir().join(format!("pimento-store-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SegmentStore::open(&dir).unwrap();
        let eng = engine(2);
        let files = vec![ShardManifest::generation_file_name(0, 0)];
        let manifest = store.publish(&eng, &files, &[0]).unwrap();
        fs::write(dir.join("delta-000009.v4.snap"), b"stale").unwrap();
        fs::write(dir.join("something.tmp"), b"stale").unwrap();
        fs::write(dir.join("notes.txt"), b"not ours").unwrap();
        assert_eq!(store.gc(&manifest), 2);
        assert!(dir.join("notes.txt").exists(), "foreign files untouched");
        assert!(dir.join(&files[0]).exists());
        assert!(store.has_manifest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_typed_and_quarantinable() {
        let dir = std::env::temp_dir().join(format!("pimento-store-qc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SegmentStore::open(&dir).unwrap();
        let eng = engine(2);
        let files = vec![ShardManifest::generation_file_name(0, 0)];
        store.publish(&eng, &files, &[0]).unwrap();
        fs::write(dir.join(MANIFEST_FILE), b"pimento-shards v9\ngarbage").unwrap();
        let err = store.recover().unwrap_err();
        assert!(matches!(err, Error::Snapshot(_)), "typed: {err:?}");
        let moved = store.quarantine_corrupt(vfs::QuarantineCap::default());
        assert!(moved >= 2, "manifest + segment moved aside: {moved}");
        assert!(!store.has_manifest(), "dir ready for a fresh bootstrap");
        let _ = fs::remove_dir_all(&dir);
    }
}
