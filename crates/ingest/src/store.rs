//! Durable segment store: the crash-safety half of the write path
//! (DESIGN.md §16).
//!
//! Every publish persists **before** the in-memory swap, with the same
//! discipline as the profile store: write each file to a `.tmp`
//! sibling, fsync, atomically rename into place, fsync the directory;
//! the `MANIFEST` rename comes last and is the commit point. File
//! names are generation-stamped ([`ShardManifest::delta_file_name`],
//! [`ShardManifest::generation_file_name`], generation-suffixed
//! tombstone sidecars), so no publish ever rewrites a file the
//! previous manifest references — whatever manifest a restart finds,
//! every file it names is exactly as it was when that manifest was
//! committed. Superseded files are garbage-collected only *after* a
//! successful swap.

use pimento::{Engine, Error};
use pimento_index::segment::{ShardManifest, MANIFEST_FILE};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A snapshot directory owned by the ingest pipeline.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
}

impl SegmentStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentStore, Error> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| Error::Io(format!("{}: {e}", dir.display())))?;
        Ok(SegmentStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a committed manifest exists (i.e. recovery has something
    /// to recover).
    pub fn has_manifest(&self) -> bool {
        self.dir.join(MANIFEST_FILE).is_file()
    }

    /// Parse the committed manifest.
    pub fn manifest(&self) -> Result<ShardManifest, Error> {
        let path = self.dir.join(MANIFEST_FILE);
        let text =
            fs::read_to_string(&path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        Ok(ShardManifest::parse(&text)?)
    }

    /// Reopen the last committed generation.
    pub fn recover(&self) -> Result<Engine, Error> {
        Engine::from_sharded_dir(&self.dir)
    }

    /// Durably write one file: temp → fsync → atomic rename → directory
    /// fsync. Under the `fault-injection` feature the three I/O steps
    /// are named fault points (`ingest.persist.write` / `.fsync` /
    /// `.rename`).
    fn write_durable(&self, name: &str, bytes: &[u8]) -> Result<(), Error> {
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        #[cfg(feature = "fault-injection")]
        if pimento_faults::should_fire("ingest.persist.write") {
            return Err(Error::Io(format!(
                "fault injected: ingest.persist.write ({name})"
            )));
        }
        let mut f =
            File::create(&tmp).map_err(|e| Error::Io(format!("{}: {e}", tmp.display())))?;
        f.write_all(bytes)
            .map_err(|e| Error::Io(format!("{}: {e}", tmp.display())))?;
        #[cfg(feature = "fault-injection")]
        if pimento_faults::should_fire("ingest.persist.fsync") {
            return Err(Error::Io(format!(
                "fault injected: ingest.persist.fsync ({name})"
            )));
        }
        f.sync_all()
            .map_err(|e| Error::Io(format!("{}: {e}", tmp.display())))?;
        drop(f);
        #[cfg(feature = "fault-injection")]
        if pimento_faults::should_fire("ingest.persist.rename") {
            return Err(Error::Io(format!(
                "fault injected: ingest.persist.rename ({name})"
            )));
        }
        fs::rename(&tmp, &path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        // Make the rename durable. Directory fsync is best-effort: some
        // filesystems refuse to open a directory for reading, and the
        // data file itself is already safe on disk.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Durably persist `engine` under the given per-segment `files`.
    /// Only the segments listed in `write_segments` have their columnar
    /// files written (the rest are already on disk under the same
    /// names); tombstone sidecars and the manifest are always
    /// rewritten. Write order is the commit protocol: segment files,
    /// then sidecars, then `MANIFEST` last — an interruption anywhere
    /// leaves the previous manifest (and every file it names) intact.
    pub fn publish(
        &self,
        engine: &Engine,
        files: &[String],
        write_segments: &[usize],
    ) -> Result<ShardManifest, Error> {
        let manifest = engine.manifest_for(files)?;
        for &i in write_segments {
            let entry = manifest
                .segments
                .get(i)
                .ok_or(Error::Shard("segment index out of range"))?;
            let data = engine.segment_bytes(i)?;
            self.write_durable(&entry.file, &data)?;
        }
        for (entry, seg) in manifest.segments.iter().zip(engine.segments()) {
            if let (Some(name), Some(tombs)) = (&entry.tombstones, seg.db().tombstones()) {
                self.write_durable(name, tombs.render().as_bytes())?;
            }
        }
        self.write_durable(MANIFEST_FILE, manifest.render().as_bytes())?;
        Ok(manifest)
    }

    /// Best-effort removal of snapshot artifacts no longer referenced
    /// by `manifest` (superseded segments, old tombstone sidecars,
    /// stale `.tmp` leftovers). Returns how many files were removed.
    /// Errors are swallowed: gc must never compromise a committed
    /// generation, and an unreferenced file left behind is only wasted
    /// space.
    pub fn gc(&self, manifest: &ShardManifest) -> usize {
        let mut keep: Vec<&str> = vec![MANIFEST_FILE];
        for entry in &manifest.segments {
            keep.push(&entry.file);
            if let Some(t) = &entry.tombstones {
                keep.push(t);
            }
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let ours = name.ends_with(".snap")
                || name.ends_with(".tomb")
                || name.ends_with(".tmp")
                || name == MANIFEST_FILE;
            if ours && !keep.contains(&name) && fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_index::Collection;

    fn engine(n: usize) -> Engine {
        let mut coll = Collection::new();
        for i in 0..n {
            coll.add_xml(&format!("<doc><t>word{i} shared</t></doc>"))
                .unwrap();
        }
        Engine::new(coll)
    }

    #[test]
    fn publish_then_recover_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pimento-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SegmentStore::open(&dir).unwrap();
        assert!(!store.has_manifest());
        let eng = engine(4).at_generation(3);
        let files = vec![ShardManifest::generation_file_name(3, 0)];
        let manifest = store.publish(&eng, &files, &[0]).unwrap();
        assert!(store.has_manifest());
        assert_eq!(store.manifest().unwrap(), manifest);
        let back = store.recover().unwrap();
        assert_eq!(back.generation(), 3);
        assert_eq!(back.num_docs(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_only_unreferenced_artifacts() {
        let dir = std::env::temp_dir().join(format!("pimento-store-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SegmentStore::open(&dir).unwrap();
        let eng = engine(2);
        let files = vec![ShardManifest::generation_file_name(0, 0)];
        let manifest = store.publish(&eng, &files, &[0]).unwrap();
        fs::write(dir.join("delta-000009.v4.snap"), b"stale").unwrap();
        fs::write(dir.join("something.tmp"), b"stale").unwrap();
        fs::write(dir.join("notes.txt"), b"not ours").unwrap();
        assert_eq!(store.gc(&manifest), 2);
        assert!(dir.join("notes.txt").exists(), "foreign files untouched");
        assert!(dir.join(&files[0]).exists());
        assert!(store.has_manifest());
        let _ = fs::remove_dir_all(&dir);
    }
}
