//! The single-writer ingest pipeline (DESIGN.md §16).
//!
//! One [`Ingestor`] owns the write path for a [`LiveEngine`]: every
//! mutation — add batch, delete batch, compaction — runs under one
//! writer mutex, builds the next generation as a pure transform of the
//! current engine ([`pimento::Engine::with_ingested`] /
//! [`pimento::Engine::with_deletes`] / [`pimento::Engine::compacted`]),
//! durably persists it when a data directory is configured, and only
//! then publishes it with an atomic swap.
//! Readers never wait on the writer; the writer never blocks a query.
//!
//! Crash matrix (persist-then-publish):
//!
//! | interrupted at            | disk state on restart                |
//! |---------------------------|--------------------------------------|
//! | building the next engine  | previous generation, fully intact    |
//! | writing segments/sidecars | previous manifest + orphan new files |
//! | `MANIFEST` rename         | previous manifest + orphan new files |
//! | after commit, before swap | **new** generation (never acked —    |
//! |                           | recovering it is a completed write)  |
//!
//! Orphans are swept by [`SegmentStore::gc`] after the next successful
//! publish; recovery itself never deletes anything.

use crate::live::LiveEngine;
use crate::store::SegmentStore;
use pimento::Error;
use pimento_index::segment::ShardManifest;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Configuration for an [`Ingestor`].
#[derive(Debug, Clone, Default)]
pub struct IngestConfig {
    /// Where to durably persist published generations. `None` keeps the
    /// corpus memory-only (a restart reverts to the boot-time corpus).
    pub data_dir: Option<PathBuf>,
    /// Compact once this many delta segments have accumulated
    /// (0 disables automatic merging; [`Ingestor::merge_now`] still
    /// works).
    pub merge_threshold: usize,
    /// How many doc-range segments a compaction rebuilds into
    /// (0 or 1 → monolithic).
    pub compact_shards: usize,
    /// Filesystem the store talks to. `None` uses the real filesystem;
    /// the crash-enumeration harness points this at a `SimVfs`.
    pub vfs: Option<Arc<dyn pimento_faults::vfs::Vfs>>,
}

/// What a successful write published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The corpus generation this write created.
    pub generation: u64,
    /// Documents added (for adds), newly deleted (for deletes — ids
    /// already deleted or repeated in the batch don't count), or live
    /// documents (for compactions).
    pub docs: usize,
}

/// Writer-side bookkeeping, guarded by the single writer mutex.
#[derive(Debug)]
struct WriterState {
    /// Per-segment file names aligned with the live engine's segments.
    /// Maintained only when a [`SegmentStore`] is configured.
    files: Vec<String>,
    /// Delta segments published since the last compaction.
    deltas: usize,
    /// Tells the background merger to exit.
    shutdown: bool,
}

type PublishHook = Box<dyn Fn(u64) + Send + Sync>;

/// The single-writer back office: serializes all mutations, persists
/// before publishing, and wakes the background merger when enough
/// deltas accumulate.
pub struct Ingestor {
    live: Arc<LiveEngine>,
    store: Option<SegmentStore>,
    merge_threshold: usize,
    compact_shards: usize,
    state: Mutex<WriterState>,
    wake: Condvar,
    on_publish: Mutex<Option<PublishHook>>,
    merges: AtomicU64,
    merge_failures: AtomicU64,
}

impl std::fmt::Debug for Ingestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ingestor")
            .field("store", &self.store)
            .field("merge_threshold", &self.merge_threshold)
            .field("compact_shards", &self.compact_shards)
            .finish_non_exhaustive()
    }
}

impl Ingestor {
    /// Attach a writer to a live engine. With a data directory
    /// configured this also brings the disk in line with the live
    /// engine: if the committed manifest already describes exactly this
    /// engine (same generation, layout, and doc count — the recovery
    /// path), it is adopted as-is; anything else (fresh directory, or a
    /// boot that ignored the directory's contents) is overwritten by a
    /// full bootstrap publish so a restart recovers what is being
    /// served.
    pub fn new(live: Arc<LiveEngine>, cfg: IngestConfig) -> Result<Ingestor, Error> {
        let store = cfg
            .data_dir
            .map(|dir| match cfg.vfs {
                Some(vfs) => SegmentStore::open_with(vfs, dir),
                None => SegmentStore::open(dir),
            })
            .transpose()?;
        let mut files = Vec::new();
        if let Some(store) = &store {
            let engine = live.load();
            let adopted = store
                .manifest()
                .ok()
                .filter(|m| {
                    m.generation == engine.generation()
                        && m.segments.len() == engine.shard_count()
                        && m.num_docs() as usize == engine.num_docs()
                })
                .map(|m| m.segments.into_iter().map(|e| e.file).collect::<Vec<_>>());
            files = match adopted {
                Some(files) => files,
                None => {
                    let files: Vec<String> = (0..engine.shard_count())
                        .map(|i| ShardManifest::generation_file_name(engine.generation(), i))
                        .collect();
                    let all: Vec<usize> = (0..engine.shard_count()).collect();
                    let manifest = store.publish(&engine, &files, &all)?;
                    store.gc(&manifest);
                    files
                }
            };
        }
        Ok(Ingestor {
            live,
            store,
            merge_threshold: cfg.merge_threshold,
            compact_shards: cfg.compact_shards,
            state: Mutex::new(WriterState {
                files,
                deltas: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            on_publish: Mutex::new(None),
            merges: AtomicU64::new(0),
            merge_failures: AtomicU64::new(0),
        })
    }

    /// The engine cell this writer publishes to.
    pub fn live(&self) -> &Arc<LiveEngine> {
        &self.live
    }

    /// The durable store, when persistence is configured. The scrubber
    /// reads (and quarantines) on-disk artifacts through this.
    pub fn store(&self) -> Option<&SegmentStore> {
        self.store.as_ref()
    }

    /// Re-persist the entire live generation to disk — the scrubber's
    /// repair path after quarantining a damaged artifact. Takes the
    /// writer lock so it cannot interleave with a publish, then
    /// rewrites every segment file, sidecar and the manifest from the
    /// in-memory engine (which *is* the last good generation: publishes
    /// swap it in only after a durable commit). Returns `false` when no
    /// store is configured.
    pub fn repair_persist(&self) -> Result<bool, Error> {
        let Some(store) = &self.store else {
            return Ok(false);
        };
        let mut state = self.lock_state();
        let engine = self.live.load();
        let files = if state.files.len() == engine.shard_count() {
            state.files.clone()
        } else {
            (0..engine.shard_count())
                .map(|i| ShardManifest::generation_file_name(engine.generation(), i))
                .collect()
        };
        let all: Vec<usize> = (0..engine.shard_count()).collect();
        let manifest = store.publish(&engine, &files, &all)?;
        state.files = files;
        store.gc(&manifest);
        Ok(true)
    }

    /// Register a callback invoked (under the writer lock) after every
    /// successful publish with the new generation — the serving layer
    /// uses this to invalidate prepared-plan caches, including for
    /// publishes the background merger makes on its own.
    pub fn set_on_publish(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        let mut slot = self.on_publish.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Box::new(hook));
    }

    /// Compactions performed (including by the background merger).
    pub fn merges(&self) -> u64 {
        self.merges.load(Ordering::Relaxed)
    }

    /// Background compactions that failed (retried on the next wake).
    pub fn merge_failures(&self) -> u64 {
        self.merge_failures.load(Ordering::Relaxed)
    }

    /// Take the writer lock. Poisoning is recovered: a writer panic can
    /// only happen before any state mutation (the transform + persist
    /// phases), so the state is still the last published one.
    fn lock_state(&self) -> MutexGuard<'_, WriterState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Named panic fault point for the chaos suite: dies *inside* the
    /// writer, after taking the lock, to prove writer panics neither
    /// corrupt the served corpus nor wedge later writes.
    fn fault_panic_point(&self) {
        #[cfg(feature = "fault-injection")]
        if pimento_faults::should_fire("ingest.writer.panic") {
            panic!("fault injected: ingest.writer.panic");
        }
    }

    /// Named crash fault point between durable commit and in-memory
    /// publish: the generation is on disk but was never acked or
    /// served. Restart recovers it — a completed durable write.
    fn fault_crash_point(&self) -> Result<(), Error> {
        #[cfg(feature = "fault-injection")]
        if pimento_faults::should_fire("ingest.publish.crash") {
            return Err(Error::Io(
                "fault injected: ingest.publish.crash (committed but not published)".into(),
            ));
        }
        Ok(())
    }

    fn notify_published(&self, generation: u64) {
        let slot = self.on_publish.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hook) = slot.as_ref() {
            hook(generation);
        }
    }

    /// Parse, index, and publish a batch of XML documents as one delta
    /// segment. Returns the receipt once the new generation is durable
    /// (when persistence is configured) *and* visible to readers.
    pub fn add_documents<S: AsRef<str>>(&self, docs: &[S]) -> Result<IngestReceipt, Error> {
        let mut state = self.lock_state();
        self.fault_panic_point();
        let engine = self.live.load();
        let next = engine.with_ingested(docs)?;
        let mut files = state.files.clone();
        let manifest = match &self.store {
            Some(store) => {
                files.push(ShardManifest::delta_file_name(next.generation()));
                Some(store.publish(&next, &files, &[next.shard_count() - 1])?)
            }
            None => None,
        };
        self.fault_crash_point()?;
        let next = Arc::new(next);
        let generation = next.generation();
        self.live.swap(next);
        state.files = files;
        state.deltas += 1;
        let due = self.merge_threshold > 0 && state.deltas >= self.merge_threshold;
        self.notify_published(generation);
        if let (Some(store), Some(m)) = (&self.store, &manifest) {
            store.gc(m);
        }
        if due {
            self.wake.notify_all();
        }
        Ok(IngestReceipt {
            generation,
            docs: docs.len(),
        })
    }

    /// Tombstone a batch of document ids and publish the new
    /// generation. Ids take effect immediately at scatter time; the
    /// documents physically disappear at the next compaction.
    pub fn delete_documents(&self, ids: &[u32]) -> Result<IngestReceipt, Error> {
        let state = self.lock_state();
        self.fault_panic_point();
        let engine = self.live.load();
        let (next, newly) = engine.with_deletes(ids)?;
        let manifest = match &self.store {
            Some(store) => Some(store.publish(&next, &state.files, &[])?),
            None => None,
        };
        self.fault_crash_point()?;
        let next = Arc::new(next);
        let generation = next.generation();
        self.live.swap(next);
        // Segment layout unchanged — state.files stays as-is; only the
        // sidecars moved to new generation-stamped names.
        self.notify_published(generation);
        if let (Some(store), Some(m)) = (&self.store, &manifest) {
            store.gc(m);
        }
        drop(state);
        Ok(IngestReceipt {
            generation,
            docs: newly,
        })
    }

    /// Compact delta segments and tombstones into a fresh doc-range
    /// layout now. Returns `Ok(None)` when there is nothing to do
    /// (no deltas, no deletions — or every document is deleted, in
    /// which case compaction waits for new documents rather than
    /// publish an empty corpus).
    pub fn merge_now(&self) -> Result<Option<IngestReceipt>, Error> {
        let mut state = self.lock_state();
        let engine = self.live.load();
        if (state.deltas == 0 && engine.deleted_docs() == 0) || engine.live_docs() == 0 {
            return Ok(None);
        }
        let next = engine.compacted(self.compact_shards)?;
        let files: Vec<String> = (0..next.shard_count())
            .map(|i| ShardManifest::generation_file_name(next.generation(), i))
            .collect();
        let manifest = match &self.store {
            Some(store) => {
                let all: Vec<usize> = (0..next.shard_count()).collect();
                Some(store.publish(&next, &files, &all)?)
            }
            None => None,
        };
        self.fault_crash_point()?;
        let next = Arc::new(next);
        let generation = next.generation();
        let live_docs = next.num_docs();
        self.live.swap(next);
        state.files = files;
        state.deltas = 0;
        self.merges.fetch_add(1, Ordering::Relaxed);
        self.notify_published(generation);
        if let (Some(store), Some(m)) = (&self.store, &manifest) {
            store.gc(m);
        }
        Ok(Some(IngestReceipt {
            generation,
            docs: live_docs,
        }))
    }

    /// Ask the background merger (if any) to exit. Idempotent.
    pub fn shutdown(&self) {
        let mut state = self.lock_state();
        state.shutdown = true;
        drop(state);
        self.wake.notify_all();
    }

    /// Run the merge loop until [`Ingestor::shutdown`]: sleep on the
    /// condvar, compact whenever the delta count reaches the threshold.
    /// A failed compaction is counted and retried on the next wake —
    /// the merger never dies on an error.
    fn merger_loop(&self) {
        loop {
            let mut state = self.lock_state();
            loop {
                if state.shutdown {
                    return;
                }
                if self.merge_threshold > 0 && state.deltas >= self.merge_threshold {
                    break;
                }
                let (next, _) = self
                    .wake
                    .wait_timeout(state, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
            drop(state);
            if self.merge_now().is_err() {
                self.merge_failures.fetch_add(1, Ordering::Relaxed);
                // Back off so a persistently failing disk doesn't spin.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Handle to a background merger thread; join it after
/// [`Ingestor::shutdown`].
#[derive(Debug)]
pub struct MergerHandle {
    join: std::thread::JoinHandle<()>,
}

impl MergerHandle {
    /// Wait for the merger to exit (call [`Ingestor::shutdown`] first).
    pub fn join(self) {
        let _ = self.join.join();
    }
}

/// Spawn the background merge task for an ingestor.
pub fn spawn_merger(ingestor: &Arc<Ingestor>) -> Result<MergerHandle, Error> {
    let ing = Arc::clone(ingestor);
    let join = std::thread::Builder::new()
        .name("pimento-merger".into())
        .spawn(move || ing.merger_loop())
        .map_err(|e| Error::Io(format!("spawn merger: {e}")))?;
    Ok(MergerHandle { join })
}
