//! Exhaustive crash-point enumeration for the ingest commit protocol
//! (DESIGN.md §17).
//!
//! A reference run of a fixed ingest script (bootstrap → add → delete →
//! add → compact) on a clean `SimVfs` counts every mutating filesystem
//! operation — each one is a crash point — and records the recovery
//! fingerprint after every committed step. Then, for every crash point
//! `k` and every reboot style (power loss, clean kill, torn unsynced
//! content), the script re-runs with the `k`-th operation failing,
//! reboots, and recovery must land **bit-identically** on either the
//! last committed checkpoint or the next one (a commit that landed but
//! was never acked). Zero third states, zero panics.

#![cfg(feature = "fault-injection")]

use pimento::profile::UserProfile;
use pimento::{Engine, Error, SearchOptions};
use pimento_faults::vfs::{CrashStyle, QuarantineCap, SimVfs, Vfs};
use pimento_index::Collection;
use pimento_ingest::{IngestConfig, Ingestor, LiveEngine, SegmentStore};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Steps in the ingest script (bootstrap counts as step 1).
const STEPS: usize = 5;

fn doc(i: usize) -> String {
    format!("<doc><t>word{i} shared</t></doc>")
}

/// The corpus the script boots from (3 documents, generation 0).
fn boot_engine() -> Engine {
    let mut coll = Collection::new();
    for i in 0..3 {
        coll.add_xml(&doc(i)).expect("boot doc");
    }
    Engine::new(coll)
}

/// Bit-exact fingerprint of an engine: generation, doc count, and the
/// full ranked answer of a canonical query with scores as raw `f64`
/// bits. Two engines with equal fingerprints are indistinguishable to
/// a caller.
fn fingerprint(engine: &Engine) -> Vec<String> {
    let mut out = vec![
        format!("generation {}", engine.generation()),
        format!("docs {}", engine.num_docs()),
    ];
    let results = engine
        .search("//doc", &UserProfile::new(), &SearchOptions::top(64))
        .expect("fingerprint query");
    for hit in &results.hits {
        out.push(format!(
            "{:?} s={:016x} k={:016x} {}",
            hit.elem,
            hit.s.to_bits(),
            hit.k.to_bits(),
            hit.text
        ));
    }
    out
}

/// What a restart would recover right now: read-only, so it never
/// perturbs the crash-point numbering.
fn recovery_fingerprint(vfs: &Arc<SimVfs>, dir: &Path) -> Result<Vec<String>, Error> {
    Ok(fingerprint(&Engine::from_sharded_dir_vfs(&**vfs, dir)?))
}

/// One full execution of the ingest script, stopping at the first
/// failed step. `on_ok(step)` runs after each committed step (the
/// reference run records checkpoints there). Returns how many steps
/// committed (0..=STEPS). Every failure must be a typed `Err` — a
/// panic anywhere fails the whole harness.
fn run_script(vfs: &Arc<SimVfs>, dir: &Path, mut on_ok: impl FnMut(usize)) -> usize {
    let cfg = IngestConfig {
        data_dir: Some(dir.to_path_buf()),
        merge_threshold: 0,
        compact_shards: 2,
        vfs: Some(vfs.clone() as Arc<dyn Vfs>),
    };
    let live = Arc::new(LiveEngine::new(boot_engine()));
    let Ok(ing) = Ingestor::new(live, cfg) else {
        return 0;
    };
    on_ok(1);
    if ing.add_documents(&[doc(3), doc(4)]).is_err() {
        return 1;
    }
    on_ok(2);
    if ing.delete_documents(&[1]).is_err() {
        return 2;
    }
    on_ok(3);
    if ing.add_documents(&[doc(5)]).is_err() {
        return 3;
    }
    on_ok(4);
    if !matches!(ing.merge_now(), Ok(Some(_))) {
        return 4;
    }
    on_ok(5);
    STEPS
}

#[test]
fn crash_at_every_point_recovers_a_committed_generation() {
    let dir = PathBuf::from("/sim/corpus");

    // Reference run: count crash points, record checkpoint C[i] after
    // step i (C[0] is "nothing committed yet").
    let vfs = Arc::new(SimVfs::new(7));
    let mut checkpoints: Vec<Vec<String>> = Vec::new();
    let m = run_script(&vfs, &dir, |_| {
        checkpoints.push(recovery_fingerprint(&vfs, &dir).expect("clean checkpoint"));
    });
    assert_eq!(m, STEPS, "clean run must commit every step");
    assert_eq!(checkpoints.len(), STEPS);
    let total = vfs.mutations();
    assert!(total > 20, "script too small to be interesting: {total} ops");

    for style in [CrashStyle::Lose, CrashStyle::Keep, CrashStyle::Torn] {
        for k in 1..=total {
            let vfs = Arc::new(SimVfs::new(7));
            vfs.set_crash_at(Some(k));
            let m = run_script(&vfs, &dir, |_| {});
            assert!(vfs.crashed(), "{style:?}/{k}: crash point never fired");

            vfs.reboot(style);
            let store = SegmentStore::open_with(vfs.clone() as Arc<dyn Vfs>, dir.clone())
                .expect("reopen after reboot");
            match store.recover() {
                Ok(engine) => {
                    let fp = fingerprint(&engine);
                    // Allowed states: the last committed checkpoint, or
                    // the next one (commit landed, ack lost).
                    let at_prev = m >= 1 && fp == checkpoints[m - 1];
                    let at_next = m < STEPS && fp == checkpoints[m];
                    assert!(
                        at_prev || at_next,
                        "{style:?}/{k}: recovered a third state after {m} committed \
                         steps:\n{fp:#?}"
                    );
                }
                Err(err) => {
                    // Only legal before the very first commit — and only
                    // as a typed error with no manifest left behind.
                    assert_eq!(m, 0, "{style:?}/{k}: lost committed data: {err}");
                    assert!(
                        !store.has_manifest(),
                        "{style:?}/{k}: manifest present but unrecoverable: {err}"
                    );
                }
            }
        }
    }
}

/// A device that acknowledges fsyncs it never performs (or in-flight
/// unsynced content at power-cut) must never panic recovery: torn
/// artifacts surface as typed errors, quarantine clears the wreckage,
/// and a fresh bootstrap brings the directory back to life.
#[test]
fn lying_disk_quarantines_instead_of_crashing() {
    let mut saw_corruption = false;
    for seed in 0..6u64 {
        let dir = PathBuf::from(format!("/sim/lying-disk-{seed}"));
        let vfs = Arc::new(SimVfs::new(seed));
        vfs.set_drop_fsyncs(true);
        let m = run_script(&vfs, &dir, |_| {});
        assert_eq!(m, STEPS, "the lying device reports success");

        vfs.reboot(CrashStyle::Torn);
        let store = SegmentStore::open_with(vfs.clone() as Arc<dyn Vfs>, dir.clone())
            .expect("reopen after reboot");
        match store.recover() {
            // Every tear happened to land on a full-length prefix —
            // indistinguishable from an honest disk.
            Ok(_) => {}
            Err(err) => {
                assert!(
                    matches!(err, Error::Snapshot(_) | Error::Io(_)),
                    "typed error required, got {err:?}"
                );
                saw_corruption = true;
                let moved = store.quarantine_corrupt(QuarantineCap::default());
                assert!(moved > 0, "seed {seed}: nothing quarantined");
                assert!(!store.has_manifest(), "seed {seed}: manifest left behind");

                // The directory is usable again: bootstrap, then verify
                // a restart recovers the bootstrapped corpus.
                let cfg = IngestConfig {
                    data_dir: Some(dir.clone()),
                    vfs: Some(vfs.clone() as Arc<dyn Vfs>),
                    ..IngestConfig::default()
                };
                let live = Arc::new(LiveEngine::new(boot_engine()));
                let ing = Ingestor::new(Arc::clone(&live), cfg)
                    .expect("bootstrap after quarantine");
                let disk = recovery_fingerprint(&vfs, &dir).expect("recover bootstrap");
                assert_eq!(disk, fingerprint(&live.load()));
                drop(ing);
            }
        }
    }
    assert!(saw_corruption, "no seed produced a torn artifact");
}

/// ENOSPC survival (disk-full satellite): a full disk surfaces as the
/// typed `Error::DiskFull`, the previous generation keeps serving from
/// memory *and* disk, no temp file is left to burden the full disk,
/// and the same write succeeds once space frees.
#[test]
fn disk_full_keeps_previous_generation_and_retry_succeeds() {
    let dir = PathBuf::from("/sim/enospc");
    let vfs = Arc::new(SimVfs::new(11));
    let cfg = IngestConfig {
        data_dir: Some(dir.clone()),
        merge_threshold: 0,
        compact_shards: 0,
        vfs: Some(vfs.clone() as Arc<dyn Vfs>),
    };
    let live = Arc::new(LiveEngine::new(boot_engine()));
    let ing = Ingestor::new(Arc::clone(&live), cfg).expect("bootstrap");
    let served = fingerprint(&live.load());
    let durable = recovery_fingerprint(&vfs, &dir).expect("bootstrap recovers");
    assert_eq!(served, durable);

    // 16 bytes of headroom: the segment write short-writes and fails.
    vfs.set_budget(Some(16));
    let err = ing.add_documents(&[doc(3)]).expect_err("disk is full");
    assert!(matches!(err, Error::DiskFull(_)), "typed: {err:?}");

    // The previous generation is untouched in memory and on disk.
    assert_eq!(fingerprint(&live.load()), served);
    assert_eq!(recovery_fingerprint(&vfs, &dir).expect("recover"), durable);
    let leftovers: Vec<PathBuf> = vfs
        .list(&dir)
        .expect("list")
        .into_iter()
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp turds on a full disk: {leftovers:?}");

    // Space frees; the retried write commits and is recoverable.
    vfs.set_budget(None);
    let receipt = ing.add_documents(&[doc(3)]).expect("retry");
    assert_eq!(receipt.docs, 1);
    assert_eq!(
        recovery_fingerprint(&vfs, &dir).expect("recover"),
        fingerprint(&live.load())
    );
}
