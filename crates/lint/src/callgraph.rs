//! Workspace call graph over the [`crate::parser`] item trees.
//!
//! Functions are keyed by `(crate, module-path, fn)`; call sites are
//! resolved by *name + arity*, narrowed by the crate dependency closure
//! (parsed from each `crates/*/Cargo.toml`) and, for unqualified calls,
//! by module/crate proximity. This over-approximates (a call may resolve
//! to several same-name/same-arity functions — all become edges) and
//! never under-approximates within the parsed subset, which is the right
//! bias for the reachability analyses built on top (DESIGN.md §14).

use std::collections::{HashMap, HashSet};
use std::path::Path;

use crate::lexer::{lex, Tok, TokKind};
use crate::parser::{parse_fns, FnDef, EXPR_KEYWORDS};
use crate::rules::is_test_path;

/// One lexed source file of the workspace.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Owning crate, by directory name (`algebra`, `index`, `serve`, …;
    /// the root `src/` tree is crate `suite`).
    pub crate_name: String,
    /// Whole file is test scaffolding (`tests/`, `benches/`, `examples/`).
    pub is_test: bool,
    /// Token stream (positions survive into every diagnostic).
    pub toks: Vec<Tok>,
    /// Source lines, for excerpts.
    pub lines: Vec<String>,
}

/// A function node: its parsed def plus the owning file.
pub struct FnNode {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Parsed definition.
    pub def: FnDef,
}

/// One resolved call edge out of a function body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Callee function index.
    pub callee: usize,
    /// 1-based position of the call in the *caller's* file.
    pub line: u32,
    pub col: u32,
}

/// What kind of panic a source site is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro(String),
    /// `.unwrap()` (zero args).
    Unwrap,
    /// `.expect("…")` (exactly one arg — the workspace parsers define
    /// two-arg `expect(&Tok, &str)` methods that are ordinary calls).
    Expect,
    /// Slice-index sugar `x[i]` / `&x[a..b]`.
    Index,
}

impl PanicKind {
    /// Short display form for traces and messages.
    pub fn describe(&self) -> String {
        match self {
            PanicKind::Macro(m) => format!("`{m}!`"),
            PanicKind::Unwrap => "`.unwrap()`".to_string(),
            PanicKind::Expect => "`.expect(…)`".to_string(),
            PanicKind::Index => "slice-index `[…]`".to_string(),
        }
    }
}

/// One potential panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    pub line: u32,
    pub col: u32,
}

/// The workspace call graph.
pub struct Graph {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnNode>,
    /// Resolved out-edges per function (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Panic sites per function (parallel to `fns`).
    pub panics: Vec<Vec<PanicSite>>,
    /// Crate-name → dependency closure (crate dir names, self included).
    pub deps: HashMap<String, HashSet<String>>,
}

impl Graph {
    /// Build the graph from `(workspace-relative path, source)` pairs.
    /// `root` locates `crates/*/Cargo.toml` for the dependency closure;
    /// pass a non-existent root to fall back to all-crates-see-all (the
    /// fixture tests do this).
    pub fn build(root: &Path, sources: &[(String, String)]) -> Graph {
        let mut files = Vec::new();
        for (rel, source) in sources {
            let Some(crate_name) = crate_of(rel) else {
                continue;
            };
            files.push(SourceFile {
                path: rel.clone(),
                crate_name,
                is_test: is_test_path(rel),
                toks: lex(source),
                lines: source.lines().map(|l| l.to_string()).collect(),
            });
        }

        let crate_names: HashSet<String> = files.iter().map(|f| f.crate_name.clone()).collect();
        let deps = dep_closure(root, &crate_names);

        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let module = module_of(&file.path);
            for def in parse_fns(&file.toks, &module, file.is_test) {
                fns.push(FnNode { file: fi, def });
            }
        }

        let mut graph = Graph {
            files,
            fns,
            calls: Vec::new(),
            panics: Vec::new(),
            deps,
        };
        graph.resolve();
        graph
    }

    /// Fully-qualified display path of a function, `crate::mod::Type::fn`.
    pub fn fn_path(&self, idx: usize) -> String {
        let node = &self.fns[idx];
        format!(
            "{}::{}",
            self.files[node.file].crate_name,
            node.def.path_in_crate()
        )
    }

    /// The file path / line of a function, for trace rendering.
    pub fn fn_site(&self, idx: usize) -> (&str, u32) {
        let node = &self.fns[idx];
        (&self.files[node.file].path, node.def.line)
    }

    /// Trimmed source line of a file, for excerpts.
    pub fn excerpt(&self, file: usize, line: u32) -> String {
        self.files[file]
            .lines
            .get(line as usize - 1)
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .unwrap_or_default()
    }

    /// Indices of non-test functions matching `(crate, module, name)`.
    /// An empty `names` slice matches every function in the module.
    pub fn find_fns(&self, crate_name: &str, module: &[&str], names: &[&str]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.def.in_test
                    && !self.files[n.file].is_test
                    && self.files[n.file].crate_name == crate_name
                    && n.def.module.iter().map(|s| s.as_str()).collect::<Vec<_>>() == module
                    && (names.is_empty() || names.contains(&n.def.name.as_str()))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Multi-source BFS. Returns, for each reachable function, the call
    /// edge it was first discovered through: `(caller, line, col)` — the
    /// roots map to `None`-parented entries. Unreachable functions are
    /// absent from the map.
    pub fn reach_from(&self, roots: &[usize]) -> HashMap<usize, Option<(usize, u32, u32)>> {
        let mut seen: HashMap<usize, Option<(usize, u32, u32)>> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for site in &self.calls[f] {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(site.callee) {
                    e.insert(Some((f, site.line, site.col)));
                    queue.push_back(site.callee);
                }
            }
        }
        seen
    }

    /// Render the shortest root→`f` call chain recorded by
    /// [`Graph::reach_from`], one `path:line` hop per element.
    pub fn trace_to(
        &self,
        reach: &HashMap<usize, Option<(usize, u32, u32)>>,
        f: usize,
    ) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = f;
        while let Some(Some((parent, line, col))) = reach.get(&cur) {
            let (ppath, _) = self.fn_site(*parent);
            chain.push(format!("{} ({}:{}:{})", self.fn_path(*parent), ppath, line, col));
            cur = *parent;
        }
        chain.reverse();
        chain
    }

    /// Resolve every call site in every non-test function body.
    fn resolve(&mut self) {
        // Name → candidate fn indices (non-test defs only: product code
        // cannot call test scaffolding).
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, n) in self.fns.iter().enumerate() {
            if !n.def.in_test && !self.files[n.file].is_test {
                by_name.entry(n.def.name.as_str()).or_default().push(i);
            }
        }

        let mut calls = vec![Vec::new(); self.fns.len()];
        let mut panics = vec![Vec::new(); self.fns.len()];
        for i in 0..self.fns.len() {
            let node = &self.fns[i];
            if node.def.in_test || self.files[node.file].is_test {
                continue;
            }
            let Some((open, close)) = node.def.body else {
                continue;
            };
            // Nested fns own their bodies: skip their spans while walking.
            let nested: Vec<(usize, usize)> = self
                .fns
                .iter()
                .filter(|m| m.file == node.file)
                .filter_map(|m| m.def.body)
                .filter(|&(o, c)| o > open && c < close)
                .collect();
            let raw = extract_sites(&self.files[node.file].toks, open, close, &nested);
            for site in raw {
                match site {
                    RawSite::Panic(p) => panics[i].push(p),
                    RawSite::Call(c) => {
                        for callee in self.resolve_call(i, &c, &by_name) {
                            calls[i].push(CallSite {
                                callee,
                                line: c.line,
                                col: c.col,
                            });
                        }
                    }
                }
            }
        }
        self.calls = calls;
        self.panics = panics;
    }

    /// All plausible callees for one raw call from function `caller`.
    fn resolve_call(
        &self,
        caller: usize,
        call: &RawCall,
        by_name: &HashMap<&str, Vec<usize>>,
    ) -> Vec<usize> {
        let caller_node = &self.fns[caller];
        let caller_crate = &self.files[caller_node.file].crate_name;
        let empty = HashSet::new();
        let visible = self.deps.get(caller_crate).unwrap_or(&empty);
        let Some(cands) = by_name.get(call.name.as_str()) else {
            return Vec::new();
        };

        // Normalize the qualifier: drop `crate`/`super` heads, map
        // `Self` to the caller's impl type, `pimento_x` → `x`.
        let mut segs: Vec<String> = Vec::new();
        for s in &call.qualifier {
            match s.as_str() {
                "crate" | "super" => {}
                "Self" => {
                    if let Some(ty) = &caller_node.def.self_ty {
                        segs.push(ty.clone());
                    }
                }
                other => segs.push(other.strip_prefix("pimento_").unwrap_or(other).to_string()),
            }
        }
        // A `std::`/`core::`/`alloc::` qualifier is definitively external.
        if matches!(
            segs.first().map(|s| s.as_str()),
            Some("std" | "core" | "alloc")
        ) {
            return Vec::new();
        }

        let matches_shape = |idx: usize| -> bool {
            let n = &self.fns[idx];
            let cand_crate = &self.files[n.file].crate_name;
            if cand_crate != caller_crate && !visible.contains(cand_crate) {
                return false;
            }
            match call.kind {
                CallKind::Method => n.def.has_self && n.def.params == call.argc,
                CallKind::Path => {
                    // `Type::method(&x, …)` passes the receiver explicitly.
                    let expected = n.def.params + usize::from(n.def.has_self);
                    if call.argc != expected {
                        return false;
                    }
                    // Qualifier must suffix-match crate::module::Type.
                    let mut full: Vec<&str> = vec![cand_crate.as_str()];
                    full.extend(n.def.module.iter().map(|s| s.as_str()));
                    if let Some(ty) = &n.def.self_ty {
                        full.push(ty.as_str());
                    }
                    segs.len() <= full.len()
                        && segs
                            .iter()
                            .rev()
                            .zip(full.iter().rev())
                            .all(|(a, b)| a == b)
                }
                CallKind::Bare => {
                    n.def.self_ty.is_none() && !n.def.has_self && n.def.params == call.argc
                }
            }
        };

        let mut hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| matches_shape(i))
            .collect();
        // Receiver types are unknown, so a method name like `len` or
        // `insert` matches both std containers and unrelated workspace
        // impls. A multi-candidate method set is kept only when every
        // candidate implements the *same trait* — that is genuine dynamic
        // dispatch (`Operator::next` fans out to every operator); a mixed
        // bag of inherent impls is a std-name collision and resolving it
        // would wire unrelated subsystems together.
        if matches!(call.kind, CallKind::Method) && hits.len() > 1 {
            let first_trait = self.fns[hits[0]].def.trait_of.as_deref();
            let same_family = first_trait.is_some()
                && hits
                    .iter()
                    .all(|&i| self.fns[i].def.trait_of.as_deref() == first_trait);
            if !same_family {
                return Vec::new();
            }
        }
        // Unqualified calls prefer the nearest definition: same module
        // (and file), then same crate, then anything visible.
        if matches!(call.kind, CallKind::Bare) && hits.len() > 1 {
            let same_module: Vec<usize> = hits
                .iter()
                .copied()
                .filter(|&i| {
                    self.fns[i].file == caller_node.file
                        && self.fns[i].def.module == caller_node.def.module
                })
                .collect();
            if !same_module.is_empty() {
                hits = same_module;
            } else {
                let same_crate: Vec<usize> = hits
                    .iter()
                    .copied()
                    .filter(|&i| &self.files[self.fns[i].file].crate_name == caller_crate)
                    .collect();
                if !same_crate.is_empty() {
                    hits = same_crate;
                }
            }
        }
        hits
    }
}

/// Crate directory name for a workspace path, `None` for unowned files.
fn crate_of(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        return rest.split('/').next().map(|s| s.to_string());
    }
    if path.starts_with("src/") || path.starts_with("tests/") || path.starts_with("examples/") {
        return Some("suite".to_string());
    }
    None
}

/// Crate-relative module path from a file path.
fn module_of(path: &str) -> Vec<String> {
    let in_src = path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, rest)| rest)
        .unwrap_or(path);
    let Some(rel) = in_src.strip_prefix("src/") else {
        return Vec::new();
    };
    let mut parts: Vec<String> = rel
        .trim_end_matches(".rs")
        .split('/')
        .map(|s| s.to_string())
        .collect();
    match parts.last().map(|s| s.as_str()) {
        Some("lib") | Some("main") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts
}

/// Parse `crates/*/Cargo.toml` `[dependencies]` path entries into a
/// transitive closure per crate. When no manifests are found every crate
/// sees every other (sound fallback for synthetic fixture workspaces).
fn dep_closure(root: &Path, crates: &HashSet<String>) -> HashMap<String, HashSet<String>> {
    let mut direct: HashMap<String, HashSet<String>> = HashMap::new();
    let mut any_manifest = false;
    for c in crates {
        let manifest = if c == "suite" {
            root.join("Cargo.toml")
        } else {
            root.join("crates").join(c).join("Cargo.toml")
        };
        let mut set = HashSet::new();
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            any_manifest = true;
            set = parse_path_deps(&text);
        }
        set.insert(c.clone());
        direct.insert(c.clone(), set);
    }
    if !any_manifest {
        let all: HashSet<String> = crates.clone();
        return crates.iter().map(|c| (c.clone(), all.clone())).collect();
    }
    // Transitive closure (the workspace is tiny; fixpoint is fine).
    let mut closed = direct.clone();
    loop {
        let mut changed = false;
        for c in crates {
            let reach: Vec<String> = closed
                .get(c)
                .map(|s| s.iter().cloned().collect())
                .unwrap_or_default();
            for d in reach {
                let extra: Vec<String> = closed
                    .get(&d)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                let set = closed.entry(c.clone()).or_default();
                for e in extra {
                    changed |= set.insert(e);
                }
            }
        }
        if !changed {
            break;
        }
    }
    closed
}

/// Extract `path = "../x"` crate-dir names from the `[dependencies]`
/// section of a manifest (dev-dependencies are runtime-invisible).
fn parse_path_deps(manifest: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(pos) = line.find("path") {
            let rest = &line[pos..];
            if let Some(q) = rest.find('"') {
                let val = &rest[q + 1..];
                if let Some(end) = val.find('"') {
                    let dir = val[..end].rsplit('/').next().unwrap_or("");
                    if !dir.is_empty() && dir != ".." {
                        out.insert(dir.to_string());
                    }
                }
            }
        }
    }
    out
}

/// How a call names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallKind {
    /// `recv.name(args)` — receiver type unknown; match by name + arity.
    Method,
    /// `a::b::name(args)` — qualifier suffix-matched.
    Path,
    /// `name(args)` — unqualified; nearest definition preferred.
    Bare,
}

/// One syntactic call, pre-resolution.
#[derive(Debug, Clone)]
struct RawCall {
    kind: CallKind,
    qualifier: Vec<String>,
    name: String,
    argc: usize,
    line: u32,
    col: u32,
}

enum RawSite {
    Call(RawCall),
    Panic(PanicSite),
}

/// Walk a body token range collecting call sites and panic sources.
/// `nested` are body spans of nested `fn` items, skipped wholesale.
fn extract_sites(
    toks: &[Tok],
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
) -> Vec<RawSite> {
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip a nested fn item: signature and body belong to it.
        if toks[j].is_ident("fn")
            && matches!(toks.get(j + 1).map(|t| &t.kind), Some(TokKind::Ident(_)))
        {
            if let Some(&(_, c)) = nested.iter().find(|&&(o, _)| o > j && o < close) {
                j = c + 1;
                continue;
            }
        }

        // Method call / method-shaped panic: `.name(` or `.name::<…>(`.
        if toks[j].is_punct(".") {
            if let Some(TokKind::Ident(name)) = toks.get(j + 1).map(|t| &t.kind) {
                let mut p = j + 2;
                if toks.get(p).map(|t| t.is_punct("::")).unwrap_or(false) {
                    // Turbofish: skip the angle group.
                    p += 1;
                    let mut angle = 0usize;
                    while p < close {
                        match toks[p].kind {
                            TokKind::Punct("<") => angle += 1,
                            TokKind::Punct(">") => angle = angle.saturating_sub(1),
                            TokKind::Punct(">>") => angle = angle.saturating_sub(2),
                            _ => {}
                        }
                        p += 1;
                        if angle == 0 {
                            break;
                        }
                    }
                }
                if toks.get(p).map(|t| t.is_punct("(")).unwrap_or(false) {
                    let (argc, _) = scan_call_args(toks, p);
                    let (line, col) = (toks[j + 1].line, toks[j + 1].col);
                    match (name.as_str(), argc) {
                        ("unwrap", 0) => out.push(RawSite::Panic(PanicSite {
                            kind: PanicKind::Unwrap,
                            line,
                            col,
                        })),
                        ("expect", 1) => out.push(RawSite::Panic(PanicSite {
                            kind: PanicKind::Expect,
                            line,
                            col,
                        })),
                        _ => out.push(RawSite::Call(RawCall {
                            kind: CallKind::Method,
                            qualifier: Vec::new(),
                            name: name.clone(),
                            argc,
                            line,
                            col,
                        })),
                    }
                    j += 2;
                    continue;
                }
            }
        }

        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if let TokKind::Ident(name) = &toks[j].kind {
            if toks.get(j + 1).map(|t| t.is_punct("!")).unwrap_or(false)
                && toks
                    .get(j + 2)
                    .map(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
                    .unwrap_or(false)
            {
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    out.push(RawSite::Panic(PanicSite {
                        kind: PanicKind::Macro(name.clone()),
                        line: toks[j].line,
                        col: toks[j].col,
                    }));
                }
                j += 2; // walk into the macro args normally
                continue;
            }
        }

        // Free / path call: `[a::b::]name(` with a lowercase final segment
        // (uppercase finals are tuple-struct/variant constructors).
        if let TokKind::Ident(name) = &toks[j].kind {
            let prev_dot = j > 0 && (toks[j - 1].is_punct(".") || toks[j - 1].is_ident("fn"));
            let is_call = toks.get(j + 1).map(|t| t.is_punct("(")).unwrap_or(false);
            let lowercase = name
                .chars()
                .next()
                .map(|c| c.is_lowercase() || c == '_')
                .unwrap_or(false);
            if is_call && !prev_dot && lowercase && !EXPR_KEYWORDS.contains(&name.as_str()) {
                // Collect the `::` qualifier backwards.
                let mut qualifier = Vec::new();
                let mut k = j;
                while k >= 2
                    && toks[k - 1].is_punct("::")
                    && matches!(toks[k - 2].kind, TokKind::Ident(_))
                {
                    if let TokKind::Ident(s) = &toks[k - 2].kind {
                        qualifier.push(s.clone());
                    }
                    k -= 2;
                }
                qualifier.reverse();
                let (argc, _) = scan_call_args(toks, j + 1);
                let kind = if qualifier.is_empty() {
                    CallKind::Bare
                } else {
                    CallKind::Path
                };
                out.push(RawSite::Call(RawCall {
                    kind,
                    qualifier,
                    name: name.clone(),
                    argc,
                    line: toks[j].line,
                    col: toks[j].col,
                }));
                j += 1;
                continue;
            }
        }

        // Slice-index sugar: `expr[…]` — the previous token ends a value
        // expression. (`#[attr]` and array types/literals don't match.)
        if toks[j].is_punct("[") && j > 0 {
            let prev_ends_value = matches!(
                &toks[j - 1].kind,
                TokKind::Ident(_)
                    | TokKind::Int
                    | TokKind::Punct(")")
                    | TokKind::Punct("]")
                    | TokKind::Punct("?")
            ) && !toks[j - 1].is_ident("return")
                && !EXPR_KEYWORDS.contains(&match &toks[j - 1].kind {
                    TokKind::Ident(s) => s.as_str(),
                    _ => "",
                });
            if prev_ends_value {
                out.push(RawSite::Panic(PanicSite {
                    kind: PanicKind::Index,
                    line: toks[j].line,
                    col: toks[j].col,
                }));
            }
        }

        j += 1;
    }
    out
}

/// Count top-level arguments of a call whose `(` is at `open`; returns
/// `(argc, index of the matching `)`)`. Commas inside nested brackets or
/// closure parameter pipes don't count.
pub fn scan_call_args(toks: &[Tok], open: usize) -> (usize, usize) {
    let mut depth = 0usize;
    let mut pipe = false;
    let mut commas = 0usize;
    let mut any = false;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct("(") | TokKind::Punct("[") | TokKind::Punct("{") => depth += 1,
            TokKind::Punct(")") | TokKind::Punct("]") | TokKind::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    let argc = if any { commas + 1 } else { 0 };
                    return (argc, j);
                }
            }
            TokKind::Punct("|") if depth == 1 => pipe = !pipe,
            // A trailing comma right before the closer separates nothing.
            TokKind::Punct(",")
                if depth == 1
                    && !pipe
                    && !toks.get(j + 1).map(|t| t.is_punct(")")).unwrap_or(false) =>
            {
                commas += 1;
            }
            _ => {}
        }
        if j > open && depth >= 1 {
            any = true;
        }
        j += 1;
    }
    (if any { commas + 1 } else { 0 }, j.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        // A root that exists but holds no manifests → all-see-all closure.
        Graph::build(Path::new("/nonexistent-lint-fixture"), &sources)
    }

    fn fn_idx(g: &Graph, path: &str) -> usize {
        (0..g.fns.len())
            .find(|&i| g.fn_path(i) == path)
            .unwrap_or_else(|| {
                let all: Vec<String> = (0..g.fns.len()).map(|i| g.fn_path(i)).collect();
                panic!("no fn {path}; have {all:?}")
            })
    }

    #[test]
    fn bare_calls_resolve_within_the_module() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root() { helper(1); } fn helper(x: u32) -> u32 { x }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        let helper = fn_idx(&g, "a::m::helper");
        assert_eq!(g.calls[root].len(), 1);
        assert_eq!(g.calls[root][0].callee, helper);
    }

    #[test]
    fn arity_disambiguates_same_name_fns() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root() { go(1); } fn go(x: u32) {} fn go2(x: u32, y: u32) {}",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert_eq!(g.calls[root].len(), 1);
        assert_eq!(g.fn_path(g.calls[root][0].callee), "a::m::go");
    }

    #[test]
    fn method_calls_match_workspace_impls_by_arity() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root(s: &St) { s.step(1); } pub struct St; impl St { pub fn step(&self, n: u32) {} pub fn step2(&self) {} }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert_eq!(g.calls[root].len(), 1);
        assert_eq!(g.fn_path(g.calls[root][0].callee), "a::m::St::step");
    }

    #[test]
    fn two_arg_expect_is_a_call_not_a_panic() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root(p: &mut P) { p.expect(1, 2); } pub struct P; impl P { pub fn expect(&mut self, a: u32, b: u32) {} }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert!(
            g.panics[root].is_empty(),
            "2-arg expect is the parser method"
        );
        assert_eq!(g.calls[root].len(), 1);
    }

    #[test]
    fn trailing_commas_do_not_inflate_call_arity() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root() { helper(\n    1,\n    2,\n); } fn helper(a: u32, b: u32) {}",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert_eq!(
            g.calls[root].len(),
            1,
            "3-looking arity must still match the 2-param helper"
        );
    }

    #[test]
    fn one_arg_expect_and_zero_arg_unwrap_are_panics() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root(x: Option<u32>) -> u32 { x.expect(\"set\") + x.unwrap() }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        let kinds: Vec<&PanicKind> = g.panics[root].iter().map(|p| &p.kind).collect();
        assert_eq!(kinds, vec![&PanicKind::Expect, &PanicKind::Unwrap]);
    }

    #[test]
    fn constructors_and_macro_brackets_are_not_sites() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root() -> Option<Vec<u32>> { let v = vec![1, 2]; Some(v) }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert!(g.calls[root].is_empty());
        assert!(
            g.panics[root].is_empty(),
            "vec![…] is a macro bracket, not an index"
        );
    }

    #[test]
    fn indexing_is_a_panic_site() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root(v: &[u32], i: usize) -> u32 { v[i] }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert_eq!(g.panics[root].len(), 1);
        assert_eq!(g.panics[root][0].kind, PanicKind::Index);
    }

    #[test]
    fn qualified_calls_cross_files() {
        let g = graph_of(&[
            (
                "crates/a/src/m.rs",
                "pub fn root(b: &[u8]) { crate::util::decode(b); }",
            ),
            (
                "crates/a/src/util.rs",
                "pub fn decode(b: &[u8]) -> u32 { 0 }",
            ),
        ]);
        let root = fn_idx(&g, "a::m::root");
        let decode = fn_idx(&g, "a::util::decode");
        assert_eq!(g.calls[root].len(), 1);
        assert_eq!(g.calls[root][0].callee, decode);
    }

    #[test]
    fn test_functions_are_outside_the_graph() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root() { helper(); } fn helper() {} #[cfg(test)] mod tests { fn helper() { panic!(); } }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        assert_eq!(
            g.calls[root].len(),
            1,
            "resolves only to the non-test helper"
        );
        let callee = g.calls[root][0].callee;
        assert!(g.panics[callee].is_empty());
    }

    #[test]
    fn reachability_reports_a_parent_chain() {
        let g = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn root() { mid(); } fn mid() { leaf(); } fn leaf() { panic!(\"boom\"); }",
        )]);
        let root = fn_idx(&g, "a::m::root");
        let leaf = fn_idx(&g, "a::m::leaf");
        let reach = g.reach_from(&[root]);
        assert!(reach.contains_key(&leaf));
        let trace = g.trace_to(&reach, leaf);
        assert_eq!(trace.len(), 2, "root -> mid hops: {trace:?}");
        assert!(trace[0].starts_with("a::m::root ("));
        assert!(trace[1].starts_with("a::m::mid ("));
    }

    #[test]
    fn closure_pipes_do_not_split_args() {
        let toks = lex("f(|a, b| cmp(a, b), x)");
        let (argc, _) = scan_call_args(&toks, 1);
        assert_eq!(argc, 2, "closure + x");
    }

    #[test]
    fn dep_parsing_reads_path_dependencies_only() {
        let deps = parse_path_deps(
            "[package]\nname = \"pimento-serve\"\n[dependencies]\npimento-core = { path = \"../core\" }\nbytes = { workspace = true }\n[dev-dependencies]\npimento-bench = { path = \"../bench\" }\n",
        );
        assert!(deps.contains("core"));
        assert!(!deps.contains("bench"), "dev-deps are runtime-invisible");
    }
}
