//! A minimal Rust token scanner — just enough lexical structure for the
//! PIMENTO invariant lints (see [`crate::rules`]).
//!
//! The scanner understands comments (line, nested block), string-ish
//! literals (strings, raw strings with arbitrary hash fences, byte
//! strings, chars vs lifetimes), numbers, identifiers, and multi-char
//! operators, and discards comment/literal *content* so rule patterns
//! never match inside prose or test data. It is deliberately not a parser:
//! the rules only need token adjacency, which survives any formatting.

/// What a token is, with only as much payload as the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (payload is the exact text).
    Ident(String),
    /// Operator / punctuation, longest-match (`==`, `::`, `..=`, `.`, …).
    Punct(&'static str),
    /// Integer literal (`0`, `42usize`, `0xFF`). Distinguished because a
    /// comparison against one proves the other operand is not an `f64`.
    Int,
    /// String-ish literal (plain, raw, or byte string). Distinguished
    /// because an equality against one proves a string comparison.
    Str,
    /// Any other literal: char, float.
    Lit,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based byte column the token starts on.
    pub col: u32,
    /// Token payload.
    pub kind: TokKind,
}

impl Tok {
    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// Is this the punctuation `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokKind::Punct(s) if *s == p)
    }
}

/// Multi-char operators, longest first so the match below is maximal.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "<", ">", "=", "+", "-", "*", "/", "%",
    "^", "&", "|", "!", "~", "@", ".", ",", ";", ":", "#", "$", "?", "(", ")", "[", "]", "{", "}",
];

/// Tokenize `source`. Unrecognized bytes are skipped (the lints only care
/// about well-formed Rust, which the compiler gate guarantees anyway).
pub fn lex(source: &str) -> Vec<Tok> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    // Byte index where the current line starts (column = i - line_start + 1).
    let mut line_start: usize = 0;

    // Advance over `n` bytes, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            for k in 0..$n {
                if bytes.get(i + k) == Some(&b'\n') {
                    line += 1;
                    line_start = i + k + 1;
                }
            }
            i += $n;
        }};
    }
    macro_rules! col {
        () => {
            (i - line_start + 1) as u32
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;

        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also doc comments).
        if bytes[i..].starts_with(b"//") {
            let end = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| i + p)
                .unwrap_or(bytes.len());
            bump!(end - i);
            continue;
        }

        // Block comment, nested.
        if bytes[i..].starts_with(b"/*") {
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                if bytes[j..].starts_with(b"/*") {
                    depth += 1;
                    j += 2;
                } else if bytes[j..].starts_with(b"*/") {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            bump!(j - i);
            continue;
        }

        // Raw strings: r"…", r#"…"#, br##"…"##, …
        if c == 'r' || (c == 'b' && bytes.get(i + 1) == Some(&b'r')) {
            let start = if c == 'r' { i + 1 } else { i + 2 };
            let mut hashes = 0;
            let mut j = start;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                let open_line = line;
                let open_col = col!();
                // Find closing `"` followed by `hashes` hashes.
                let mut k = j + 1;
                loop {
                    match bytes.get(k) {
                        None => break,
                        Some(&b'"')
                            if bytes[k + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&b| b == b'#')
                                .count()
                                == hashes =>
                        {
                            k += 1 + hashes;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                bump!(k - i);
                toks.push(Tok {
                    line: open_line,
                    col: open_col,
                    kind: TokKind::Str,
                });
                continue;
            }
            // Not a raw string: fall through to identifier handling.
        }

        // Plain / byte strings.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&b'"')) {
            let open_line = line;
            let open_col = col!();
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            bump!(j - i);
            toks.push(Tok {
                line: open_line,
                col: open_col,
                kind: TokKind::Str,
            });
            continue;
        }

        // Char literal vs lifetime. `'a'` / `'\n'` are literals; `'a` (not
        // followed by a closing quote) is a lifetime and produces nothing.
        if c == '\'' {
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(n) => {
                    bytes.get(i + 2) == Some(&b'\'') || !(n.is_ascii_alphanumeric() || n == b'_')
                }
                None => false,
            };
            if is_char {
                let open_line = line;
                let open_col = col!();
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                bump!(j - i);
                toks.push(Tok {
                    line: open_line,
                    col: open_col,
                    kind: TokKind::Lit,
                });
            } else {
                // Lifetime: skip the quote and the identifier.
                let mut j = i + 1;
                while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                bump!(j - i);
            }
            continue;
        }

        // Numbers. A `.` joins the number only when followed by a digit
        // (so `0..n` stays a range and `a.0` stays a field access).
        if c.is_ascii_digit() {
            let open_line = line;
            let open_col = col!();
            let mut j = i + 1;
            while j < bytes.len() {
                let b = bytes[j] as char;
                let continues = b.is_ascii_alphanumeric()
                    || b == '_'
                    || (b == '.'
                        && bytes
                            .get(j + 1)
                            .map(|&n| (n as char).is_ascii_digit())
                            .unwrap_or(false))
                    || ((b == '+' || b == '-')
                        && matches!(bytes.get(j - 1), Some(&b'e') | Some(&b'E')));
                if !continues {
                    break;
                }
                j += 1;
            }
            let text = &source[i..j];
            let is_int = !text.contains('.')
                && !text.ends_with("f32")
                && !text.ends_with("f64")
                && (text.starts_with("0x")
                    || text.starts_with("0o")
                    || text.starts_with("0b")
                    || !text.contains(['e', 'E']));
            bump!(j - i);
            toks.push(Tok {
                line: open_line,
                col: open_col,
                kind: if is_int { TokKind::Int } else { TokKind::Lit },
            });
            continue;
        }

        // Identifiers / keywords (incl. raw identifiers `r#foo`).
        if c.is_alphabetic() || c == '_' {
            let open_line = line;
            let open_col = col!();
            let mut j = i;
            // `r#ident` raw identifier.
            if (c == 'r' || c == 'b') && bytes.get(i + 1) == Some(&b'#') {
                // Only when what follows is an identifier char (raw strings
                // were handled above).
                if bytes
                    .get(i + 2)
                    .map(|&n| (n as char).is_alphabetic() || n == b'_')
                    .unwrap_or(false)
                {
                    j = i + 2;
                }
            }
            let word_start = j;
            while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let text = source[word_start..j].to_string();
            bump!(j - i);
            toks.push(Tok {
                line: open_line,
                col: open_col,
                kind: TokKind::Ident(text),
            });
            continue;
        }

        // Punctuation, longest match.
        let rest = &source[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            let open_line = line;
            let open_col = col!();
            bump!(p.len());
            toks.push(Tok {
                line: open_line,
                col: open_col,
                kind: TokKind::Punct(p),
            });
            continue;
        }

        // Unknown byte (non-ASCII punctuation etc.): skip.
        bump!(1);
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "thread::spawn inside a string";
            let r = r#"static mut inside a raw string"#;
            let c = '"';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids
            .iter()
            .any(|s| s == "unwrap" || s == "panic" || s == "spawn"));
        assert!(!ids.iter().any(|s| s == "mut"));
    }

    #[test]
    fn numbers_swallow_decimal_points() {
        let toks = lex("a.weight != 1.0; let r = 0..n; t.0.partial_cmp(&u.0)");
        // `1.0` is one literal: no bare `.` between `1` and `0`.
        let dots = toks.iter().filter(|t| t.is_punct(".")).count();
        assert_eq!(
            dots, 4,
            "a.weight, t.0, .partial_cmp, u.0 — not 1.0: {toks:?}"
        );
        assert!(toks.iter().any(|t| t.is_punct("..")), "range survives");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 1, "only the char literal: {toks:?}");
    }

    #[test]
    fn string_literals_are_distinguished() {
        let toks =
            lex(r##"let a = "s"; let b = r#"raw"#; let c = b"bytes"; let d = 'x'; let e = 1.5;"##);
        let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 3, "plain, raw, byte strings: {toks:?}");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 2, "char and float stay Lit: {toks:?}");
    }

    #[test]
    fn operators_longest_match() {
        let toks = lex("a <= b << c == d != e");
        let ops: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["<=", "<<", "==", "!="]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn columns_track_byte_offsets() {
        let toks = lex("ab cd\n  ef.gh()");
        let pos: Vec<(u32, u32)> = toks.iter().map(|t| (t.line, t.col)).collect();
        // ab@1:1 cd@1:4 ef@2:3 .@2:5 gh@2:6 (@2:8 )@2:9
        assert_eq!(
            pos,
            vec![(1, 1), (1, 4), (2, 3), (2, 5), (2, 6), (2, 8), (2, 9)]
        );
    }

    #[test]
    fn columns_survive_strings_and_comments() {
        let toks = lex("/* x */ \"s\" ident");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!((toks[0].line, toks[0].col), (1, 9));
        assert_eq!((toks[1].line, toks[1].col), (1, 13));
    }
}
