//! `pimento-lint`: dependency-free, token-level invariant lints for the
//! PIMENTO workspace.
//!
//! Two layers of static analysis guard the reproduction (DESIGN.md §9):
//! this crate checks the *Rust sources* (score-float discipline, hot-path
//! panic freedom, clamped parallelism, no `static mut`, `forbid(unsafe)`
//! on crate roots), while `Plan::verify()` / `Profile::verify()` check the
//! *IR artifacts* at runtime. Both are wired into `scripts/verify.sh` and
//! the `pimento lint` CLI subcommand.
//!
//! The scanner is deliberately self-contained (no `syn`, no crates.io):
//! the lint gate must not depend on the code it checks, and the build
//! environment is offline.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod offsets;
pub mod panic_free;
pub mod parser;
pub mod rules;

pub use rules::{scan_source, Violation};

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories scanned at the workspace root. `vendor/` (shim crates) and
/// `target/` are deliberately absent: the lints govern our code only.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// One allowlist entry: `rule path-suffix excerpt-substring`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry silences.
    pub rule: String,
    /// Suffix of the workspace-relative path (forward slashes).
    pub path_suffix: String,
    /// Whitespace-normalized substring of the offending line.
    pub needle: String,
    /// 1-based line in the allowlist file (for stale reporting).
    pub file_line: u32,
    /// Raw line text (for stale reporting).
    pub raw: String,
}

/// Parsed allowlist with per-entry use tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse the `lint.allow` format: one entry per line,
    /// `rule path-suffix excerpt-substring…` (the substring is the rest of
    /// the line and may contain spaces); `#` starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (rule, path_suffix, needle) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(n)) if !n.trim().is_empty() => (r, p, n),
                _ => return Err(format!(
                    "lint.allow:{}: expected `rule path-suffix excerpt-substring`, got `{line}`",
                    idx + 1
                )),
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path_suffix: path_suffix.to_string(),
                needle: normalize(needle),
                file_line: idx as u32 + 1,
                raw: line.to_string(),
            });
        }
        let used = vec![false; entries.len()];
        Ok(Allowlist { entries, used })
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Does an entry cover this violation? Marks the entry used.
    pub fn covers(&mut self, v: &Violation) -> bool {
        let excerpt = normalize(&v.excerpt);
        let mut hit = false;
        for (entry, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if entry.rule == v.rule
                && v.path.ends_with(&entry.path_suffix)
                && excerpt.contains(&entry.needle)
            {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that silenced nothing — they point at code that no longer
    /// exists and should be deleted.
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter(|(_, used)| !**used)
            .map(|(e, _)| e)
            .collect()
    }
}

/// Collapse runs of whitespace so allowlist matching survives rustfmt.
fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the allowlist, in path/line order.
    pub violations: Vec<Violation>,
    /// Violations silenced by the allowlist (counted, for the summary).
    pub allowed: usize,
    /// Allowlist entries that matched nothing (stale; `rule path needle`).
    pub stale_entries: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Clean scan: no live violations and no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Machine-readable report for CI (`--format json`). Hand-rolled
    /// serialization: the lint gate stays dependency-free.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": {}, ", json_str(v.rule)));
            s.push_str(&format!("\"path\": {}, ", json_str(&v.path)));
            s.push_str(&format!("\"line\": {}, ", v.line));
            s.push_str(&format!("\"col\": {}, ", v.col));
            s.push_str(&format!("\"message\": {}, ", json_str(&v.message)));
            s.push_str(&format!("\"excerpt\": {}, ", json_str(&v.excerpt)));
            s.push_str("\"trace\": [");
            for (j, hop) in v.trace.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(hop));
            }
            s.push_str("]}");
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"stale_allowlist_entries\": [");
        for (i, e) in self.stale_entries.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(e));
        }
        s.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"allowed\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.allowed,
            self.is_clean()
        ));
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(
                f,
                "{}:{}:{}: [{}] {}",
                v.path, v.line, v.col, v.rule, v.message
            )?;
            if !v.excerpt.is_empty() {
                writeln!(f, "    {}", v.excerpt)?;
            }
            for hop in &v.trace {
                writeln!(f, "    via {hop}")?;
            }
        }
        for s in &self.stale_entries {
            writeln!(f, "lint.allow: stale entry (matches nothing): {s}")?;
        }
        write!(
            f,
            "pimento-lint: {} file(s), {} violation(s), {} allowlisted, {} stale allowlist entr{}",
            self.files_scanned,
            self.violations.len(),
            self.allowed,
            self.stale_entries.len(),
            if self.stale_entries.len() == 1 {
                "y"
            } else {
                "ies"
            }
        )
    }
}

/// Scan the workspace rooted at `root` using the allowlist at
/// `allow_path` (missing file = empty allowlist). Runs the token-level
/// rules per file, then the three call-graph analyses (panic-path,
/// lock-order, unchecked-offset) over the whole workspace.
pub fn scan_workspace(root: &Path, allow_path: &Path) -> Result<Report, String> {
    let mut allow = Allowlist::load(allow_path)?;
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();

    let mut sources: Vec<(String, String)> = Vec::new();
    for file in &files {
        let rel = rel_path(root, file);
        let source = fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        sources.push((rel, source));
    }

    let mut found: Vec<Violation> = Vec::new();
    for (rel, source) in &sources {
        found.extend(scan_source(rel, source));
    }

    let graph = callgraph::Graph::build(root, &sources);
    found.extend(panic_free::check(&graph));
    found.extend(locks::check(&graph));
    found.extend(offsets::check(&graph));
    found.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for v in found {
        if allow.covers(&v) {
            report.allowed += 1;
        } else {
            report.violations.push(v);
        }
    }
    report.stale_entries = allow
        .stale()
        .iter()
        .map(|e| format!("{} (line {})", e.raw, e.file_line))
        .collect();
    Ok(report)
}

/// Walk up from `start` to the outermost directory containing a
/// `Cargo.toml` with a `[workspace]` table (so running from a member
/// crate still scans the whole workspace). Any manifest is a fallback
/// root; a `[workspace]` manifest keeps winning so the outermost
/// workspace is preferred.
pub fn find_workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    let mut found: Option<PathBuf> = None;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") || found.is_none() {
                found = Some(dir.clone());
            }
        }
        if !dir.pop() {
            return found;
        }
    }
}

/// Workspace-relative path with forward slashes (rule predicates and the
/// allowlist both key on this form).
fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collect `.rs` files; absent directories are fine.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str, excerpt: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            excerpt: excerpt.to_string(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn allowlist_matches_on_rule_path_suffix_and_excerpt() {
        let mut allow =
            Allowlist::parse("float-cmp crates/algebra/src/topk.rs let k_win = m.k > a.k + kb;\n")
                .unwrap();
        let v = violation(
            "float-cmp",
            "crates/algebra/src/topk.rs",
            "let k_win = m.k > a.k + kb;",
        );
        assert!(allow.covers(&v));
        assert!(allow.stale().is_empty());

        // Different rule or path: no cover.
        let mut allow2 =
            Allowlist::parse("float-cmp crates/algebra/src/topk.rs let k_win = m.k > a.k + kb;\n")
                .unwrap();
        assert!(!allow2.covers(&violation(
            "hot-path-panic",
            "crates/algebra/src/topk.rs",
            "let k_win = m.k > a.k + kb;"
        )));
        assert!(!allow2.covers(&violation(
            "float-cmp",
            "crates/index/src/values.rs",
            "let k_win = m.k > a.k + kb;"
        )));
        assert_eq!(allow2.stale().len(), 1);
    }

    #[test]
    fn allowlist_matching_is_whitespace_normalized() {
        let mut allow =
            Allowlist::parse("float-cmp topk.rs let  k_win =\tm.k > a.k + kb;\n").unwrap();
        let v = violation(
            "float-cmp",
            "crates/algebra/src/topk.rs",
            "let k_win = m.k > a.k + kb;",
        );
        assert!(allow.covers(&v));
    }

    #[test]
    fn comments_and_blanks_are_skipped_and_bad_lines_rejected() {
        let allow = Allowlist::parse("# comment\n\nfloat-cmp a.rs needle text\n").unwrap();
        assert_eq!(allow.entries.len(), 1);
        assert!(Allowlist::parse("float-cmp only-two-fields\n").is_err());
    }

    #[test]
    fn report_display_and_cleanliness() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.stale_entries.push("x".into());
        assert!(!r.is_clean());
        let mut r2 = Report::default();
        r2.violations.push(violation(
            "static-mut",
            "src/lib.rs",
            "static mut X: u8 = 0;",
        ));
        assert!(!r2.is_clean());
        let text = r2.to_string();
        assert!(text.contains("[static-mut]"));
        assert!(text.contains("src/lib.rs:1:1:"));
    }
}
