//! Lock-order analysis over `crates/serve` (`lock-order` rule,
//! DESIGN.md §14).
//!
//! The serve layer holds a handful of named locks (`cache`, `inner`,
//! `writer`, `sessions`). This pass tracks the *held-lock set* through
//! each function body — acquisitions are either calls to the serve
//! guard-returning wrappers (`lock`, `read_guard`, `write_guard`;
//! detected by their `…Guard` return type) or direct zero-arg
//! `.lock()`/`.read()`/`.write()` method calls — and propagates
//! acquisitions through the serve-internal call graph. Every ordered
//! pair `A held → B acquired` becomes an edge; a cycle in that graph is
//! a potential deadlock, reported with both acquisition sites.
//!
//! Guard lifetimes follow the workspace idiom: a guard consumed by a
//! chained call (`lock(&m).get(…)`) is a statement-scoped temporary; a
//! `let g = …` binding lives to the end of its block or an explicit
//! `drop(g)`; anything else is conservatively block-scoped.

use std::collections::{HashMap, HashSet};

use crate::callgraph::{scan_call_args, Graph};
use crate::lexer::TokKind;
use crate::rules::Violation;

/// One `A held while B acquired` observation.
#[derive(Debug, Clone)]
struct Edge {
    held: String,
    held_path: String,
    held_line: u32,
    held_col: u32,
    acq: String,
    acq_path: String,
    acq_line: u32,
    acq_col: u32,
    /// `Some(callee path)` when the acquisition is inside a callee.
    via: Option<String>,
}

/// Run the analysis over a built call graph.
pub fn check(graph: &Graph) -> Vec<Violation> {
    // Serve functions, and the guard-returning wrappers among them.
    let mut serve_fns: Vec<usize> = Vec::new();
    let mut wrappers: HashSet<usize> = HashSet::new();
    let mut wrapper_names: HashSet<&str> = HashSet::new();
    for (i, n) in graph.fns.iter().enumerate() {
        let file = &graph.files[n.file];
        if file.crate_name != "serve" || file.is_test || n.def.in_test {
            continue;
        }
        serve_fns.push(i);
        if n.def.returns_guard {
            wrappers.insert(i);
            wrapper_names.insert(n.def.name.as_str());
        }
    }

    // ACQ*: lock names each serve fn may acquire, transitively (wrapper
    // bodies excluded — their acquisition is attributed to the caller).
    let direct: HashMap<usize, Vec<Acq>> = serve_fns
        .iter()
        .filter(|i| !wrappers.contains(i))
        .map(|&i| (i, acquisitions(graph, i, &wrapper_names)))
        .collect();
    let mut acq_star: HashMap<usize, HashSet<String>> = direct
        .iter()
        .map(|(&i, acqs)| (i, acqs.iter().map(|a| a.lock.clone()).collect()))
        .collect();
    loop {
        let mut changed = false;
        for &f in &serve_fns {
            if wrappers.contains(&f) {
                continue;
            }
            let mut add: Vec<String> = Vec::new();
            for site in &graph.calls[f] {
                if let Some(set) = acq_star.get(&site.callee) {
                    add.extend(set.iter().cloned());
                }
            }
            let set = acq_star.entry(f).or_default();
            for l in add {
                changed |= set.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Walk each body with the held-set simulation, collecting edges.
    let mut edges: Vec<Edge> = Vec::new();
    for &f in &serve_fns {
        if wrappers.contains(&f) {
            continue;
        }
        walk_fn(graph, f, &direct[&f], &wrappers, &acq_star, &mut edges);
    }

    report_cycles(&edges)
}

/// One acquisition site inside a body.
#[derive(Debug, Clone)]
struct Acq {
    lock: String,
    line: u32,
    col: u32,
    /// Token index of the acquisition's first token.
    at: usize,
    /// Token index just past the call's closing `)`.
    after: usize,
}

/// Find every acquisition in fn `f`'s body: wrapper calls (lock name =
/// terminal field of the argument) and direct zero-arg
/// `.lock()`/`.read()`/`.write()` (lock name = terminal receiver field).
fn acquisitions(graph: &Graph, f: usize, wrapper_names: &HashSet<&str>) -> Vec<Acq> {
    let node = &graph.fns[f];
    let toks = &graph.files[node.file].toks;
    let Some((open, close)) = node.def.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Wrapper call: `lock(&self.cache)` — not preceded by `.`.
        if let TokKind::Ident(name) = &toks[j].kind {
            let is_method = j > 0 && toks[j - 1].is_punct(".");
            if !is_method
                && wrapper_names.contains(name.as_str())
                && toks.get(j + 1).map(|t| t.is_punct("(")).unwrap_or(false)
            {
                let (_, close_paren) = scan_call_args(toks, j + 1);
                // Terminal field ident of the argument names the lock.
                let lock = (j + 2..close_paren)
                    .rev()
                    .find_map(|k| match &toks[k].kind {
                        TokKind::Ident(s) if s != "self" => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| "?".to_string());
                out.push(Acq {
                    lock,
                    line: toks[j].line,
                    col: toks[j].col,
                    at: j,
                    after: close_paren + 1,
                });
                j += 2; // walk into the args (nested acquisitions count)
                continue;
            }
            // Direct method acquisition: `recv.lock()` zero-arg.
            if is_method
                && matches!(name.as_str(), "lock" | "read" | "write")
                && toks.get(j + 1).map(|t| t.is_punct("(")).unwrap_or(false)
            {
                let (argc, close_paren) = scan_call_args(toks, j + 1);
                if argc == 0 {
                    let lock = match toks.get(j.wrapping_sub(2)).map(|t| &t.kind) {
                        Some(TokKind::Ident(s)) if s != "self" => s.clone(),
                        _ => "?".to_string(),
                    };
                    out.push(Acq {
                        lock,
                        line: toks[j].line,
                        col: toks[j].col,
                        at: j,
                        after: close_paren + 1,
                    });
                }
            }
        }
        j += 1;
    }
    out
}

/// How long a guard lives.
#[derive(Debug, Clone)]
enum GuardScope {
    /// Temporary: dies at the next `;` at `depth`.
    Stmt { depth: usize },
    /// Lives until the block at `depth` closes.
    Block { depth: usize },
    /// `let name = …`: block-scoped, or an explicit `drop(name)`.
    Named { name: String, depth: usize },
}

/// Simulate the held-lock set through fn `f`'s body, appending edges.
fn walk_fn(
    graph: &Graph,
    f: usize,
    acqs: &[Acq],
    wrappers: &HashSet<usize>,
    acq_star: &HashMap<usize, HashSet<String>>,
    edges: &mut Vec<Edge>,
) {
    let node = &graph.fns[f];
    let file = &graph.files[node.file];
    let toks = &file.toks;
    let Some((open, close)) = node.def.body else {
        return;
    };

    let acq_at: HashMap<usize, &Acq> = acqs.iter().map(|a| (a.at, a)).collect();
    // Resolved calls by (line, col) of the call token.
    let mut calls_at: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for site in &graph.calls[f] {
        calls_at
            .entry((site.line, site.col))
            .or_default()
            .push(site.callee);
    }

    struct Held {
        lock: String,
        line: u32,
        col: u32,
        scope: GuardScope,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 1usize; // inside the body braces
    let mut j = open + 1;
    while j < close {
        match &toks[j].kind {
            TokKind::Punct("{") => depth += 1,
            TokKind::Punct("}") => {
                depth = depth.saturating_sub(1);
                held.retain(|h| match &h.scope {
                    GuardScope::Block { depth: d } | GuardScope::Named { depth: d, .. } => {
                        *d <= depth
                    }
                    GuardScope::Stmt { .. } => true,
                });
            }
            TokKind::Punct(";") => {
                held.retain(|h| !matches!(&h.scope, GuardScope::Stmt { depth: d } if *d >= depth));
            }
            _ => {}
        }

        // `drop(g)` releases a named guard early.
        if toks[j].is_ident("drop") && toks.get(j + 1).map(|t| t.is_punct("(")).unwrap_or(false) {
            if let Some(TokKind::Ident(v)) = toks.get(j + 2).map(|t| &t.kind) {
                if toks.get(j + 3).map(|t| t.is_punct(")")).unwrap_or(false) {
                    held.retain(
                        |h| !matches!(&h.scope, GuardScope::Named { name, .. } if name == v),
                    );
                }
            }
        }

        if let Some(acq) = acq_at.get(&j) {
            // Edges from everything currently held to the new lock.
            for h in &held {
                edges.push(Edge {
                    held: h.lock.clone(),
                    held_path: file.path.clone(),
                    held_line: h.line,
                    held_col: h.col,
                    acq: acq.lock.clone(),
                    acq_path: file.path.clone(),
                    acq_line: acq.line,
                    acq_col: acq.col,
                    via: None,
                });
            }
            let scope = guard_scope(toks, open, acq, depth);
            held.push(Held {
                lock: acq.lock.clone(),
                line: acq.line,
                col: acq.col,
                scope,
            });
        } else if let TokKind::Ident(_) = &toks[j].kind {
            // A resolved call executed while locks are held: everything the
            // callee may acquire conflicts with the held set.
            if !held.is_empty() {
                if let Some(callees) = calls_at.get(&(toks[j].line, toks[j].col)) {
                    for &callee in callees {
                        if wrappers.contains(&callee) {
                            continue;
                        }
                        if let Some(set) = acq_star.get(&callee) {
                            let mut locks: Vec<&String> = set.iter().collect();
                            locks.sort();
                            for lock in locks {
                                for h in &held {
                                    edges.push(Edge {
                                        held: h.lock.clone(),
                                        held_path: file.path.clone(),
                                        held_line: h.line,
                                        held_col: h.col,
                                        acq: lock.clone(),
                                        acq_path: file.path.clone(),
                                        acq_line: toks[j].line,
                                        acq_col: toks[j].col,
                                        via: Some(graph.fn_path(callee)),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        j += 1;
    }
}

/// Decide a fresh guard's lifetime from the surrounding tokens.
fn guard_scope(
    toks: &[crate::lexer::Tok],
    body_open: usize,
    acq: &Acq,
    depth: usize,
) -> GuardScope {
    // Chained consumption comes first: in `let v = lock(&m).lookup(&k);`
    // the binding captures the *result* of the chain, not the guard — the
    // guard is a statement temporary that dies at the `;`.
    if toks
        .get(acq.after)
        .map(|t| t.is_punct("."))
        .unwrap_or(false)
    {
        return GuardScope::Stmt { depth };
    }
    // `let [mut] name = <acquisition>;` — scan back to the statement start.
    let mut k = acq.at;
    while k > body_open {
        match &toks[k - 1].kind {
            TokKind::Punct(";") | TokKind::Punct("{") | TokKind::Punct("}") => break,
            _ => k -= 1,
        }
    }
    if toks.get(k).map(|t| t.is_ident("let")).unwrap_or(false) {
        let mut n = k + 1;
        if toks.get(n).map(|t| t.is_ident("mut")).unwrap_or(false) {
            n += 1;
        }
        if let Some(TokKind::Ident(name)) = toks.get(n).map(|t| &t.kind) {
            if toks.get(n + 1).map(|t| t.is_punct("=")).unwrap_or(false) {
                return GuardScope::Named {
                    name: name.clone(),
                    depth,
                };
            }
        }
    }
    // Deref-assign (`*lock(&m) = v`) and other temporaries die at the
    // statement too; `match`/`if let` scrutinee guards live for the whole
    // construct — conservatively block-scoped.
    if toks
        .get(acq.after)
        .map(|t| t.is_punct("=") || t.is_punct(";"))
        .unwrap_or(false)
    {
        return GuardScope::Stmt { depth };
    }
    GuardScope::Block { depth }
}

/// Turn the edge set into at most one violation per lock cycle.
fn report_cycles(edges: &[Edge]) -> Vec<Violation> {
    // Adjacency on lock names, keeping the first edge per ordered pair.
    let mut first: HashMap<(String, String), &Edge> = HashMap::new();
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in edges {
        let key = (e.held.clone(), e.acq.clone());
        first.entry(key).or_insert(e);
        adj.entry(e.held.as_str()).or_default().push(e.acq.as_str());
    }

    let mut out = Vec::new();
    let mut reported: HashSet<Vec<String>> = HashSet::new();
    let mut pairs: Vec<(&(String, String), &&Edge)> = first.iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    for ((a, b), e) in pairs {
        // Self-deadlock: the lock is re-acquired while already held.
        if a == b {
            let key = vec![a.clone()];
            if reported.insert(key) {
                out.push(cycle_violation(
                    e,
                    format!(
                        "lock `{}` acquired at {}:{}:{} while already held (acquired at {}:{}:{}){} — non-reentrant locks self-deadlock",
                        a, e.acq_path, e.acq_line, e.acq_col, e.held_path, e.held_line, e.held_col,
                        via_suffix(e),
                    ),
                ));
            }
            continue;
        }
        // Two-lock (or longer) cycle: any path b → … → a closes it.
        if let Some(back) = find_path(&adj, b, a) {
            let mut key: Vec<String> = vec![a.clone(), b.clone()];
            key.sort();
            if reported.insert(key) {
                let back_edge = first.get(&back).copied();
                let back_txt = match back_edge {
                    Some(be) => format!(
                        "; the reverse order `{}` → `{}` is taken at {}:{}:{}{}",
                        be.held,
                        be.acq,
                        be.acq_path,
                        be.acq_line,
                        be.acq_col,
                        via_suffix(be)
                    ),
                    None => String::new(),
                };
                out.push(cycle_violation(
                    e,
                    format!(
                        "lock-order cycle: `{}` (held since {}:{}:{}) then `{}` acquired at {}:{}:{}{}{}",
                        a, e.held_path, e.held_line, e.held_col, b, e.acq_path, e.acq_line,
                        e.acq_col, via_suffix(e), back_txt,
                    ),
                ));
            }
        }
    }
    out
}

fn via_suffix(e: &Edge) -> String {
    match &e.via {
        Some(callee) => format!(" (inside callee `{callee}`)"),
        None => String::new(),
    }
}

fn cycle_violation(e: &Edge, message: String) -> Violation {
    Violation {
        rule: "lock-order",
        path: e.acq_path.clone(),
        line: e.acq_line,
        col: e.acq_col,
        message,
        excerpt: String::new(),
        trace: Vec::new(),
    }
}

/// Is there a lock-name path `from → … → to`? Returns the first edge key
/// on that path for site reporting.
fn find_path<'a>(
    adj: &HashMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<(String, String)> {
    let mut stack = vec![from];
    let mut seen: HashSet<&str> = HashSet::new();
    seen.insert(from);
    while let Some(cur) = stack.pop() {
        if let Some(nexts) = adj.get(cur) {
            for &n in nexts {
                if n == to {
                    return Some((cur.to_string(), n.to_string()));
                }
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const WRAP: &str = "pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { match m.lock() { Ok(g) => g, Err(p) => p.into_inner() } }\n";

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("{WRAP}{body}");
        let sources = vec![("crates/serve/src/server.rs".to_string(), src)];
        let graph = Graph::build(Path::new("/nonexistent-lint-fixture"), &sources);
        check(&graph)
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let v = run(
            "pub fn ab(s: &St) { let a = lock(&s.cache); let b = lock(&s.writer); }\n\
             pub fn ba(s: &St) { let b = lock(&s.writer); let a = lock(&s.cache); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].message.contains("cache") && v[0].message.contains("writer"));
    }

    #[test]
    fn cycle_through_a_callee_names_the_callee() {
        let v = run(
            "pub fn outer(s: &St) { let a = lock(&s.cache); helper(s); }\n\
             pub fn helper(s: &St) { let b = lock(&s.writer); inner2(s); }\n\
             pub fn inner2(s: &St) { let a = lock(&s.cache); }\n",
        );
        // cache → writer (via helper's own body after the call edge) and
        // cache reachable again under writer: self/cycle findings exist.
        assert!(!v.is_empty(), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("callee")), "{v:?}");
    }

    #[test]
    fn statement_temporaries_do_not_nest() {
        let v = run("pub fn get(s: &St) -> u32 { lock(&s.cache).peek(); lock(&s.cache).take() }\n");
        assert!(v.is_empty(), "chained guards die at the `;`: {v:?}");
    }

    #[test]
    fn dropped_guards_release_the_lock() {
        let v = run(
            "pub fn f(s: &St) { let q = lock(&s.inner); let job = q.pop(); drop(q); let w = lock(&s.inner); }\n",
        );
        assert!(v.is_empty(), "drop(q) releases before re-acquire: {v:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let v = run(
            "pub fn a(s: &St) { let x = lock(&s.cache); let y = lock(&s.writer); }\n\
             pub fn b(s: &St) { let x = lock(&s.cache); let y = lock(&s.writer); }\n",
        );
        assert!(v.is_empty(), "same order everywhere: {v:?}");
    }

    #[test]
    fn direct_method_acquisitions_count() {
        let v = run("pub fn f(s: &St) { let a = s.cache.lock(); let b = s.cache.lock(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("already held"), "{v:?}");
    }
}
