//! `pimento-lint` CLI: scan the workspace sources for invariant
//! violations (see DESIGN.md §9 and `lint.allow`).
//!
//! Exit codes: 0 clean, 1 violations or stale allowlist entries, 2 usage
//! or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lint --workspace [--root PATH] [--allowlist PATH] [--format text|json]

Scans crates/, src/, tests/, examples/ under the workspace root for
PIMENTO invariant violations: the token rules (float-cmp, hot-path-panic,
thread-spawn, static-mut, forbid-unsafe, lock-poison, hot-path-str-cmp)
and the call-graph analyses (panic-path, lock-order, unchecked-offset).
--root defaults to the directory containing Cargo.toml (found by walking
up from the current directory); --allowlist defaults to <root>/lint.allow;
--format json emits a machine-readable report for CI.";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist = Some(PathBuf::from(p)),
                None => return usage_error("--allowlist needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage_error("--format needs `text` or `json`"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("missing --workspace");
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| lint::find_workspace_root_from(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "lint: no Cargo.toml found walking up from the current directory; pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let allow_path = allowlist.unwrap_or_else(|| root.join("lint.allow"));

    match lint::scan_workspace(&root, &allow_path) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
