//! `pimento-lint` CLI: scan the workspace sources for invariant
//! violations (see DESIGN.md §9 and `lint.allow`).
//!
//! Exit codes: 0 clean, 1 violations or stale allowlist entries, 2 usage
//! or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lint --workspace [--root PATH] [--allowlist PATH]

Scans crates/, src/, tests/, examples/ under the workspace root for
PIMENTO invariant violations (float-cmp, hot-path-panic, thread-spawn,
static-mut, forbid-unsafe). --root defaults to the directory containing
Cargo.toml (found by walking up from the current directory); --allowlist
defaults to <root>/lint.allow.";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist = Some(PathBuf::from(p)),
                None => return usage_error("--allowlist needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("missing --workspace");
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("lint: no Cargo.toml found walking up from the current directory; pass --root");
            return ExitCode::from(2);
        }
    };
    let allow_path = allowlist.unwrap_or_else(|| root.join("lint.allow"));

    match lint::scan_workspace(&root, &allow_path) {
        Ok(report) => {
            println!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the current directory to the outermost dir containing a
/// `Cargo.toml` with a `[workspace]` table (so running from a member crate
/// still scans the whole workspace).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    let mut found: Option<PathBuf> = None;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            // Any manifest is a fallback root; a `[workspace]` manifest
            // keeps winning so the outermost workspace is preferred.
            if text.contains("[workspace]") || found.is_none() {
                found = Some(dir.clone());
            }
        }
        if !dir.pop() {
            return found;
        }
    }
}
