//! Unchecked-offset auditing for the columnar snapshot decoders
//! (`unchecked-offset` rule, DESIGN.md §14).
//!
//! The v4 snapshot opener slices sections out of an untrusted byte
//! buffer using directory-supplied offsets and lengths. Inside the
//! decoder functions of `columnar.rs` / `varint.rs` — everything
//! reachable from `open_index` / `inspect` / `is_columnar` /
//! `get_varint` / `get_delta_run` — raw `+`/`*` arithmetic on
//! offset-like values and direct `[…]` indexing are banned: a corrupted
//! directory must route through `checked_add`/`checked_mul`/`.get(…)`
//! into the typed `SnapshotCorrupt` error, never wrap around or panic.
//! The build-time writers in the same files keep ordinary arithmetic
//! (they compute offsets from data they just produced).

use std::collections::HashSet;

use crate::callgraph::Graph;
use crate::lexer::TokKind;
use crate::rules::Violation;

/// Files audited and the decoder roots inside them.
const DECODERS: &[(&str, &[&str], &[&str])] = &[
    (
        "index",
        &["columnar"],
        &["open_index", "inspect", "is_columnar"],
    ),
    ("index", &["varint"], &["get_varint", "get_delta_run"]),
];

/// Identifier fragments that mark a value as an offset/length in the
/// decoder code (`off`, `base`, … as substrings; `at`, `end`, … exact).
const OFFSET_SUBSTRINGS: &[&str] = &["off", "base", "len", "pos"];
const OFFSET_EXACT: &[&str] = &["at", "start", "end", "total", "idx", "i", "j", "n"];

fn is_offset_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    OFFSET_EXACT.contains(&lower.as_str()) || OFFSET_SUBSTRINGS.iter().any(|s| lower.contains(s))
}

/// Run the analysis over a built call graph.
pub fn check(graph: &Graph) -> Vec<Violation> {
    // Decoder roots, then restrict reachability to fns in the audited
    // files (arithmetic elsewhere is out of scope for this rule).
    let mut audited_files: HashSet<usize> = HashSet::new();
    let mut roots = Vec::new();
    for (krate, module, fns) in DECODERS {
        for idx in graph.find_fns(krate, module, fns) {
            audited_files.insert(graph.fns[idx].file);
            roots.push(idx);
        }
    }
    // Also audit helper fns in the same modules even when the root list
    // missed a file (e.g. a fixture with only helpers): map module → file.
    for (krate, module, _) in DECODERS {
        for idx in graph.find_fns(krate, module, &[]) {
            audited_files.insert(graph.fns[idx].file);
        }
    }

    let reach = graph.reach_from(&roots);
    let mut targets: Vec<usize> = reach
        .keys()
        .copied()
        .filter(|&f| audited_files.contains(&graph.fns[f].file))
        .collect();
    targets.sort_unstable();

    let mut out = Vec::new();
    for f in targets {
        audit_fn(graph, f, &mut out);
    }
    out
}

/// Scan one decoder fn body for raw offset `+`/`*` and `[…]` indexing.
fn audit_fn(graph: &Graph, f: usize, out: &mut Vec<Violation>) {
    let node = &graph.fns[f];
    let file = &graph.files[node.file];
    let toks = &file.toks;
    let Some((open, close)) = node.def.body else {
        return;
    };

    let mut push = |line: u32, col: u32, message: String| {
        out.push(Violation {
            rule: "unchecked-offset",
            path: file.path.clone(),
            line,
            col,
            message,
            excerpt: graph.excerpt(node.file, line),
            trace: Vec::new(),
        });
    };

    let mut j = open + 1;
    while j < close {
        match &toks[j].kind {
            // Direct indexing: flagged by position (the panic-path rule
            // also sees it; this rule explains the decoder-local fix).
            TokKind::Punct("[") if j > 0 => {
                let prev_ends_value = matches!(
                    &toks[j - 1].kind,
                    TokKind::Ident(_)
                        | TokKind::Int
                        | TokKind::Punct(")")
                        | TokKind::Punct("]")
                        | TokKind::Punct("?")
                ) && !matches!(&toks[j - 1].kind, TokKind::Ident(s) if crate::parser::EXPR_KEYWORDS.contains(&s.as_str()));
                if prev_ends_value {
                    push(
                        toks[j].line,
                        toks[j].col,
                        "direct `[…]` indexing in decoder code — use `.get(…)` and route misses to SnapshotCorrupt".into(),
                    );
                }
            }
            // Raw offset arithmetic: binary `+` / `*` with an offset-like
            // operand. Unary deref/positive forms don't match because the
            // previous token must end a value expression.
            TokKind::Punct(op @ ("+" | "*")) if j > 0 => {
                let binary = matches!(
                    &toks[j - 1].kind,
                    TokKind::Ident(_) | TokKind::Int | TokKind::Punct(")") | TokKind::Punct("]")
                ) && !matches!(&toks[j - 1].kind, TokKind::Ident(s) if crate::parser::EXPR_KEYWORDS.contains(&s.as_str()));
                if binary {
                    let mut operands: Vec<String> = Vec::new();
                    // Left: the field/variable chain just before the op.
                    let mut k = j;
                    while k > open {
                        match &toks[k - 1].kind {
                            TokKind::Ident(s) => {
                                operands.push(s.clone());
                                k -= 1;
                            }
                            TokKind::Punct(".") => k -= 1,
                            _ => break,
                        }
                    }
                    // Right: idents up to the end of the operand.
                    let mut k = j + 1;
                    let mut depth = 0usize;
                    while k < close {
                        match &toks[k].kind {
                            TokKind::Punct("(") | TokKind::Punct("[") => depth += 1,
                            TokKind::Punct(")") | TokKind::Punct("]") if depth == 0 => break,
                            TokKind::Punct(")") | TokKind::Punct("]") => depth -= 1,
                            TokKind::Punct(",") | TokKind::Punct(";") | TokKind::Punct("{")
                                if depth == 0 =>
                            {
                                break
                            }
                            TokKind::Punct(p)
                                if depth == 0
                                    && matches!(
                                        *p,
                                        "+" | "-"
                                            | "*"
                                            | "/"
                                            | ".."
                                            | "..="
                                            | "=="
                                            | "!="
                                            | "<"
                                            | ">"
                                            | "<="
                                            | ">="
                                            | "&&"
                                            | "||"
                                    ) =>
                            {
                                break
                            }
                            TokKind::Ident(s) => {
                                operands.push(s.clone());
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if operands.iter().any(|o| is_offset_ident(o)) {
                        let verb = if *op == "+" {
                            "checked_add"
                        } else {
                            "checked_mul"
                        };
                        push(
                            toks[j].line,
                            toks[j].col,
                            format!(
                                "raw `{op}` on offset-like value(s) {} in decoder code — use `{verb}` and route overflow to SnapshotCorrupt",
                                operands
                                    .iter()
                                    .filter(|o| is_offset_ident(o))
                                    .map(|o| format!("`{o}`"))
                                    .collect::<Vec<_>>()
                                    .join(", "),
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    // One finding per (line, col) even when several patterns overlap.
    out.dedup_by(|a, b| a.line == b.line && a.col == b.col && a.path == b.path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Violation> {
        let sources = vec![("crates/index/src/varint.rs".to_string(), src.to_string())];
        let graph = Graph::build(Path::new("/nonexistent-lint-fixture"), &sources);
        check(&graph)
    }

    #[test]
    fn raw_offset_add_in_a_decoder_is_flagged() {
        let v = run("pub fn get_varint(buf: &[u8], off: usize) -> Option<u64> { let end = off + 9; buf.get(off..end).map(|_| 0) }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unchecked-offset");
        assert!(v[0].message.contains("checked_add"), "{v:?}");
    }

    #[test]
    fn checked_arithmetic_and_get_are_clean() {
        let v = run("pub fn get_varint(buf: &[u8], off: usize) -> Option<u64> { let end = off.checked_add(9)?; buf.get(off..end).map(|_| 0) }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn indexing_in_a_decoder_is_flagged() {
        let v = run("pub fn get_varint(buf: &[u8], i: usize) -> u8 { buf[i] }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains(".get"), "{v:?}");
    }

    #[test]
    fn writer_fns_in_the_same_file_are_exempt() {
        let v = run(
            "pub fn get_varint(buf: &[u8]) -> u64 { 0 }\n\
             pub fn put_varint(buf: &mut Vec<u8>, total: usize) { let cap = total * 2; buf.reserve(cap); }",
        );
        assert!(
            v.is_empty(),
            "writers are unreachable from decoder roots: {v:?}"
        );
    }

    #[test]
    fn helpers_called_from_decoders_are_audited() {
        let v = run(
            "pub fn get_varint(buf: &[u8], off: usize) -> u64 { tail(buf, off) }\n\
             fn tail(buf: &[u8], off: usize) -> u64 { (off + 1) as u64 }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].path.ends_with("varint.rs"));
    }

    #[test]
    fn non_offset_arithmetic_is_allowed() {
        let v = run("pub fn get_varint(shift: u32, b: u8) -> u64 { ((b & 0x7f) as u64) * 2 + 3 }");
        assert!(v.is_empty(), "{v:?}");
    }
}
