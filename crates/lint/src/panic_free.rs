//! Panic-reachability analysis (`panic-path` rule, DESIGN.md §14).
//!
//! From the declared hot-path roots — the per-answer algebra operators,
//! the packed index decoders, and the serve request dispatch — every
//! transitively reachable function must be panic-free: no `panic!`-family
//! macro, no `.unwrap()` / one-arg `.expect(…)`, no slice-index sugar.
//! Each finding is anchored at the panic *site* and carries the full
//! root→site call chain so the reader can see exactly how a request
//! reaches the abort.
//!
//! This subsumes the token-level `hot-path-panic` rule for calls *out of*
//! the hot modules: a helper two crates away is now just as visible as an
//! inline `unwrap`.

use crate::callgraph::Graph;
use crate::rules::Violation;

/// Which functions of a module are hot-path roots.
enum RootFns {
    /// Every non-test function in the module.
    All,
    /// Only the named functions (decoder entry points; writers excluded).
    Only(&'static [&'static str]),
}

/// Declared hot-path roots: `(crate, module path, fns)`.
const ROOTS: &[(&str, &[&str], RootFns)] = &[
    // The per-answer algebra: evaluation, operators, ranking, top-k.
    ("algebra", &["eval"], RootFns::All),
    ("algebra", &["ops"], RootFns::All),
    ("algebra", &["rank"], RootFns::All),
    ("algebra", &["topk"], RootFns::All),
    // Packed index accessors: the columnar/varint *decoders* (the writers
    // run at build time and may assert) and the phrase scan.
    (
        "index",
        &["columnar"],
        RootFns::Only(&["open_index", "inspect", "is_columnar"]),
    ),
    (
        "index",
        &["varint"],
        RootFns::Only(&["get_varint", "get_delta_run"]),
    ),
    ("index", &["phrase"], RootFns::All),
    // Sharded-snapshot manifest decoding: parses untrusted on-disk text.
    ("index", &["segment"], RootFns::Only(&["parse"])),
    // Scatter-gather segment execution: runs on the serving path for
    // every query against a sharded engine.
    ("core", &["segment"], RootFns::All),
    // Serve request dispatch: everything a worker or reader thread runs
    // between accept and the response frame.
    (
        "serve",
        &["server"],
        RootFns::Only(&["worker_loop", "reader_loop", "handle_request"]),
    ),
    // Online ingestion: the live swap cell sits on every query's path,
    // and the write verbs run on worker threads where a stray panic would
    // poison the single-writer lock. The merger loop must never die to a
    // panic either — a dead merger silently stops compaction.
    ("ingest", &["live"], RootFns::All),
    (
        "ingest",
        &["writer"],
        RootFns::Only(&["add_documents", "delete_documents", "merger_loop"]),
    ),
    // Crash recovery and scrubbing (DESIGN.md §17): everything that runs
    // between "the disk holds whatever a crash left" and "the engine is
    // serving" must degrade to typed errors — a panic during recovery or
    // on the scrubber thread turns a survivable fault into an outage.
    ("serve", &["scrub"], RootFns::All),
    (
        "core",
        &["engine"],
        RootFns::Only(&["from_sharded_dir", "from_sharded_dir_vfs"]),
    ),
    (
        "ingest",
        &["store"],
        RootFns::Only(&["recover", "manifest", "quarantine_corrupt"]),
    ),
    (
        "faults",
        &["vfs"],
        RootFns::Only(&[
            "write_durable",
            "quarantine_file",
            "quarantine_stats",
            "enforce_quarantine_cap",
        ]),
    ),
];

/// Run the analysis over a built call graph.
pub fn check(graph: &Graph) -> Vec<Violation> {
    let mut roots = Vec::new();
    for (krate, module, fns) in ROOTS {
        let names: &[&str] = match fns {
            RootFns::All => &[],
            RootFns::Only(list) => list,
        };
        roots.extend(graph.find_fns(krate, module, names));
    }
    roots.sort_unstable();
    roots.dedup();

    let reach = graph.reach_from(&roots);
    let mut out = Vec::new();
    let mut hit: Vec<usize> = reach.keys().copied().collect();
    hit.sort_unstable(); // deterministic order independent of hash seeds
    for f in hit {
        if graph.panics[f].is_empty() {
            continue;
        }
        let mut trace = graph.trace_to(&reach, f);
        let (fpath, fline) = graph.fn_site(f);
        trace.push(format!("{} ({}:{})", graph.fn_path(f), fpath, fline));
        let root_path = if trace.len() > 1 {
            trace[0].split(' ').next().unwrap_or("").to_string()
        } else {
            graph.fn_path(f)
        };
        let file = graph.fns[f].file;
        for p in &graph.panics[f] {
            out.push(Violation {
                rule: "panic-path",
                path: graph.files[file].path.clone(),
                line: p.line,
                col: p.col,
                message: format!(
                    "{} reachable from hot-path root `{}` through {} call(s) — degrade to the typed error path",
                    p.kind.describe(),
                    root_path,
                    trace.len() - 1,
                ),
                excerpt: graph.excerpt(file, p.line),
                trace: trace.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let graph = Graph::build(Path::new("/nonexistent-lint-fixture"), &sources);
        check(&graph)
    }

    #[test]
    fn direct_panic_in_a_root_is_found() {
        let v = run(&[(
            "crates/algebra/src/eval.rs",
            "pub fn step(x: Option<u32>) -> u32 { x.unwrap() }",
        )]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic-path");
        assert!(v[0].message.contains("algebra::eval::step"));
    }

    #[test]
    fn panic_two_calls_deep_carries_the_chain() {
        let v = run(&[
            (
                "crates/algebra/src/eval.rs",
                "pub fn step(p: &[u32]) -> u32 { crate::util::helper(p) }",
            ),
            (
                "crates/algebra/src/util.rs",
                "pub fn helper(p: &[u32]) -> u32 { deep(p) } fn deep(p: &[u32]) -> u32 { *p.last().expect(\"nonempty\") }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].path, "crates/algebra/src/util.rs");
        assert_eq!(v[0].trace.len(), 3, "root, helper, deep: {:?}", v[0].trace);
        assert!(v[0].trace[0].starts_with("algebra::eval::step"));
        assert!(v[0].trace[2].starts_with("algebra::util::deep"));
    }

    #[test]
    fn cold_modules_do_not_root_the_search() {
        let v = run(&[(
            "crates/index/src/writer.rs",
            "pub fn save(x: Option<u32>) -> u32 { x.unwrap() }",
        )]);
        assert!(v.is_empty(), "writers are not roots: {v:?}");
    }

    #[test]
    fn unreached_helpers_may_panic() {
        let v = run(&[
            ("crates/algebra/src/eval.rs", "pub fn step() -> u32 { 1 }"),
            (
                "crates/algebra/src/util.rs",
                "pub fn build_time_only(x: Option<u32>) -> u32 { x.unwrap() }",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }
}
