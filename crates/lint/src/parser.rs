//! A lightweight recursive-descent *item* parser for the Rust subset the
//! PIMENTO workspace actually uses (DESIGN.md §14).
//!
//! The parser walks the token stream from [`crate::lexer`] and recovers
//! just enough structure for whole-workspace semantic analysis: module
//! nesting (`mod x { … }`), `impl`/`trait` blocks (for method keying),
//! and `fn` items with their signatures and brace-balanced body spans.
//! Everything else — expressions, types, patterns — is skipped with
//! balanced-bracket discipline; the *call-site* structure inside bodies
//! is recovered later by [`crate::callgraph`].
//!
//! Deliberate non-goals (soundness caveats, also listed in DESIGN.md):
//! macro-*generated* items are invisible (the workspace defines no such
//! macros), `use` renames are not tracked (resolution is by name, arity,
//! and crate dependency closure instead), and trait-object dispatch is
//! approximated by matching every same-name/same-arity method. These
//! caveats are also listed in DESIGN.md §14.5.

use crate::lexer::{Tok, TokKind};

/// One parsed `fn` item (free function, inherent/trait-impl method, or
/// trait signature).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Crate-relative module path, e.g. `["eval"]` for
    /// `crates/algebra/src/eval.rs`, inline `mod` names appended.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name when this is a method.
    pub self_ty: Option<String>,
    /// Trait being implemented (`impl Operator for Scan` → `Operator`);
    /// for a `trait` block, the trait's own name. Same-name/same-arity
    /// methods sharing a trait are one dynamic-dispatch family.
    pub trait_of: Option<String>,
    /// Function name.
    pub name: String,
    /// Parameter count, *excluding* any `self` receiver.
    pub params: usize,
    /// Whether the signature starts with a `self` receiver.
    pub has_self: bool,
    /// Whether the return type mentions a `…Guard` type — such functions
    /// are lock-*wrappers*: the acquisition belongs to their caller.
    pub returns_guard: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based byte column of the `fn` keyword.
    pub col: u32,
    /// Token index range of the body `{ … }` (inclusive of both braces),
    /// `None` for bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` item or module (excluded from the graph).
    pub in_test: bool,
}

impl FnDef {
    /// `module::Type::name`-style display path (without the crate).
    pub fn path_in_crate(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(|s| s.as_str()).collect();
        if let Some(ty) = &self.self_ty {
            parts.push(ty);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// Keywords that can directly precede `(` without being a call — used by
/// the call-site scanner in [`crate::callgraph`], kept here beside the
/// parser's own keyword knowledge.
pub const EXPR_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "let", "mut", "ref",
    "move", "break", "continue", "where", "unsafe", "dyn", "impl", "fn", "use", "pub", "mod",
    "struct", "enum", "trait", "type", "const", "static",
];

/// Parse every `fn` item in `toks`. `base_module` is the crate-relative
/// module path derived from the file path; `file_is_test` marks whole
/// files under `tests/`/`benches/`/`examples/`.
pub fn parse_fns(toks: &[Tok], base_module: &[String], file_is_test: bool) -> Vec<FnDef> {
    let test_mask = cfg_test_mask(toks);
    let mut out = Vec::new();
    // Scope stack: (kind, brace depth *at which the scope closes*).
    enum Scope {
        Module(String),
        Impl(Option<String>, Option<String>),
    }
    let mut scopes: Vec<(Scope, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct("{") => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct("}") => {
                depth = depth.saturating_sub(1);
                while matches!(scopes.last(), Some((_, d)) if *d == depth) {
                    scopes.pop();
                }
                i += 1;
            }
            // `mod name { … }` opens a module scope; `mod name;` is a file
            // module (handled by per-file base paths).
            TokKind::Ident(kw) if kw == "mod" => {
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    if toks.get(i + 2).map(|t| t.is_punct("{")).unwrap_or(false) {
                        scopes.push((Scope::Module(name.clone()), depth));
                        depth += 1;
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            // `impl … {` / `trait Name {`: key methods by the type name.
            TokKind::Ident(kw) if kw == "impl" || kw == "trait" => {
                let is_trait_decl = kw == "trait";
                let (ty, tr, open) = impl_type_name(toks, i);
                match open {
                    Some(open_idx) => {
                        let trait_of = if is_trait_decl { ty.clone() } else { tr };
                        scopes.push((Scope::Impl(ty, trait_of), depth));
                        depth += 1;
                        i = open_idx + 1;
                    }
                    None => i += 1,
                }
            }
            // `fn name` — `fn(` is a fn-pointer type, skipped by the
            // ident requirement.
            TokKind::Ident(kw) if kw == "fn" => {
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    let mut module: Vec<String> = base_module.to_vec();
                    let mut self_ty = None;
                    let mut trait_of = None;
                    for (s, _) in &scopes {
                        match s {
                            Scope::Module(m) => module.push(m.clone()),
                            Scope::Impl(ty, tr) => {
                                self_ty = ty.clone();
                                trait_of = tr.clone();
                            }
                        }
                    }
                    let (def, next) = parse_signature(
                        toks,
                        i,
                        name.clone(),
                        module,
                        self_ty,
                        trait_of,
                        file_is_test || test_mask[i],
                    );
                    // Scan *into* the body (nested fns/mods are items
                    // too); the body span is recorded on the def.
                    out.push(def);
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Extract the principal type name of an `impl`/`trait` header starting
/// at `kw`, the trait name when there is a `for`, and the index of its
/// opening `{`. For `impl Trait for Type` this is `(Type, Some(Trait))`;
/// generics and lifetimes are skipped.
fn impl_type_name(toks: &[Tok], kw: usize) -> (Option<String>, Option<String>, Option<usize>) {
    let mut i = kw + 1;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct("{") if angle == 0 => {
                let (name, tr) = if saw_for {
                    (after_for, last_ident)
                } else {
                    (last_ident, None)
                };
                return (name, tr, Some(i));
            }
            TokKind::Punct(";") if angle == 0 => return (None, None, None),
            TokKind::Punct("<") => angle += 1,
            TokKind::Punct(">") => angle = angle.saturating_sub(1),
            // `Vec<Vec<u8>>` lexes the closer as one `>>` shift token.
            TokKind::Punct(">>") => angle = angle.saturating_sub(2),
            TokKind::Ident(w) if w == "for" && angle == 0 => saw_for = true,
            TokKind::Ident(w) if w == "where" && angle == 0 => {
                // `impl<T> Foo<T> where …` — the name is settled; find `{`.
            }
            TokKind::Ident(w) if angle == 0 => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(w.clone());
                    }
                } else {
                    last_ident = Some(w.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (None, None, None)
}

/// Parse a `fn` signature starting at the `fn` keyword index; returns the
/// def and the index to resume scanning at (just *inside* the body so
/// nested items are still found, or past the `;`).
#[allow(clippy::too_many_arguments)]
fn parse_signature(
    toks: &[Tok],
    fn_kw: usize,
    name: String,
    module: Vec<String>,
    self_ty: Option<String>,
    trait_of: Option<String>,
    in_test: bool,
) -> (FnDef, usize) {
    let mut i = fn_kw + 2; // past `fn name`
                           // Generics.
    if toks.get(i).map(|t| t.is_punct("<")).unwrap_or(false) {
        let mut angle = 0usize;
        while i < toks.len() {
            match toks[i].kind {
                TokKind::Punct("<") => angle += 1,
                TokKind::Punct(">") => angle = angle.saturating_sub(1),
                TokKind::Punct(">>") => angle = angle.saturating_sub(2),
                _ => {}
            }
            i += 1;
            if angle == 0 {
                break;
            }
        }
    }
    // Parameters.
    let mut params = 0usize;
    let mut has_self = false;
    if toks.get(i).map(|t| t.is_punct("(")).unwrap_or(false) {
        let open = i;
        let mut depth = 0usize;
        let mut angle = 0usize;
        let mut any_tokens = false;
        let mut j = i;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct("(") | TokKind::Punct("[") | TokKind::Punct("{") => depth += 1,
                TokKind::Punct(")") | TokKind::Punct("]") | TokKind::Punct("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct("<") if depth == 1 => angle += 1,
                TokKind::Punct(">") if depth == 1 => angle = angle.saturating_sub(1),
                TokKind::Punct(">>") if depth == 1 => angle = angle.saturating_sub(2),
                // A trailing comma right before `)` separates nothing.
                TokKind::Punct(",")
                    if depth == 1
                        && angle == 0
                        && !toks.get(j + 1).map(|t| t.is_punct(")")).unwrap_or(false) =>
                {
                    params += 1;
                }
                TokKind::Ident(w) if w == "self" && depth == 1 && params == 0 => has_self = true,
                _ => {}
            }
            if j > open && depth >= 1 {
                any_tokens = true;
            }
            j += 1;
        }
        if any_tokens {
            params += 1; // N commas separate N+1 params
        }
        if has_self {
            params = params.saturating_sub(1);
        }
        i = j + 1;
    }
    // Return type (until `{`, `;`, or `where`), watching for `…Guard`.
    let mut returns_guard = false;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct("{") | TokKind::Punct(";") => break,
            TokKind::Ident(w) if w == "where" => break,
            TokKind::Ident(w) if w.ends_with("Guard") => {
                returns_guard = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Skip a `where` clause.
    while i < toks.len() && !toks[i].is_punct("{") && !toks[i].is_punct(";") {
        i += 1;
    }
    let (body, resume) = if toks.get(i).map(|t| t.is_punct("{")).unwrap_or(false) {
        let close = matching_brace(toks, i);
        // Resume *inside* the body: parse_fns keeps walking and will see
        // the `{` itself to track depth.
        (Some((i, close)), i)
    } else {
        (None, i + 1)
    };
    let def = FnDef {
        module,
        self_ty,
        trait_of,
        name,
        params,
        has_self,
        returns_guard,
        line: toks[fn_kw].line,
        col: toks[fn_kw].col,
        body,
        in_test,
    };
    (def, resume)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct("{") => depth += 1,
            TokKind::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Mark every token inside a `#[cfg(test)]` item (attribute included).
/// The item is whatever follows the attribute (plus any stacked
/// attributes): skipped through its balanced `{ … }` block, or to the
/// first `;` for block-less items.
pub fn cfg_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).map(|t| t.is_punct("[")).unwrap_or(false) {
            let attr_start = i;
            let (attr_end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                // Swallow stacked attributes after the cfg(test) one.
                let mut j = attr_end;
                while toks.get(j).map(|t| t.is_punct("#")).unwrap_or(false)
                    && toks.get(j + 1).map(|t| t.is_punct("[")).unwrap_or(false)
                {
                    let (e, _) = scan_attr(toks, j + 1);
                    j = e;
                }
                // Skip the item: to the matching `}` of its first block, or
                // to `;` if none opens first.
                let mut depth = 0usize;
                while j < toks.len() {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    } else if toks[j].is_punct(";") && depth == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j).skip(attr_start) {
                    *m = true;
                }
                i = j;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scan an attribute starting at its `[`; return (index past the matching
/// `]`, whether it is exactly `cfg(test)` — not `cfg(not(test))`).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut is_test = false;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_test);
            }
        } else if toks[j].is_ident("cfg")
            && toks.get(j + 1).map(|t| t.is_punct("(")).unwrap_or(false)
            && toks.get(j + 2).map(|t| t.is_ident("test")).unwrap_or(false)
            && toks.get(j + 3).map(|t| t.is_punct(")")).unwrap_or(false)
        {
            is_test = true;
        }
        j += 1;
    }
    (j, is_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_fns(&lex(src), &["m".to_string()], false)
    }

    #[test]
    fn free_fn_with_params_and_body() {
        let defs = fns("pub fn add(a: u32, b: u32) -> u32 { a + b }");
        assert_eq!(defs.len(), 1);
        let f = &defs[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params, 2);
        assert!(!f.has_self);
        assert!(f.body.is_some());
        assert_eq!(f.path_in_crate(), "m::add");
    }

    #[test]
    fn method_in_impl_is_keyed_by_type() {
        let defs = fns("impl Foo { pub fn get(&self, i: usize) -> u32 { self.v[i] } }");
        assert_eq!(defs.len(), 1);
        let f = &defs[0];
        assert_eq!(f.self_ty.as_deref(), Some("Foo"));
        assert!(f.has_self);
        assert_eq!(f.params, 1);
    }

    #[test]
    fn trait_impl_keys_on_the_implementing_type() {
        let defs =
            fns("impl Operator for Scan { fn next(&mut self, db: &Db, s: &mut St) -> Option<A> { None } }");
        assert_eq!(defs[0].self_ty.as_deref(), Some("Scan"));
        assert_eq!(defs[0].params, 2);
    }

    #[test]
    fn generic_params_do_not_split_on_type_commas() {
        let defs = fns("fn f(m: HashMap<String, u32>, n: usize) {}");
        assert_eq!(defs[0].params, 2, "HashMap<K, V> is one parameter");
    }

    #[test]
    fn nested_modules_extend_the_path() {
        let defs = fns("mod inner { pub fn g() {} } fn top() {}");
        assert_eq!(defs[0].path_in_crate(), "m::inner::g");
        assert_eq!(defs[1].path_in_crate(), "m::top");
    }

    #[test]
    fn nested_fns_are_found_and_scoped() {
        let defs = fns("fn outer() { fn helper(x: u32) -> u32 { x } helper(1); }");
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "outer");
        assert_eq!(defs[1].name, "helper");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let defs = fns("fn prod() {} #[cfg(test)] mod tests { fn t() { panic!(); } }");
        assert!(!defs[0].in_test);
        assert!(defs[1].in_test);
    }

    #[test]
    fn guard_returning_fns_are_flagged() {
        let defs = fns("fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }");
        assert!(defs[0].returns_guard);
        assert_eq!(defs[0].params, 1);
        let plain = fns("fn f() -> u32 { 0 }");
        assert!(!plain[0].returns_guard);
    }

    #[test]
    fn bodiless_trait_signatures_parse() {
        let defs = fns("trait Op { fn next(&mut self, db: &Db) -> Option<A>; fn done(&self) -> bool { true } }");
        assert_eq!(defs.len(), 2);
        assert!(defs[0].body.is_none());
        assert_eq!(defs[0].self_ty.as_deref(), Some("Op"));
        assert!(defs[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let defs = fns("fn takes(cb: fn(u32) -> u32) -> u32 { cb(1) }");
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].params, 1);
    }

    #[test]
    fn body_spans_are_brace_balanced() {
        let src = "fn f() { if x { y(); } else { z(); } } fn g() {}";
        let toks = lex(src);
        let defs = parse_fns(&toks, &[], false);
        let (open, close) = defs[0].body.unwrap();
        assert!(toks[open].is_punct("{") && toks[close].is_punct("}"));
        // g's body must not be inside f's span.
        let (g_open, _) = defs[1].body.unwrap();
        assert!(g_open > close);
    }

    #[test]
    fn trailing_commas_do_not_inflate_param_counts() {
        let defs = fns("fn f(\n    a: u32,\n    b: &'static str,\n) -> u32 { a }");
        assert_eq!(defs[0].params, 2, "trailing comma separates nothing");
    }

    #[test]
    fn where_clauses_are_skipped() {
        let defs = fns("fn f<T>(x: T) -> bool where T: Clone { true }");
        assert_eq!(defs[0].params, 1);
        assert!(defs[0].body.is_some());
    }
}
