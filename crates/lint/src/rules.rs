//! The PIMENTO-specific invariant rules, applied to the token stream of
//! one source file (see DESIGN.md §9 for the catalog and the failure each
//! rule prevents).
//!
//! | rule               | invariant                                                        |
//! |--------------------|------------------------------------------------------------------|
//! | `float-cmp`        | score ordering goes through `rank::cmp_f64_desc` only            |
//! | `hot-path-panic`   | no `unwrap`/`expect`/`panic!` family in hot-path modules (incl. the serve request path) |
//! | `hot-path-str-cmp` | answer-comparison modules compare interned ids, not strings      |
//! | `thread-spawn`     | all parallelism passes the `effective_workers` clamp             |
//! | `static-mut`       | no `static mut` anywhere                                         |
//! | `forbid-unsafe`    | every crate root carries `#![forbid(unsafe_code)]`               |
//! | `lock-poison`      | no `unwrap`/`expect` on lock results — recover poisoned guards   |
//!
//! Rules are token-level and skip `#[cfg(test)]` items (and files under
//! `tests/`, `benches/`, `examples/`), so test scaffolding can use
//! `unwrap()` freely while product code cannot.

use crate::lexer::{lex, Tok, TokKind};
use crate::parser::cfg_test_mask;

/// One rule violation, with enough provenance to locate and allowlist it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (stable; used by the allowlist).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed (allowlist entries match on it).
    pub excerpt: String,
    /// Root→site call chain, for the call-graph analyses (`panic-path`);
    /// empty for single-site rules.
    pub trace: Vec<String>,
}

/// Score fields whose raw comparison the `float-cmp` rule rejects: the
/// `S`/`K` components of answers and the per-rule weights/bounds that feed
/// them. Merges must be bit-identical across plans and shards, so every
/// ordering decision on these goes through `rank::cmp_f64_desc`.
const SCORE_FIELDS: &[&str] = &["s", "k", "weight", "bound"];

/// Comparison operators the `float-cmp` rule watches.
const CMP_OPS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];

/// Hot-path modules where panicking is banned (every answer-flow operator
/// plus the whole index layer, plus the serve request path: everything
/// between `accept` and the response frame must degrade to a typed
/// protocol error, never a worker-thread panic). The serve CLI bin is
/// excluded — process startup may exit loudly.
pub fn is_hot_path(path: &str) -> bool {
    path.starts_with("crates/index/src/")
        || (path.starts_with("crates/serve/src/") && !path.starts_with("crates/serve/src/bin/"))
        || matches!(
            path,
            "crates/algebra/src/ops.rs"
                | "crates/algebra/src/par.rs"
                | "crates/algebra/src/topk.rs"
                | "crates/algebra/src/plan.rs"
        )
}

/// Per-answer comparison modules where string equality is banned: tag
/// tests and `≺_V` value equality run once per answer (or per answer
/// pair), so they must go through interned symbols / compiled VOR keys
/// (DESIGN.md §10) — name comparisons belong at plan build.
pub fn is_answer_cmp_module(path: &str) -> bool {
    matches!(
        path,
        "crates/algebra/src/eval.rs"
            | "crates/algebra/src/ops.rs"
            | "crates/algebra/src/rank.rs"
            | "crates/algebra/src/topk.rs"
    )
}

/// Modules allowed to spawn threads: the sharded scan, the parallel
/// ingest, and the serve worker pool / per-connection readers all sit
/// behind the `resolve_threads` + `effective_workers` clamp; the ingest
/// writer spawns exactly one named background merger, not a pool, and
/// the scrubber spawns exactly one named `pimento-scrub` thread.
pub fn may_spawn_threads(path: &str) -> bool {
    matches!(
        path,
        "crates/algebra/src/par.rs"
            | "crates/index/src/parallel.rs"
            | "crates/serve/src/server.rs"
            | "crates/serve/src/scrub.rs"
            | "crates/ingest/src/writer.rs"
    )
}

/// The one module allowed to compare score floats directly.
pub fn is_rank_module(path: &str) -> bool {
    path == "crates/algebra/src/rank.rs"
}

/// Files that are test scaffolding wholesale (integration tests, benches,
/// examples): exempt from every rule except `static-mut`.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
pub fn needs_forbid_unsafe(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Scan one file. `path` is workspace-relative with forward slashes.
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    let toks = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    let test_mask = cfg_test_mask(&toks);
    let file_is_test = is_test_path(path);

    let mut push = |rule: &'static str, line: u32, col: u32, message: String| {
        out.push(Violation {
            rule,
            path: path.to_string(),
            line,
            col,
            message,
            excerpt: excerpt(line),
            trace: Vec::new(),
        });
    };

    for (i, t) in toks.iter().enumerate() {
        let in_test = file_is_test || test_mask[i];

        // static-mut: banned everywhere, tests included (a mutable global
        // breaks the determinism argument no matter who owns it).
        if t.is_ident("static") && toks.get(i + 1).map(|n| n.is_ident("mut")).unwrap_or(false) {
            push(
                "static-mut",
                t.line,
                t.col,
                "`static mut` is banned (shared-state mutation outside the clamped worker model)"
                    .into(),
            );
        }

        if in_test {
            continue;
        }

        // float-cmp (a): `.partial_cmp(` / `.total_cmp(` outside rank.rs.
        if !is_rank_module(path)
            && t.is_punct(".")
            && toks
                .get(i + 1)
                .map(|n| n.is_ident("partial_cmp") || n.is_ident("total_cmp"))
                .unwrap_or(false)
        {
            push(
                "float-cmp",
                toks[i + 1].line,
                toks[i + 1].col,
                "raw f64 ordering outside algebra::rank — route through rank::cmp_f64_desc so parallel merges stay bit-identical".into(),
            );
        }

        // float-cmp (b): `.<score-field> <cmp-op>` — e.g. `a.s < b.s`.
        if !is_rank_module(path) && t.is_punct(".") {
            if let (Some(TokKind::Ident(field)), Some(TokKind::Punct(op))) = (
                toks.get(i + 1).map(|t| &t.kind),
                toks.get(i + 2).map(|t| &t.kind),
            ) {
                // Comparing against an integer literal proves the field is
                // an integer (e.g. `opts.k == 0` counts results, not KOR
                // score) — f64 comparisons need a float literal.
                let rhs_int = matches!(toks.get(i + 3).map(|t| &t.kind), Some(TokKind::Int));
                if SCORE_FIELDS.contains(&field.as_str()) && CMP_OPS.contains(op) && !rhs_int {
                    push(
                        "float-cmp",
                        toks[i + 1].line,
                        toks[i + 1].col,
                        format!(
                            "raw comparison on score field `.{field}` — use rank::cmp_f64_desc"
                        ),
                    );
                }
            }
        }

        // float-cmp (c): `<cmp-op> <ident>.<score-field>` with the field
        // access terminating the operand — e.g. `x < a.k`.
        if !is_rank_module(path) {
            if let TokKind::Punct(op) = &t.kind {
                let lhs_int =
                    i > 0 && matches!(toks.get(i - 1).map(|t| &t.kind), Some(TokKind::Int));
                if CMP_OPS.contains(op)
                    && !lhs_int
                    && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Ident(_)))
                    && toks.get(i + 2).map(|n| n.is_punct(".")).unwrap_or(false)
                {
                    if let Some(TokKind::Ident(field)) = toks.get(i + 3).map(|t| &t.kind) {
                        let call_or_path = toks
                            .get(i + 4)
                            .map(|n| n.is_punct("(") || n.is_punct("."))
                            .unwrap_or(false);
                        if SCORE_FIELDS.contains(&field.as_str()) && !call_or_path {
                            push(
                                "float-cmp",
                                toks[i + 3].line,
                                toks[i + 3].col,
                                format!("raw comparison on score field `.{field}` — use rank::cmp_f64_desc"),
                            );
                        }
                    }
                }
            }
        }

        // hot-path-panic: `.unwrap()` / `.expect(` / panic-family macros.
        if is_hot_path(path) {
            if t.is_punct(".")
                && toks
                    .get(i + 1)
                    .map(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                    .unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_punct("(")).unwrap_or(false)
            {
                let name = match &toks[i + 1].kind {
                    TokKind::Ident(s) => s.clone(),
                    _ => String::new(),
                };
                push(
                    "hot-path-panic",
                    toks[i + 1].line,
                    toks[i + 1].col,
                    format!("`.{name}()` in a hot-path module — convert to the module's typed error enum"),
                );
            }
            if let TokKind::Ident(name) = &t.kind {
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
                {
                    push(
                        "hot-path-panic",
                        t.line,
                        t.col,
                        format!("`{name}!` in a hot-path module — hot paths must not abort"),
                    );
                }
            }
        }

        // hot-path-str-cmp (a): `.eq_ignore_ascii_case(` in an
        // answer-comparison module.
        if is_answer_cmp_module(path)
            && t.is_punct(".")
            && toks
                .get(i + 1)
                .map(|n| n.is_ident("eq_ignore_ascii_case"))
                .unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            push(
                "hot-path-str-cmp",
                toks[i + 1].line,
                toks[i + 1].col,
                "case-insensitive string comparison in an answer-comparison module — resolve names to interned symbols / compiled VOR ids at plan build".into(),
            );
        }

        // hot-path-str-cmp (b): `==` / `!=` against a string literal.
        if is_answer_cmp_module(path) {
            if let TokKind::Punct(op) = &t.kind {
                let str_operand = (i > 0 && matches!(toks[i - 1].kind, TokKind::Str))
                    || matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Str));
                if matches!(*op, "==" | "!=") && str_operand {
                    push(
                        "hot-path-str-cmp",
                        t.line,
                        t.col,
                        format!("string-literal `{op}` comparison in an answer-comparison module — intern the name and compare ids"),
                    );
                }
            }
        }

        // lock-poison: `.lock().unwrap()` / `.read().expect(…)` /
        // `.write().unwrap()` anywhere in product code. A poisoned lock
        // only means another thread panicked while holding it; every
        // critical section in this workspace leaves its structure
        // consistent, so the guard must be recovered
        // (`poisoned.into_inner()`), not used as a panic amplifier that
        // turns one bad request into a dead server.
        if t.is_punct(".") {
            if let Some(TokKind::Ident(acq)) = toks.get(i + 1).map(|t| &t.kind) {
                if matches!(acq.as_str(), "lock" | "read" | "write")
                    && toks.get(i + 2).map(|n| n.is_punct("(")).unwrap_or(false)
                    && toks.get(i + 3).map(|n| n.is_punct(")")).unwrap_or(false)
                    && toks.get(i + 4).map(|n| n.is_punct(".")).unwrap_or(false)
                    && toks
                        .get(i + 5)
                        .map(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                        .unwrap_or(false)
                    && toks.get(i + 6).map(|n| n.is_punct("(")).unwrap_or(false)
                {
                    push(
                        "lock-poison",
                        toks[i + 5].line,
                        toks[i + 5].col,
                        format!("`.{acq}().unwrap()`-style lock acquisition — recover the poisoned guard with `into_inner()` instead of propagating panics across threads"),
                    );
                }
            }
        }

        // thread-spawn: `thread::spawn` / `thread::scope` / `thread::Builder`
        // outside the two clamped parallelism modules.
        if !may_spawn_threads(path)
            && t.is_ident("thread")
            && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
            && toks
                .get(i + 2)
                .map(|n| n.is_ident("spawn") || n.is_ident("scope") || n.is_ident("Builder"))
                .unwrap_or(false)
        {
            push(
                "thread-spawn",
                t.line,
                t.col,
                "thread creation outside algebra::par / index::parallel — all parallelism must pass the effective_workers clamp".into(),
            );
        }
    }

    // forbid-unsafe: crate roots must carry the attribute.
    if needs_forbid_unsafe(path) && !has_forbid_unsafe(&toks) {
        push(
            "forbid-unsafe",
            1,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
        );
    }

    // One finding per (rule, line): an expression like `a.s == b.s` trips
    // both sides of the float-cmp patterns but is a single defect.
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

/// Does the token stream contain `#![forbid(unsafe_code)]` (possibly with
/// several lints in the list)?
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct("(")
            && w[2..].iter().any(|t| t.is_ident("unsafe_code"))
    }) && toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w.iter().any(|t| t.is_ident("unsafe_code"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    const HOT: &str = "crates/index/src/store.rs";

    #[test]
    fn seeded_float_compare_is_caught() {
        // `a.s < b.s` matches both the `.s <` and `< b.s` patterns, but a
        // single comparison is a single finding.
        let src = "fn f(a: &Answer, b: &Answer) -> bool { a.s < b.s }";
        assert_eq!(
            rules_hit("crates/core/src/engine.rs", src),
            vec!["float-cmp"]
        );
        let src2 = "fn f() { xs.sort_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap()); }";
        assert!(rules_hit("crates/core/src/engine.rs", src2).contains(&"float-cmp"));
    }

    #[test]
    fn rank_module_is_exempt_from_float_compare() {
        let src = "pub fn cmp_f64_desc(a: f64, b: f64) -> Ordering { b.partial_cmp(&a).unwrap_or(Ordering::Equal) }";
        assert!(rules_hit("crates/algebra/src/rank.rs", src).is_empty());
    }

    #[test]
    fn non_score_fields_pass() {
        let src = "fn f(a: &X) -> bool { a.start < a.end && a.len() < a.cap }";
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn integer_comparands_exempt_the_field() {
        // `k` is also the top-k result count (usize) on config structs; a
        // comparison against an integer literal cannot be an f64 compare.
        let src = "fn f(opts: &SearchOptions) -> bool { opts.k == 0 || 10 < opts.k }";
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
        // …but float literals still trip the rule.
        let src2 = "fn f(a: &Answer) -> bool { a.k == 0.0 }";
        assert_eq!(
            rules_hit("crates/core/src/engine.rs", src2),
            vec!["float-cmp"]
        );
    }

    #[test]
    fn method_calls_on_score_named_fields_pass() {
        // `.k.max(…)` is a call, not a comparison operand.
        let src = "fn f(a: &Answer, x: f64) -> bool { x < a.k.max(0.0) }";
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn seeded_hot_path_unwrap_is_caught() {
        let src = "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit(HOT, src), vec!["hot-path-panic"]);
        let src2 = "pub fn g() { panic!(\"boom\"); }";
        assert_eq!(rules_hit(HOT, src2), vec!["hot-path-panic"]);
        let src3 = "pub fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }";
        assert_eq!(rules_hit(HOT, src3), vec!["hot-path-panic"]);
    }

    #[test]
    fn unwrap_outside_hot_path_passes() {
        let src = "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_passes() {
        let src = r#"
            pub fn fine() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("test code may abort"); }
            }
        "#;
        assert!(rules_hit(HOT, src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let src = "#[cfg(not(test))] pub fn g(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_hit(HOT, src), vec!["hot-path-panic"]);
    }

    #[test]
    fn seeded_hot_path_str_cmp_is_caught() {
        let src = r#"fn f(have: &str, want: &str) -> bool { have.eq_ignore_ascii_case(want) }"#;
        assert_eq!(
            rules_hit("crates/algebra/src/eval.rs", src),
            vec!["hot-path-str-cmp"]
        );
        let src2 = r#"fn f(tag: &str) -> bool { tag == "*" }"#;
        assert_eq!(
            rules_hit("crates/algebra/src/ops.rs", src2),
            vec!["hot-path-str-cmp"]
        );
        let src3 = r#"fn f(tag: &str) -> bool { "car" != tag }"#;
        assert_eq!(
            rules_hit("crates/algebra/src/topk.rs", src3),
            vec!["hot-path-str-cmp"]
        );
    }

    #[test]
    fn str_cmp_outside_answer_modules_passes() {
        let src = r#"fn f(tag: &str) -> bool { tag == "*" || tag.eq_ignore_ascii_case("car") }"#;
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
        assert!(rules_hit("crates/profile/src/vor.rs", src).is_empty());
    }

    #[test]
    fn symbol_id_comparison_passes_in_answer_modules() {
        let src = "fn f(want: SymbolId, have: SymbolId) -> bool { want == have }";
        assert!(rules_hit("crates/algebra/src/eval.rs", src).is_empty());
    }

    #[test]
    fn str_cmp_in_answer_module_tests_passes() {
        let src = r#"
            pub fn fine() {}
            #[cfg(test)]
            mod tests {
                fn t(key: &Key) { assert!(key.tag() == "car"); }
            }
        "#;
        assert!(rules_hit("crates/algebra/src/ops.rs", src).is_empty());
    }

    #[test]
    fn seeded_thread_spawn_is_caught() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_hit("crates/core/src/engine.rs", src),
            vec!["thread-spawn"]
        );
        let src2 = "fn f() { std::thread::scope(|s| {}); }";
        assert_eq!(
            rules_hit("crates/index/src/inverted.rs", src2),
            vec!["thread-spawn"]
        );
    }

    #[test]
    fn serve_request_path_is_hot() {
        // Everything between accept and the response frame is hot-path
        // covered: an unwrap in the server is a worker-thread panic that
        // silently drops a request.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", src),
            vec!["hot-path-panic"]
        );
        assert_eq!(
            rules_hit("crates/serve/src/json.rs", src),
            vec!["hot-path-panic"]
        );
        assert_eq!(
            rules_hit("crates/serve/src/cache.rs", src),
            vec!["hot-path-panic"]
        );
        // The CLI bin may exit loudly at startup; benches/tests are exempt.
        assert!(rules_hit("crates/serve/src/bin/pimento.rs", src).is_empty());
        assert!(rules_hit("crates/serve/tests/serve_integration.rs", src).is_empty());
        // The worker pool / reader spawns live in server.rs only.
        let spawn = "fn f() { std::thread::Builder::new() }";
        assert!(rules_hit("crates/serve/src/server.rs", spawn).is_empty());
        assert_eq!(
            rules_hit("crates/serve/src/client.rs", spawn),
            vec!["thread-spawn"]
        );
    }

    #[test]
    fn thread_spawn_allowed_in_par_modules() {
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert!(rules_hit("crates/algebra/src/par.rs", src).is_empty());
        assert!(rules_hit("crates/index/src/parallel.rs", src).is_empty());
    }

    #[test]
    fn available_parallelism_is_not_spawning() {
        let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn seeded_lock_unwrap_is_caught_workspace_wide() {
        // Mutex, RwLock read side, RwLock write side; expect too.
        let src = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }";
        assert_eq!(
            rules_hit("crates/core/src/engine.rs", src),
            vec!["lock-poison"]
        );
        let src2 = "fn f(l: &RwLock<u32>) -> u32 { *l.read().expect(\"poisoned\") }";
        assert_eq!(
            rules_hit("crates/profile/src/vor.rs", src2),
            vec!["lock-poison"]
        );
        let src3 = "fn f(l: &RwLock<u32>) { *l.write().unwrap() = 1; }";
        assert_eq!(
            rules_hit("crates/tpq/src/parse.rs", src3),
            vec!["lock-poison"]
        );
    }

    #[test]
    fn recovered_lock_acquisition_passes() {
        let src = "fn f(m: &Mutex<u32>) -> u32 { match m.lock() { Ok(g) => *g, Err(p) => *p.into_inner() } }";
        assert!(rules_hit("crates/core/src/engine.rs", src).is_empty());
        // `read()` on a file (no `()`-then-unwrap chain shape) passes.
        let io = "fn f(mut r: impl Read, buf: &mut [u8]) { let n = r.read(buf).unwrap(); }";
        assert!(rules_hit("crates/core/src/engine.rs", io).is_empty());
        // Tests may unwrap locks freely.
        let test_src = "#[cfg(test)] mod tests { fn t(m: &Mutex<u32>) { m.lock().unwrap(); } }";
        assert!(rules_hit("crates/core/src/engine.rs", test_src).is_empty());
        assert!(rules_hit(
            "tests/end_to_end.rs",
            "fn t(m: &Mutex<u32>) { m.lock().unwrap(); }"
        )
        .is_empty());
    }

    #[test]
    fn seeded_static_mut_is_caught_even_in_tests() {
        let src = "static mut COUNTER: u32 = 0;";
        assert_eq!(
            rules_hit("crates/core/src/engine.rs", src),
            vec!["static-mut"]
        );
        let test_src = "#[cfg(test)] mod tests { static mut X: u8 = 0; }";
        assert_eq!(
            rules_hit("crates/core/src/engine.rs", test_src),
            vec!["static-mut"]
        );
    }

    #[test]
    fn forbid_unsafe_presence_is_enforced_on_crate_roots() {
        assert_eq!(
            rules_hit("crates/xml/src/lib.rs", "pub mod a;"),
            vec!["forbid-unsafe"]
        );
        assert!(rules_hit(
            "crates/xml/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod a;"
        )
        .is_empty());
        // Non-root files don't need it.
        assert!(rules_hit("crates/xml/src/parser.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn test_directories_are_exempt_except_static_mut() {
        let src = "fn f(a: &A, b: &A) { assert!(a.s < b.s); Some(1).unwrap(); }";
        assert!(rules_hit("tests/end_to_end.rs", src).is_empty());
        assert_eq!(
            rules_hit("tests/end_to_end.rs", "static mut X: u8 = 0;"),
            vec!["static-mut"]
        );
    }

    #[test]
    fn violations_carry_provenance() {
        let v = scan_source(
            HOT,
            "\n\nfn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
        assert_eq!(v[0].excerpt, "x.unwrap()");
        assert_eq!(v[0].path, HOT);
    }
}
