//! Fixture-driven end-to-end runs of the three call-graph analyses
//! (panic-path, lock-order, unchecked-offset): one positive and one
//! negative workspace each, plus a JSON golden for the CI format.
//!
//! The fixture sources live under `tests/fixtures/callgraph/` with a
//! `.fixture` extension so the workspace scan never lints them in place;
//! each test materializes them into a throwaway tree under the target dir
//! at the hot-path location the analysis keys on.

use lint::{scan_workspace, Report};
use std::fs;
use std::path::{Path, PathBuf};

const PANIC_POS_EVAL: &str = include_str!("fixtures/callgraph/panic_pos_eval.rs.fixture");
const PANIC_POS_UTIL: &str = include_str!("fixtures/callgraph/panic_pos_util.rs.fixture");
const PANIC_NEG_EVAL: &str = include_str!("fixtures/callgraph/panic_neg_eval.rs.fixture");
const PANIC_NEG_UTIL: &str = include_str!("fixtures/callgraph/panic_neg_util.rs.fixture");
const LOCK_POS: &str = include_str!("fixtures/callgraph/lock_pos_server.rs.fixture");
const LOCK_NEG: &str = include_str!("fixtures/callgraph/lock_neg_server.rs.fixture");
const OFFSET_POS: &str = include_str!("fixtures/callgraph/offset_pos_varint.rs.fixture");
const OFFSET_NEG: &str = include_str!("fixtures/callgraph/offset_neg_varint.rs.fixture");

/// Build a throwaway workspace tree under the target dir (kept out of the
/// scanner's own roots) and return its path.
fn workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, content).unwrap();
    }
    root
}

fn scan(root: &Path) -> Report {
    scan_workspace(root, &root.join("lint.allow")).unwrap()
}

#[test]
fn panic_path_positive_reports_the_full_call_chain() {
    let root = workspace(
        "cg-panic-pos",
        &[
            ("crates/algebra/src/eval.rs", PANIC_POS_EVAL),
            ("crates/algebra/src/util.rs", PANIC_POS_UTIL),
        ],
    );
    let report = scan(&root);
    let v: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "panic-path")
        .collect();
    assert_eq!(v.len(), 1, "{report}");
    let v = v[0];
    // Anchored at the panic *site*, not the root.
    assert_eq!(v.path, "crates/algebra/src/util.rs");
    assert!(
        v.message.contains("hot-path root `algebra::eval::step`"),
        "{}",
        v.message
    );
    assert!(v.message.contains("through 2 call(s)"), "{}", v.message);
    // The trace walks root → helper → panicking fn, each hop with its
    // definition site, so the reader can follow the whole chain.
    assert_eq!(v.trace.len(), 3, "{:?}", v.trace);
    assert!(
        v.trace[0].starts_with("algebra::eval::step (crates/algebra/src/eval.rs:"),
        "{:?}",
        v.trace
    );
    assert!(
        v.trace[1].starts_with("algebra::util::helper (crates/algebra/src/util.rs:"),
        "{:?}",
        v.trace
    );
    assert!(
        v.trace[2].starts_with("algebra::util::deep (crates/algebra/src/util.rs:"),
        "{:?}",
        v.trace
    );
}

#[test]
fn panic_path_negative_total_chain_is_clean() {
    let root = workspace(
        "cg-panic-neg",
        &[
            ("crates/algebra/src/eval.rs", PANIC_NEG_EVAL),
            ("crates/algebra/src/util.rs", PANIC_NEG_UTIL),
        ],
    );
    let report = scan(&root);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn lock_order_positive_reports_the_cycle_with_both_sites() {
    let root = workspace("cg-lock-pos", &[("crates/serve/src/server.rs", LOCK_POS)]);
    let report = scan(&root);
    let v: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "lock-order")
        .collect();
    assert_eq!(v.len(), 1, "{report}");
    let msg = &v[0].message;
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(msg.contains("cache") && msg.contains("writer"), "{msg}");
    // Both acquisition sites are named so either side can be reordered.
    assert!(msg.contains("the reverse order"), "{msg}");
}

#[test]
fn lock_order_negative_consistent_order_is_clean() {
    let root = workspace("cg-lock-neg", &[("crates/serve/src/server.rs", LOCK_NEG)]);
    let report = scan(&root);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn unchecked_offset_positive_flags_raw_add_and_indexing() {
    let root = workspace(
        "cg-offset-pos",
        &[("crates/index/src/varint.rs", OFFSET_POS)],
    );
    let report = scan(&root);
    let v: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "unchecked-offset")
        .collect();
    assert_eq!(v.len(), 2, "{report}");
    assert!(
        v.iter().any(|x| x.message.contains("checked_add")),
        "{report}"
    );
    assert!(v.iter().any(|x| x.message.contains(".get(")), "{report}");
}

#[test]
fn unchecked_offset_negative_checked_code_is_clean() {
    let root = workspace(
        "cg-offset-neg",
        &[("crates/index/src/varint.rs", OFFSET_NEG)],
    );
    let report = scan(&root);
    assert!(report.is_clean(), "{report}");
}

/// The `--format json` report for the panic-path positive workspace,
/// byte-for-byte: CI consumers (scripts/lint-report.sh) parse this shape.
#[test]
fn json_report_matches_the_golden() {
    let root = workspace(
        "cg-json-golden",
        &[
            ("crates/algebra/src/eval.rs", PANIC_POS_EVAL),
            ("crates/algebra/src/util.rs", PANIC_POS_UTIL),
        ],
    );
    let report = scan(&root);
    let actual = report.to_json();
    let expected = include_str!("fixtures/callgraph/panic_path_report.golden.json");
    assert_eq!(actual, expected, "--- actual ---\n{actual}");
}
