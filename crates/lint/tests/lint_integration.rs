//! End-to-end lint runs over synthetic workspaces (one seeded violation
//! per rule class, plus a clean tree and allowlist round-trips), and the
//! profile-verifier fixtures shared with the root test suite.

use lint::{scan_workspace, Allowlist, Report};
use std::fs;
use std::path::{Path, PathBuf};

/// Build a throwaway workspace tree under the target dir (kept out of the
/// scanner's own roots) and return its path.
fn workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, content).unwrap();
    }
    root
}

fn scan(root: &Path) -> Report {
    scan_workspace(root, &root.join("lint.allow")).unwrap()
}

const FORBID: &str = "#![forbid(unsafe_code)]\n";

#[test]
fn clean_tree_is_clean() {
    let root = workspace(
        "clean",
        &[(
            "crates/foo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn add(a: u32, b: u32) -> u32 { a + b }\n",
        )],
    );
    let report = scan(&root);
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn float_cmp_violation_found() {
    let root = workspace(
        "floatcmp",
        &[(
            "crates/foo/src/score.rs",
            "pub fn best(a: &Answer, b: &Answer) -> bool { a.s == b.s }\n",
        )],
    );
    let report = scan(&root);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, "float-cmp");
    assert_eq!(report.violations[0].line, 1);
}

#[test]
fn hot_path_unwrap_found_only_in_hot_paths() {
    let hot = "pub fn get(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    let root = workspace(
        "hotpath",
        &[
            ("crates/index/src/store.rs", hot),
            // Same code outside a hot path: allowed.
            ("crates/foo/src/lib.rs", &format!("{FORBID}{hot}")[..]),
        ],
    );
    let report = scan(&root);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, "hot-path-panic");
    assert!(report.violations[0]
        .path
        .ends_with("crates/index/src/store.rs"));
}

#[test]
fn thread_spawn_outside_par_modules_found() {
    let src = "pub fn go() { std::thread::spawn(|| {}); }\n";
    let root = workspace(
        "threads",
        &[
            ("crates/foo/src/work.rs", src),
            // The sanctioned module: allowed.
            ("crates/algebra/src/par.rs", src),
        ],
    );
    let report = scan(&root);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, "thread-spawn");
    assert!(report.violations[0]
        .path
        .ends_with("crates/foo/src/work.rs"));
}

#[test]
fn static_mut_found_even_in_tests() {
    let root = workspace(
        "staticmut",
        &[("tests/helpers.rs", "static mut COUNTER: u32 = 0;\n")],
    );
    let report = scan(&root);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, "static-mut");
}

#[test]
fn missing_forbid_unsafe_found() {
    let root = workspace(
        "forbid",
        &[("crates/foo/src/lib.rs", "pub fn id(x: u32) -> u32 { x }\n")],
    );
    let report = scan(&root);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, "forbid-unsafe");
}

#[test]
fn allowlist_suppresses_and_reports_stale() {
    let root = workspace(
        "allow",
        &[
            (
                "crates/foo/src/score.rs",
                "pub fn tie(a: &Answer, b: &Answer) -> bool { a.s == b.s }\n",
            ),
            (
                "lint.allow",
                "# entries\n\
                 float-cmp crates/foo/src/score.rs a.s == b.s\n\
                 float-cmp crates/gone/src/old.rs x.weight < y.weight\n",
            ),
        ],
    );
    let report = scan(&root);
    assert!(report.violations.is_empty(), "{report}");
    assert_eq!(report.allowed, 1);
    // The entry pointing at code that no longer exists fails the run.
    assert_eq!(report.stale_entries.len(), 1);
    assert!(!report.is_clean());
}

#[test]
fn allowlist_rejects_malformed_lines() {
    assert!(Allowlist::parse("float-cmp missing-needle-field\n").is_err());
    assert!(Allowlist::parse("# comment only\n\n")
        .unwrap()
        .stale()
        .is_empty());
}

/// The shared car-sale fixtures drive the profile verifier from this
/// crate's tests too: the lint binary and `Profile::verify` must agree on
/// what an erroneous profile is.
mod profile_fixtures {
    use pimento_profile::{parse_profile, FindingKind, PrefRelRegistry};
    use pimento_tpq::parse_tpq;

    fn fixture(name: &str) -> pimento_profile::UserProfile {
        let path = format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        parse_profile(&text, &PrefRelRegistry::new()).unwrap()
    }

    fn query_q() -> pimento_tpq::Tpq {
        parse_tpq(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
        )
        .unwrap()
    }

    #[test]
    fn sr_cycle_fixture_errors() {
        let report = fixture("sr_conflict_cycle.rules").verify(&query_q());
        assert!(report.has_sr_cycle());
        assert!(report.has_errors());
    }

    #[test]
    fn vor_ambiguous_fixture_errors() {
        let report = fixture("vor_ambiguous.rules").verify(&query_q());
        assert!(report.has_errors());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::VorAlternatingCycle { .. })));
    }

    #[test]
    fn clean_fixture_passes() {
        let report = fixture("clean_profile.rules").verify(&query_q());
        assert!(!report.has_errors(), "{report}");
    }
}
