//! Ambiguity analysis for value-based ordering rules (paper §5.2).
//!
//! A set of VORs is **ambiguous** when some database instance contains a
//! pair of elements each preferred to the other — e.g. π1 (prefer red cars)
//! and π2 (prefer lower mileage) clash on a red car with high mileage vs a
//! non-red car with low mileage.
//!
//! Detection follows the paper's Lemma 5.1: build the **constraint graph**
//! whose nodes are rule variables (renamed apart), with a directed `≺` arc
//! `x_i → y_i` per rule and an undirected `=` edge between *compatible*
//! variables of different rules (`local*(u) & local*(v) & u = v`
//! consistent); the set is ambiguous iff the graph has an **alternating
//! cycle** (`≺`, `=`, `≺`, `=`, …).
//!
//! We detect alternating cycles on the quotient digraph `H` over rules:
//! `H` has an arc `i → j` iff `y_i` is compatible with `x_j` — a cycle in
//! `H` is exactly an alternating cycle. On top of the lemma we add one
//! refinement: the comparison constraints collected along the cycle must be
//! jointly satisfiable (otherwise no single database can instantiate the
//! cycle — e.g. two copies of "prefer lower mileage" alternate-cycle
//! through `a.m < b.m ∧ b.m < a.m`, which no data satisfies). Priorities
//! resolve ambiguity by splitting rules into classes that are compared
//! lexicographically, so only same-priority rules can clash.

use crate::constraints::DiffGraph;
use crate::vor::{PrefOp, ValueOrderingRule, VorForm};

/// One alternating cycle witnessing ambiguity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbiguityCycle {
    /// Rule ids along the cycle, in order.
    pub rule_ids: Vec<String>,
}

/// Result of the analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AmbiguityReport {
    /// All satisfiable alternating cycles found (empty = unambiguous).
    pub cycles: Vec<AmbiguityCycle>,
}

impl AmbiguityReport {
    /// Is the rule set ambiguous?
    pub fn is_ambiguous(&self) -> bool {
        !self.cycles.is_empty()
    }
}

/// Detect ambiguity ignoring priorities (the raw Lemma 5.1 check plus the
/// satisfiability refinement).
pub fn detect_ambiguity(rules: &[ValueOrderingRule]) -> AmbiguityReport {
    let n = rules.len();
    // H-arc i → j ⇔ y_i compatible with x_j (i ≠ j: "=" edges join
    // variables of different rules).
    let locals_x: Vec<_> = rules.iter().map(ValueOrderingRule::local_x).collect();
    let locals_y: Vec<_> = rules.iter().map(ValueOrderingRule::local_y).collect();
    let mut arcs = vec![Vec::new(); n];
    for i in 0..n {
        for (j, x_local) in locals_x.iter().enumerate() {
            if i != j && locals_y[i].compatible(x_local) {
                arcs[i].push(j);
            }
        }
    }
    let mut report = AmbiguityReport::default();
    for cycle in enumerate_simple_cycles(&arcs, 1_000) {
        if cycle_satisfiable(rules, &cycle) {
            report.cycles.push(AmbiguityCycle {
                rule_ids: cycle.iter().map(|&i| rules[i].id.clone()).collect(),
            });
        }
    }
    report
}

/// Detect ambiguity honoring priorities: rules in distinct priority classes
/// are compared lexicographically and cannot clash, so each class is
/// analyzed separately.
pub fn detect_ambiguity_with_priorities(rules: &[ValueOrderingRule]) -> AmbiguityReport {
    let mut classes: Vec<u32> = rules.iter().map(|r| r.priority).collect();
    classes.sort_unstable();
    classes.dedup();
    let mut report = AmbiguityReport::default();
    for class in classes {
        let group: Vec<ValueOrderingRule> = rules
            .iter()
            .filter(|r| r.priority == class)
            .cloned()
            .collect();
        report.cycles.extend(detect_ambiguity(&group).cycles);
    }
    report
}

/// Assign priorities that break every alternating cycle, mimicking the
/// paper's suggestion ("by assigning a priority to the rules, alternating
/// cycles can be broken"): each rule gets its index as priority, making
/// every class a singleton. Returns the adjusted rules. Callers who want a
/// semantically chosen order should set priorities themselves.
pub fn break_ambiguity_by_index(rules: &[ValueOrderingRule]) -> Vec<ValueOrderingRule> {
    rules
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = r.clone();
            r.priority = i as u32;
            r
        })
        .collect()
}

/// Enumerate simple cycles of a small digraph (Johnson-style DFS restricted
/// to cycles whose smallest node is the DFS root), capped at `max`.
fn enumerate_simple_cycles(arcs: &[Vec<usize>], max: usize) -> Vec<Vec<usize>> {
    let n = arcs.len();
    let mut cycles = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    let mut on_path = vec![false; n];

    fn dfs(
        v: usize,
        root: usize,
        arcs: &[Vec<usize>],
        path: &mut Vec<usize>,
        on_path: &mut [bool],
        cycles: &mut Vec<Vec<usize>>,
        max: usize,
    ) {
        if cycles.len() >= max {
            return;
        }
        path.push(v);
        on_path[v] = true;
        for &w in &arcs[v] {
            if w == root {
                cycles.push(path.clone());
                if cycles.len() >= max {
                    break;
                }
            } else if w > root && !on_path[w] {
                dfs(w, root, arcs, path, on_path, cycles, max);
            }
        }
        on_path[v] = false;
        path.pop();
    }

    for root in 0..n {
        dfs(root, root, arcs, &mut path, &mut on_path, &mut cycles, max);
    }
    cycles
}

/// Are the comparison constraints collected along the cycle jointly
/// satisfiable? The cycle `i_0 → i_1 → … → i_{k-1} → i_0` merges variables
/// into classes: class `m` holds `y_{i_m} = x_{i_{m+1 mod k}}`; rule `i_m`
/// then relates class `m-1` (its `x`) to class `m` (its `y`).
fn cycle_satisfiable(rules: &[ValueOrderingRule], cycle: &[usize]) -> bool {
    let k = cycle.len();
    let mut graph = DiffGraph::new();
    for (m, &ri) in cycle.iter().enumerate() {
        let x_class = ((m + k - 1) % k) as u32;
        let y_class = m as u32;
        match &rules[ri].form {
            VorForm::AttrCompare { attr, op } => {
                // x.attr < y.attr (Lt) or x.attr > y.attr (Gt), strict.
                match op {
                    PrefOp::Lt => graph.add_less((x_class, attr), (y_class, attr), true),
                    PrefOp::Gt => graph.add_less((y_class, attr), (x_class, attr), true),
                }
            }
            VorForm::Preference { attr, order } => {
                // prefRel(x.attr, y.attr): a strict partial order. Edges
                // from *the same* relation share a namespace (so duplicate
                // rules cannot instantiate a cycle), while distinct
                // relations are independent (opposite orders from two rules
                // genuinely clash on data).
                let repr = rules
                    .iter()
                    .position(|r| {
                        matches!(&r.form, VorForm::Preference { attr: a2, order: o2 }
                            if a2 == attr && o2 == order)
                    })
                    .unwrap_or(ri);
                let key = format!("{attr}\u{1}pref{repr}");
                graph.add_less((y_class, &key), (x_class, &key), true);
            }
            VorForm::EqConst { .. } => {
                // Contributes only local constraints, already enforced by
                // the compatibility edges.
            }
        }
    }
    graph.satisfiable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefrel::PrefRel;

    fn pi1() -> ValueOrderingRule {
        ValueOrderingRule::prefer_value("pi1", "car", "color", "red")
    }

    fn pi2() -> ValueOrderingRule {
        ValueOrderingRule::prefer_smaller("pi2", "car", "mileage")
    }

    fn pi3() -> ValueOrderingRule {
        ValueOrderingRule::prefer_larger("pi3", "car", "hp").with_equal_attr("make")
    }

    #[test]
    fn paper_pi1_pi2_is_ambiguous() {
        let report = detect_ambiguity(&[pi1(), pi2()]);
        assert!(report.is_ambiguous());
        let ids: Vec<&str> = report.cycles[0]
            .rule_ids
            .iter()
            .map(String::as_str)
            .collect();
        assert!(ids.contains(&"pi1") && ids.contains(&"pi2"));
    }

    #[test]
    fn single_rule_is_unambiguous() {
        assert!(!detect_ambiguity(&[pi1()]).is_ambiguous());
        assert!(!detect_ambiguity(&[pi2()]).is_ambiguous());
        assert!(!detect_ambiguity(&[]).is_ambiguous());
    }

    #[test]
    fn duplicate_comparison_rules_are_not_ambiguous() {
        // Two "prefer lower mileage" rules alternate-cycle structurally,
        // but the cycle needs a.m < b.m ∧ b.m < a.m — unsatisfiable.
        let dup = ValueOrderingRule::prefer_smaller("pi2b", "car", "mileage");
        assert!(!detect_ambiguity(&[pi2(), dup]).is_ambiguous());
    }

    #[test]
    fn opposite_comparison_rules_are_ambiguous() {
        // Prefer lower mileage AND prefer higher mileage.
        let lo = ValueOrderingRule::prefer_smaller("lo", "car", "mileage");
        let hi = ValueOrderingRule::prefer_larger("hi", "car", "mileage");
        assert!(detect_ambiguity(&[lo, hi]).is_ambiguous());
    }

    #[test]
    fn different_tags_cannot_clash() {
        let cars = pi2();
        let trucks = ValueOrderingRule::prefer_larger("t", "truck", "mileage");
        assert!(!detect_ambiguity(&[cars, trucks]).is_ambiguous());
    }

    #[test]
    fn two_eqconst_rules_on_different_values_are_ambiguous() {
        // Prefer red; prefer cheap-colored... two EqConst on *different*
        // attributes clash: a red/expensive vs blue/cheap pair.
        let red = ValueOrderingRule::prefer_value("red", "car", "color", "red");
        let auto = ValueOrderingRule::prefer_value("auto", "car", "transmission", "automatic");
        assert!(detect_ambiguity(&[red, auto]).is_ambiguous());
    }

    #[test]
    fn same_attr_eqconst_rules_are_ambiguous() {
        // Prefer red and prefer blue on the same attribute: x of one is
        // color=red which is incompatible with x of the other (color=blue)?
        // Compatibility is between y (≠red) and x (=blue) — consistent —
        // and y (≠blue) with x (=red) — consistent. A red/blue pair indeed
        // gets contradictory preferences: genuinely ambiguous.
        let red = ValueOrderingRule::prefer_value("red", "car", "color", "red");
        let blue = ValueOrderingRule::prefer_value("blue", "car", "color", "blue");
        assert!(detect_ambiguity(&[red, blue]).is_ambiguous());
    }

    #[test]
    fn guards_can_separate_rules() {
        // Prefer lower mileage among cheap cars; prefer higher mileage
        // among expensive cars — guards make the variable sets
        // incompatible, so no ambiguity.
        use crate::vor::AttrValue;
        use pimento_tpq::RelOp;
        let cheap = ValueOrderingRule::prefer_smaller("cheap", "car", "mileage").with_guard(
            "price",
            RelOp::Lt,
            AttrValue::Num(1000.0),
        );
        let pricey = ValueOrderingRule::prefer_larger("pricey", "car", "mileage").with_guard(
            "price",
            RelOp::Gt,
            AttrValue::Num(5000.0),
        );
        assert!(!detect_ambiguity(&[cheap, pricey]).is_ambiguous());
    }

    #[test]
    fn priorities_resolve_paper_example() {
        let rules = [pi1().with_priority(2), pi2().with_priority(1)];
        assert!(!detect_ambiguity_with_priorities(&rules).is_ambiguous());
        // Without priority separation it is ambiguous.
        assert!(detect_ambiguity_with_priorities(&[pi1(), pi2()]).is_ambiguous());
    }

    #[test]
    fn break_by_index_always_resolves() {
        let rules = vec![pi1(), pi2(), pi3()];
        let broken = break_ambiguity_by_index(&rules);
        assert!(!detect_ambiguity_with_priorities(&broken).is_ambiguous());
        assert_eq!(broken[0].priority, 0);
        assert_eq!(broken[2].priority, 2);
    }

    #[test]
    fn prefrel_cycle_through_two_rules() {
        // Rule A prefers red>blue on color; rule B prefers blue>red.
        let a = ValueOrderingRule::prefer_order(
            "a",
            "car",
            "color",
            PrefRel::new([("red", "blue")]).unwrap(),
        );
        let b = ValueOrderingRule::prefer_order(
            "b",
            "car",
            "color",
            PrefRel::new([("blue", "red")]).unwrap(),
        );
        // Distinct relations: a red/blue pair is preferred both ways —
        // genuinely ambiguous.
        let report = detect_ambiguity(&[a, b]);
        assert!(report.is_ambiguous());
    }

    #[test]
    fn duplicate_prefrel_rules_not_ambiguous() {
        let order = PrefRel::new([("red", "blue")]).unwrap();
        let a = ValueOrderingRule::prefer_order("a", "car", "color", order.clone());
        let b = ValueOrderingRule::prefer_order("b", "car", "color", order);
        // Same relation twice: instantiating the alternating cycle would
        // need red ≻ blue ≻ red in one strict order — unsatisfiable.
        assert!(!detect_ambiguity(&[a, b]).is_ambiguous());
    }

    #[test]
    fn three_rule_cycle() {
        // a: prefer color=red; b: prefer mileage lower; c: prefer hp higher
        // — pairwise compatible, cycle of length 2 already exists among
        // any two, and length-3 cycles too.
        let a = pi1();
        let b = pi2();
        let c = ValueOrderingRule::prefer_larger("hp", "car", "hp");
        let report = detect_ambiguity(&[a, b, c]);
        assert!(report.is_ambiguous());
        assert!(report.cycles.iter().any(|c| c.rule_ids.len() >= 3) || report.cycles.len() >= 3);
    }
}
