//! Conflict analysis for scoping rules (paper §5.1).
//!
//! Rule `ρ1` **conflicts with** `ρ2` w.r.t. query `Q` when both are
//! applicable to `Q` but `ρ2` is no longer applicable to `ρ1(Q)`. Conflicts
//! form a digraph with an arc `ρ1 → ρ2` per such pair. When the graph is
//! acyclic we apply rules so that whenever `ρ1` would disable `ρ2`, `ρ2`
//! fires first — i.e. in topological order of the *reversed* arcs — which
//! lets every rule have its intended effect. When the graph is cyclic, the
//! paper requires user priorities; we order cycle members by priority
//! (smaller first) and report an error naming the cycle if any member
//! lacks one. A fully prioritized rule set bypasses the topology entirely:
//! the user's order always wins.

use crate::scoping::ScopingRule;
use pimento_tpq::Tpq;
use std::fmt;

/// Conflict analysis outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictAnalysis {
    /// Arcs `(i, j)`: rule `i` conflicts with rule `j` w.r.t. the query.
    pub arcs: Vec<(usize, usize)>,
    /// The application order (indices into the input rule slice).
    pub order: Vec<usize>,
    /// How the order was obtained.
    pub resolution: Resolution,
}

/// How the application order was determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The conflict graph was acyclic — topological order.
    Topological,
    /// Cycles were present but user priorities resolved them.
    Priorities,
}

/// Unresolvable conflicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictError {
    /// Ids of rules forming a conflict cycle without full priorities.
    pub cycle: Vec<String>,
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scoping rules form a conflict cycle ({}); assign priorities to fix the order",
            self.cycle.join(" → ")
        )
    }
}

impl std::error::Error for ConflictError {}

/// Does `a` conflict with `b` w.r.t. `query` (paper definition)?
pub fn conflicts(a: &ScopingRule, b: &ScopingRule, query: &Tpq) -> bool {
    a.applicable(query) && b.applicable(query) && !b.applicable(&a.applied(query))
}

/// Analyze a rule set against `query` and produce an application order.
///
/// * If every rule carries a priority, priorities win outright (the paper
///   lets the user force any order).
/// * Otherwise, if the conflict graph is acyclic, rules are ordered so
///   that whenever `a` conflicts with `b`, `b` applies first (reverse
///   topological order of the conflict arcs) — both rules then get their
///   intended effect.
/// * Cyclic conflicts without priorities on every cycle member are an
///   error naming the cycle.
pub fn analyze(rules: &[ScopingRule], query: &Tpq) -> Result<ConflictAnalysis, ConflictError> {
    let n = rules.len();
    let mut arcs = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && conflicts(&rules[i], &rules[j], query) {
                arcs.push((i, j));
            }
        }
    }

    if n > 0 && rules.iter().all(|r| r.priority.is_some()) {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (rules[i].priority.expect("checked"), i));
        return Ok(ConflictAnalysis {
            arcs,
            order,
            resolution: Resolution::Priorities,
        });
    }

    // Reverse topological sort: emit rules with no *incoming* reversed
    // arc... concretely, apply b before a when (a → b) ∈ arcs. Build the
    // precedence graph b → a and topologically sort it.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(a, b) in &arcs {
        out[b].push(a);
        indeg[a] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::BinaryHeap::new(); // max-heap of Reverse for stable smallest-first
    for r in ready {
        queue.push(std::cmp::Reverse(r));
    }
    while let Some(std::cmp::Reverse(v)) = queue.pop() {
        order.push(v);
        for &w in &out[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(std::cmp::Reverse(w));
            }
        }
    }
    if order.len() == n {
        return Ok(ConflictAnalysis {
            arcs,
            order,
            resolution: Resolution::Topological,
        });
    }

    // A cycle exists. If every rule on some cycle has a priority we could
    // still order; the simple and predictable policy (paper: "we require
    // the user to assign priorities") is: all cycle members need
    // priorities; order the cyclic remainder by priority if fully
    // assigned, else error.
    let cyclic: Vec<usize> = (0..n).filter(|i| !order.contains(i)).collect();
    if cyclic.iter().all(|&i| rules[i].priority.is_some()) {
        let mut rest = cyclic.clone();
        rest.sort_by_key(|&i| (rules[i].priority.expect("checked"), i));
        order.extend(rest);
        return Ok(ConflictAnalysis {
            arcs,
            order,
            resolution: Resolution::Priorities,
        });
    }
    Err(ConflictError {
        cycle: cyclic.into_iter().map(|i| rules[i].id.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoping::Atom;
    use pimento_tpq::parse_tpq;

    fn query_q() -> Tpq {
        parse_tpq(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
        )
        .unwrap()
    }

    fn rho1() -> ScopingRule {
        ScopingRule::delete(
            "rho1",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "low mileage"),
            ],
            vec![Atom::ft("description", "good condition")],
        )
    }

    fn rho2() -> ScopingRule {
        ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        )
    }

    fn rho3() -> ScopingRule {
        ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        )
    }

    #[test]
    fn paper_conflict_rho1_rho2() {
        let q = query_q();
        assert!(conflicts(&rho1(), &rho2(), &q));
        assert!(!conflicts(&rho2(), &rho1(), &q));
    }

    #[test]
    fn paper_cycle_rho1_rho3() {
        // ρ1 removes "good condition" (ρ3's condition); ρ3 removes "low
        // mileage" (ρ1's condition) — they conflict with each other.
        let q = query_q();
        assert!(conflicts(&rho1(), &rho3(), &q));
        assert!(conflicts(&rho3(), &rho1(), &q));
    }

    #[test]
    fn acyclic_analysis_orders_victim_first() {
        // Only ρ1 and ρ2: arc rho1 → rho2, so rho2 must apply first.
        let q = query_q();
        let a = analyze(&[rho1(), rho2()], &q).unwrap();
        assert_eq!(a.resolution, Resolution::Topological);
        assert_eq!(a.order, vec![1, 0]);
        assert_eq!(a.arcs, vec![(0, 1)]);
    }

    #[test]
    fn cycle_without_priorities_errors() {
        let q = query_q();
        let err = analyze(&[rho1(), rho3()], &q).unwrap_err();
        assert!(err.cycle.contains(&"rho1".to_string()));
        assert!(err.cycle.contains(&"rho3".to_string()));
        assert!(err.to_string().contains("priorities"));
    }

    #[test]
    fn cycle_with_priorities_resolves() {
        let q = query_q();
        let a = analyze(&[rho1().with_priority(2), rho3().with_priority(1)], &q).unwrap();
        assert_eq!(a.resolution, Resolution::Priorities);
        assert_eq!(a.order, vec![1, 0]); // rho3 (prio 1) first
    }

    #[test]
    fn full_priorities_override_topology() {
        let q = query_q();
        let a = analyze(&[rho1().with_priority(0), rho2().with_priority(1)], &q).unwrap();
        assert_eq!(a.resolution, Resolution::Priorities);
        assert_eq!(a.order, vec![0, 1]); // user insists rho1 first
    }

    #[test]
    fn inapplicable_rules_do_not_conflict() {
        let q = parse_tpq("//person").unwrap();
        assert!(!conflicts(&rho1(), &rho2(), &q));
        let a = analyze(&[rho1(), rho2(), rho3()], &q).unwrap();
        assert!(a.arcs.is_empty());
        assert_eq!(a.order.len(), 3);
    }

    #[test]
    fn empty_rule_set() {
        let a = analyze(&[], &query_q()).unwrap();
        assert!(a.order.is_empty());
        assert!(a.arcs.is_empty());
    }

    #[test]
    fn three_rules_mixed() {
        // ρ1 → ρ2 and ρ1 ↔ ρ3: priority on the cycle members only.
        let q = query_q();
        let rules = [rho1().with_priority(5), rho2(), rho3().with_priority(4)];
        let a = analyze(&rules, &q).unwrap();
        // ρ2 has no incoming precedence issue once cyclic rules are
        // handled; cycle members ordered by priority after the acyclic
        // prefix.
        assert_eq!(a.resolution, Resolution::Priorities);
        let pos = |id: usize| a.order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(2) < pos(0),
            "rho3 (prio 4) before rho1 (prio 5): {:?}",
            a.order
        );
    }
}
