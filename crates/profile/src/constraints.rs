//! A small constraint system over rule variables, used by the ambiguity
//! analysis (paper §5.2): computing `local*` closures, checking variable
//! compatibility (`local*(x) & local*(y) & x = y` consistent), and checking
//! satisfiability of comparison constraints along an alternating cycle.

use pimento_tpq::RelOp;
use std::collections::{HashMap, HashSet};

/// A constant in a constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Numeric constant.
    Num(f64),
    /// String constant (compared case-insensitively).
    Str(String),
}

impl Const {
    /// Case-normalized equality.
    pub fn same(&self, other: &Const) -> bool {
        match (self, other) {
            (Const::Num(a), Const::Num(b)) => a == b,
            (Const::Str(a), Const::Str(b)) => a.eq_ignore_ascii_case(b),
            _ => false,
        }
    }

    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Const::Num(n) => Some(*n),
            Const::Str(_) => None,
        }
    }
}

/// Constraints on a single variable: its `local*` set, organized per
/// attribute for consistency checking.
#[derive(Debug, Clone, Default)]
pub struct LocalSet {
    /// Required tag, if constrained.
    pub tag: Option<String>,
    per_attr: HashMap<String, AttrConstraints>,
}

/// Per-attribute accumulated constraints.
#[derive(Debug, Clone, Default)]
struct AttrConstraints {
    /// `attr = c` (at most one distinct value, else inconsistent).
    eq: Option<Const>,
    /// `attr ≠ c` values.
    ne: Vec<Const>,
    /// Exclusive upper bound implied by `<`/`<=` constraints: (bound, strict).
    upper: Option<(f64, bool)>,
    /// Lower bound: (bound, strict).
    lower: Option<(f64, bool)>,
}

/// Why a set of constraints is inconsistent (used in diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inconsistency {
    /// Two different tags required.
    TagClash(String, String),
    /// Equality to two different constants.
    EqClash(String),
    /// `attr = c` and `attr ≠ c`.
    EqNeClash(String),
    /// Empty numeric interval.
    EmptyInterval(String),
    /// `attr = c` outside the numeric interval.
    EqOutsideInterval(String),
}

impl LocalSet {
    /// Empty (unconstrained) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Require `tag`.
    pub fn require_tag(&mut self, tag: &str) -> Result<(), Inconsistency> {
        match &self.tag {
            Some(t) if !t.eq_ignore_ascii_case(tag) => {
                Err(Inconsistency::TagClash(t.clone(), tag.to_string()))
            }
            _ => {
                self.tag = Some(tag.to_lowercase());
                Ok(())
            }
        }
    }

    /// Add `attr relOp c`.
    pub fn add(&mut self, attr: &str, op: RelOp, c: Const) -> Result<(), Inconsistency> {
        let slot = self.per_attr.entry(attr.to_lowercase()).or_default();
        match op {
            RelOp::Eq => match &slot.eq {
                Some(prev) if !prev.same(&c) => {
                    return Err(Inconsistency::EqClash(attr.to_string()))
                }
                _ => slot.eq = Some(c),
            },
            RelOp::Ne => slot.ne.push(c),
            RelOp::Lt | RelOp::Le => {
                let Some(n) = c.as_num() else { return Ok(()) };
                let strict = op == RelOp::Lt;
                slot.upper = Some(match slot.upper {
                    Some((b, s)) if b < n || (b == n && (s || !strict)) => (b, s),
                    _ => (n, strict),
                });
            }
            RelOp::Gt | RelOp::Ge => {
                let Some(n) = c.as_num() else { return Ok(()) };
                let strict = op == RelOp::Gt;
                slot.lower = Some(match slot.lower {
                    Some((b, s)) if b > n || (b == n && (s || !strict)) => (b, s),
                    _ => (n, strict),
                });
            }
        }
        self.check_attr(attr)
    }

    fn check_attr(&self, attr: &str) -> Result<(), Inconsistency> {
        let Some(slot) = self.per_attr.get(&attr.to_lowercase()) else {
            return Ok(());
        };
        if let Some(eq) = &slot.eq {
            if slot.ne.iter().any(|n| n.same(eq)) {
                return Err(Inconsistency::EqNeClash(attr.to_string()));
            }
            if let Some(v) = eq.as_num() {
                if let Some((u, strict)) = slot.upper {
                    if v > u || (v == u && strict) {
                        return Err(Inconsistency::EqOutsideInterval(attr.to_string()));
                    }
                }
                if let Some((l, strict)) = slot.lower {
                    if v < l || (v == l && strict) {
                        return Err(Inconsistency::EqOutsideInterval(attr.to_string()));
                    }
                }
            }
        }
        if let (Some((u, us)), Some((l, ls))) = (slot.upper, slot.lower) {
            if l > u || (l == u && (us || ls)) {
                return Err(Inconsistency::EmptyInterval(attr.to_string()));
            }
        }
        Ok(())
    }

    /// Merge `other` into `self` (the `x = y` identification step of the
    /// compatibility test). Errors if the union is inconsistent.
    pub fn merge(&mut self, other: &LocalSet) -> Result<(), Inconsistency> {
        if let Some(t) = &other.tag {
            self.require_tag(t)?;
        }
        for (attr, oc) in &other.per_attr {
            if let Some(eq) = &oc.eq {
                self.add(attr, RelOp::Eq, eq.clone())?;
            }
            for ne in &oc.ne {
                self.add(attr, RelOp::Ne, ne.clone())?;
            }
            if let Some((b, strict)) = oc.upper {
                self.add(
                    attr,
                    if strict { RelOp::Lt } else { RelOp::Le },
                    Const::Num(b),
                )?;
            }
            if let Some((b, strict)) = oc.lower {
                self.add(
                    attr,
                    if strict { RelOp::Gt } else { RelOp::Ge },
                    Const::Num(b),
                )?;
            }
        }
        Ok(())
    }

    /// Are `self` and `other` compatible, i.e. could one element satisfy
    /// both (`local*(x) & local*(y) & x = y` consistent)?
    pub fn compatible(&self, other: &LocalSet) -> bool {
        let mut merged = self.clone();
        merged.merge(other).is_ok()
    }

    /// Upper bound on `attr`, if any: `(bound, strict)`.
    pub fn upper(&self, attr: &str) -> Option<(f64, bool)> {
        self.per_attr
            .get(&attr.to_lowercase())
            .and_then(|s| s.upper)
    }

    /// Lower bound on `attr`, if any.
    pub fn lower(&self, attr: &str) -> Option<(f64, bool)> {
        self.per_attr
            .get(&attr.to_lowercase())
            .and_then(|s| s.lower)
    }

    /// The `attr = c` constant, if any.
    pub fn eq_const(&self, attr: &str) -> Option<&Const> {
        self.per_attr
            .get(&attr.to_lowercase())
            .and_then(|s| s.eq.as_ref())
    }
}

/// A `(variable-class, attribute)` node of the difference graph.
type DiffNode = (u32, String);

/// A strict/non-strict difference graph used to check satisfiability of the
/// comparison constraints along an alternating cycle: nodes are
/// `(variable-class, attribute)` pairs; an edge `a → b` states `a < b`
/// (strict) or `a <= b`. The system is unsatisfiable iff some cycle
/// contains a strict edge.
#[derive(Debug, Default)]
pub struct DiffGraph {
    edges: HashMap<DiffNode, Vec<(DiffNode, bool)>>,
    nodes: HashSet<DiffNode>,
}

impl DiffGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `less (strict?) greater`.
    pub fn add_less(&mut self, less: (u32, &str), greater: (u32, &str), strict: bool) {
        let a = (less.0, less.1.to_lowercase());
        let b = (greater.0, greater.1.to_lowercase());
        self.nodes.insert(a.clone());
        self.nodes.insert(b.clone());
        self.edges.entry(a).or_default().push((b, strict));
    }

    /// Is the constraint system satisfiable (no cycle with a strict edge)?
    pub fn satisfiable(&self) -> bool {
        // For every strongly-connected pair joined through a strict edge the
        // system fails. Simple approach for small graphs: for every strict
        // edge a→b, check whether b reaches a.
        for (a, outs) in &self.edges {
            for (b, strict) in outs {
                if *strict && self.reaches(b, a) {
                    return false;
                }
            }
        }
        true
    }

    fn reaches(&self, from: &(u32, String), to: &(u32, String)) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![from.clone()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(outs) = self.edges.get(&n) {
                for (m, _) in outs {
                    if m == to {
                        return true;
                    }
                    stack.push(m.clone());
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_clash_detected() {
        let mut s = LocalSet::new();
        s.require_tag("car").unwrap();
        assert!(s.require_tag("Car").is_ok());
        assert!(matches!(
            s.require_tag("person"),
            Err(Inconsistency::TagClash(..))
        ));
    }

    #[test]
    fn eq_clash_detected() {
        let mut s = LocalSet::new();
        s.add("color", RelOp::Eq, Const::Str("red".into())).unwrap();
        assert!(s.add("color", RelOp::Eq, Const::Str("RED".into())).is_ok());
        assert!(matches!(
            s.add("color", RelOp::Eq, Const::Str("blue".into())),
            Err(Inconsistency::EqClash(_))
        ));
    }

    #[test]
    fn eq_ne_clash_detected() {
        let mut s = LocalSet::new();
        s.add("color", RelOp::Eq, Const::Str("red".into())).unwrap();
        assert!(matches!(
            s.add("color", RelOp::Ne, Const::Str("red".into())),
            Err(Inconsistency::EqNeClash(_))
        ));
    }

    #[test]
    fn interval_tightening_and_emptiness() {
        let mut s = LocalSet::new();
        s.add("age", RelOp::Lt, Const::Num(40.0)).unwrap();
        s.add("age", RelOp::Le, Const::Num(35.0)).unwrap();
        assert_eq!(s.upper("age"), Some((35.0, false)));
        s.add("age", RelOp::Ge, Const::Num(30.0)).unwrap();
        assert!(matches!(
            s.add("age", RelOp::Gt, Const::Num(35.0)),
            Err(Inconsistency::EmptyInterval(_))
        ));
    }

    #[test]
    fn boundary_strictness() {
        let mut s = LocalSet::new();
        s.add("x", RelOp::Le, Const::Num(5.0)).unwrap();
        s.add("x", RelOp::Ge, Const::Num(5.0)).unwrap(); // x == 5 ok
        let mut s2 = LocalSet::new();
        s2.add("x", RelOp::Lt, Const::Num(5.0)).unwrap();
        assert!(matches!(
            s2.add("x", RelOp::Ge, Const::Num(5.0)),
            Err(Inconsistency::EmptyInterval(_))
        ));
    }

    #[test]
    fn eq_outside_interval() {
        let mut s = LocalSet::new();
        s.add("age", RelOp::Lt, Const::Num(30.0)).unwrap();
        assert!(matches!(
            s.add("age", RelOp::Eq, Const::Num(33.0)),
            Err(Inconsistency::EqOutsideInterval(_))
        ));
    }

    #[test]
    fn compatibility_paper_example() {
        // π1's y: tag=car, color ≠ red.  π2's u: tag=car.
        let mut y = LocalSet::new();
        y.require_tag("car").unwrap();
        y.add("color", RelOp::Ne, Const::Str("red".into())).unwrap();
        let mut u = LocalSet::new();
        u.require_tag("car").unwrap();
        assert!(y.compatible(&u));
        // But y is NOT compatible with π1's x (color = red).
        let mut x = LocalSet::new();
        x.require_tag("car").unwrap();
        x.add("color", RelOp::Eq, Const::Str("red".into())).unwrap();
        assert!(!y.compatible(&x));
        assert!(x.compatible(&u));
    }

    #[test]
    fn merge_is_commutative_in_outcome() {
        let mut a = LocalSet::new();
        a.add("hp", RelOp::Gt, Const::Num(100.0)).unwrap();
        let mut b = LocalSet::new();
        b.add("hp", RelOp::Lt, Const::Num(150.0)).unwrap();
        assert!(a.compatible(&b));
        assert!(b.compatible(&a));
    }

    #[test]
    fn diffgraph_strict_cycle_unsat() {
        let mut g = DiffGraph::new();
        g.add_less((0, "m"), (1, "m"), true);
        g.add_less((1, "m"), (0, "m"), true);
        assert!(!g.satisfiable());
    }

    #[test]
    fn diffgraph_nonstrict_cycle_sat() {
        let mut g = DiffGraph::new();
        g.add_less((0, "m"), (1, "m"), false);
        g.add_less((1, "m"), (0, "m"), false);
        assert!(g.satisfiable()); // all equal works
    }

    #[test]
    fn diffgraph_chain_sat() {
        let mut g = DiffGraph::new();
        g.add_less((0, "m"), (1, "m"), true);
        g.add_less((1, "m"), (2, "m"), true);
        assert!(g.satisfiable());
    }

    #[test]
    fn diffgraph_mixed_cycle_with_one_strict_unsat() {
        let mut g = DiffGraph::new();
        g.add_less((0, "m"), (1, "m"), false);
        g.add_less((1, "m"), (0, "m"), true);
        assert!(!g.satisfiable());
    }
}
