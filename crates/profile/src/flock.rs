//! Query flocks (paper §5.1) and their single-plan encoding (§6.1–6.2).
//!
//! Given a query `Q` and scoping rules ordered by the conflict analysis,
//! the **flock** is the family `Q, ρ1(Q), ρ2(ρ1(Q)), …`: all of them must
//! be evaluated, because "the user should not be penalized for having
//! configured a profile" — if the rewritten query has few answers, answers
//! of the original must still surface.
//!
//! The paper's key implementation insight (§6.1): the flock need not be
//! evaluated as separate queries. Because `Q` itself is a flock member,
//! every predicate an SR *adds* is effectively optional (it can only boost
//! answers that satisfy it), and every predicate an SR *deletes* becomes
//! optional too (answers without it are still answers of a later member).
//! So the whole flock compiles into **one pattern** — the union of all
//! members — whose SR-delta parts are marked optional and realized as
//! outer-joins that contribute score when present. [`PersonalizedQuery`]
//! is that annotated pattern.
//!
//! One deliberate semantic choice: the encoding accepts the union of *all
//! subsets* of the SR deltas, which contains the literal flock union and
//! can exceed it when an `add` is later followed by a `delete` of an
//! unrelated predicate (an answer matching neither delta is then accepted,
//! though no literal member matches it exactly). The inclusive side is the
//! safe one — the paper's own requirement is that "the user should not be
//! penalized", and extra answers carry no delta score, so they rank below
//! every true flock answer. The members-vs-encoding relationship is
//! checked by the `flock_semantics` integration tests.

use crate::conflict::{self, ConflictAnalysis, ConflictError};
use crate::scoping::{Edit, ScopingRule};
use pimento_tpq::{Predicate, Tpq, TpqNodeId};
use std::collections::{HashMap, HashSet};

/// The literal query flock: every member pattern, in rewrite order.
#[derive(Debug, Clone)]
pub struct QueryFlock {
    /// `members[0]` is the original query; each later member applies one
    /// more rule.
    pub members: Vec<Tpq>,
    /// Ids of the rules applied, aligned with `members[1..]`.
    pub applied_rules: Vec<String>,
    /// Ids of rules skipped because they were inapplicable at their turn
    /// (a conflict consumed their condition).
    pub skipped_rules: Vec<String>,
}

impl QueryFlock {
    /// Deduplicated member count (members can coincide when a rule's edit
    /// is a no-op).
    pub fn distinct_members(&self) -> usize {
        let keys: HashSet<String> = self.members.iter().map(Tpq::canonical_key).collect();
        keys.len()
    }
}

/// The flock encoded as one pattern with optionality annotations — the
/// input to plan generation.
#[derive(Debug, Clone)]
pub struct PersonalizedQuery {
    /// The union pattern: the original query plus every node/predicate any
    /// SR added. Node ids here are stable (nothing is ever removed).
    pub tpq: Tpq,
    /// Nodes whose structural match is optional (outer structural join).
    pub optional_nodes: HashSet<TpqNodeId>,
    /// `(node, predicate index)` pairs whose predicate is optional: when it
    /// holds it contributes score, when it fails the answer survives.
    pub optional_preds: HashSet<(TpqNodeId, usize)>,
    /// Per-optional-predicate score weight (§8 weighted-SR extension):
    /// the weight of the scoping rule that made the predicate optional.
    /// Absent entries weigh 1.0.
    pub optional_weights: HashMap<(TpqNodeId, usize), f64>,
    /// The literal flock, for inspection/explain.
    pub flock: QueryFlock,
}

impl PersonalizedQuery {
    /// A query with no applicable scoping rules: everything required.
    pub fn unpersonalized(query: Tpq) -> Self {
        PersonalizedQuery {
            tpq: query.clone(),
            optional_nodes: HashSet::new(),
            optional_preds: HashSet::new(),
            optional_weights: HashMap::new(),
            flock: QueryFlock {
                members: vec![query],
                applied_rules: Vec::new(),
                skipped_rules: Vec::new(),
            },
        }
    }

    /// Is this predicate occurrence optional?
    pub fn pred_is_optional(&self, node: TpqNodeId, idx: usize) -> bool {
        self.optional_preds.contains(&(node, idx)) || self.node_is_optional(node)
    }

    /// Is this node's structural match optional (directly or via an
    /// optional ancestor)?
    pub fn node_is_optional(&self, node: TpqNodeId) -> bool {
        if self.optional_nodes.contains(&node) {
            return true;
        }
        let mut cur = self.tpq.node(node).parent;
        while let Some(p) = cur {
            if self.optional_nodes.contains(&p) {
                return true;
            }
            cur = self.tpq.node(p).parent;
        }
        false
    }

    /// Weight of an optional predicate occurrence (1.0 unless the scoping
    /// rule that produced it carried a weight).
    pub fn pred_weight(&self, node: TpqNodeId, idx: usize) -> f64 {
        self.optional_weights
            .get(&(node, idx))
            .copied()
            .unwrap_or(1.0)
    }

    /// Number of *optional* keyword predicates (SR-contributed score
    /// sources).
    pub fn optional_keyword_count(&self) -> usize {
        self.keyword_preds()
            .filter(|&(n, i, _)| self.pred_is_optional(n, i))
            .count()
    }

    /// All keyword predicates as `(node, index, predicate)` — both
    /// `ftcontains` phrases and `ftall` groups count (every keyword
    /// predicate is a score contributor).
    pub fn keyword_preds(&self) -> impl Iterator<Item = (TpqNodeId, usize, &Predicate)> + '_ {
        self.tpq.node_ids().flat_map(move |id| {
            self.tpq
                .node(id)
                .predicates
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_keyword())
                .map(move |(i, p)| (id, i, p))
        })
    }
}

/// Build the flock and its plan encoding for `query` under `rules`,
/// resolving conflicts first. This is "enforcing SRs" end to end.
pub fn personalize(query: &Tpq, rules: &[ScopingRule]) -> Result<PersonalizedQuery, ConflictError> {
    let analysis: ConflictAnalysis = conflict::analyze(rules, query)?;
    Ok(personalize_ordered(query, rules, &analysis.order))
}

/// Build the flock applying `rules` in the given `order` (indices into
/// `rules`). Rules inapplicable at their turn are skipped.
pub fn personalize_ordered(
    query: &Tpq,
    rules: &[ScopingRule],
    order: &[usize],
) -> PersonalizedQuery {
    let mut literal = query.clone();
    let mut union = query.clone();
    let mut optional_nodes: HashSet<TpqNodeId> = HashSet::new();
    let mut optional_preds: HashSet<(TpqNodeId, usize)> = HashSet::new();
    let mut optional_weights: HashMap<(TpqNodeId, usize), f64> = HashMap::new();
    let mut members = vec![query.clone()];
    let mut applied_rules = Vec::new();
    let mut skipped_rules = Vec::new();

    for &i in order {
        let rule = &rules[i];
        if !rule.applicable(&literal) {
            skipped_rules.push(rule.id.clone());
            continue;
        }
        let edits = rule.apply(&mut literal);
        members.push(literal.clone());
        applied_rules.push(rule.id.clone());
        for e in &edits {
            mirror_edit(
                &mut union,
                &mut optional_nodes,
                &mut optional_preds,
                &mut optional_weights,
                rule.weight,
                e,
            );
        }
    }

    PersonalizedQuery {
        tpq: union,
        optional_nodes,
        optional_preds,
        optional_weights,
        flock: QueryFlock {
            members,
            applied_rules,
            skipped_rules,
        },
    }
}

/// Mirror a literal edit onto the union pattern: additions materialize as
/// optional parts; removals demote existing parts to optional.
fn mirror_edit(
    union: &mut Tpq,
    optional_nodes: &mut HashSet<TpqNodeId>,
    optional_preds: &mut HashSet<(TpqNodeId, usize)>,
    optional_weights: &mut HashMap<(TpqNodeId, usize), f64>,
    weight: f64,
    edit: &Edit,
) {
    match edit {
        Edit::AddedNode { tag, under, axis } => {
            let anchor = union
                .find_by_tag(under)
                .unwrap_or_else(|| union.distinguished());
            let id = union.add_child(anchor, *axis, tag.clone());
            optional_nodes.insert(id);
        }
        Edit::AddedPredicate { tag, pred } => {
            if let Some(id) = union.find_by_tag(tag) {
                // Reuse an identical predicate if one already exists (e.g.
                // a delete-then-re-add sequence); otherwise append.
                let existing = union.node(id).predicates.iter().position(|p| p == pred);
                let idx = match existing {
                    Some(i) => i,
                    None => {
                        union.add_predicate(id, pred.clone());
                        union.node(id).predicates.len() - 1
                    }
                };
                optional_preds.insert((id, idx));
                if weight != 1.0 {
                    optional_weights.insert((id, idx), weight);
                }
            }
        }
        Edit::RemovedPredicate { tag, pred } => {
            for id in union.find_all_by_tag(tag) {
                for (i, p) in union.node(id).predicates.iter().enumerate() {
                    if p == pred {
                        optional_preds.insert((id, i));
                        if weight != 1.0 {
                            optional_weights.insert((id, i), weight);
                        }
                    }
                }
            }
        }
        Edit::RelaxedEdge { parent, child } => {
            // Pure broadening: the union pattern must accept both the
            // original pc matches and the relaxed ad matches, so the union
            // edge becomes ad. No optionality annotation is needed (the
            // structural join contributes no score either way).
            crate::scoping::relax_edges(union, parent, child);
        }
        Edit::RemovedNode { tag } => {
            if let Some(id) = union
                .find_all_by_tag(tag)
                .into_iter()
                .find(|&id| !optional_nodes.contains(&id))
                .or_else(|| union.find_by_tag(tag))
            {
                optional_nodes.insert(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoping::Atom;
    use pimento_tpq::parse_tpq;

    fn query_q() -> Tpq {
        parse_tpq(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
        )
        .unwrap()
    }

    fn rho2() -> ScopingRule {
        ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        )
    }

    fn rho3() -> ScopingRule {
        ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        )
    }

    #[test]
    fn paper_plan1_encoding() {
        // §6.2: with ρ2 (add "american") and ρ3 (remove "low mileage"),
        // the plan makes "american" and "low mileage" optional while
        // "good condition" stays required.
        let pq = personalize(&query_q(), &[rho2(), rho3()]).unwrap();
        let d = pq.tpq.find_by_tag("description").unwrap();
        let preds = &pq.tpq.node(d).predicates;
        assert_eq!(preds.len(), 3);
        let idx_of = |phrase: &str| {
            preds
                .iter()
                .position(|p| matches!(p, Predicate::FtContains { phrase: ph } if ph == phrase))
                .unwrap()
        };
        assert!(!pq.pred_is_optional(d, idx_of("good condition")));
        assert!(pq.pred_is_optional(d, idx_of("low mileage")));
        assert!(pq.pred_is_optional(d, idx_of("american")));
        assert_eq!(pq.optional_keyword_count(), 2);
    }

    #[test]
    fn flock_members_are_cumulative() {
        let pq = personalize(&query_q(), &[rho2(), rho3()]).unwrap();
        assert_eq!(pq.flock.members.len(), 3); // Q, then two rewrites
        assert_eq!(pq.flock.applied_rules.len(), 2);
        assert!(pq.flock.skipped_rules.is_empty());
        // Last member: "american" added AND "low mileage" removed.
        let last = pq.flock.members.last().unwrap();
        let d = last.find_by_tag("description").unwrap();
        let phrases: Vec<String> = last
            .node(d)
            .predicates
            .iter()
            .filter_map(|p| match p {
                Predicate::FtContains { phrase } => Some(phrase.clone()),
                _ => None,
            })
            .collect();
        assert!(phrases.contains(&"american".to_string()));
        assert!(phrases.contains(&"good condition".to_string()));
        assert!(!phrases.contains(&"low mileage".to_string()));
    }

    #[test]
    fn skipped_rules_are_recorded() {
        // ρ1 deletes "good condition", then ρ2's condition fails.
        let rho1 = ScopingRule::delete(
            "rho1",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "low mileage"),
            ],
            vec![Atom::ft("description", "good condition")],
        );
        let pq = personalize_ordered(&query_q(), &[rho1, rho2()], &[0, 1]);
        assert_eq!(pq.flock.applied_rules, vec!["rho1"]);
        assert_eq!(pq.flock.skipped_rules, vec!["rho2"]);
    }

    #[test]
    fn conflict_resolution_orders_victim_first() {
        // personalize() runs the conflict analysis: ρ2 applies before ρ1.
        let rho1 = ScopingRule::delete(
            "rho1",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "low mileage"),
            ],
            vec![Atom::ft("description", "good condition")],
        );
        let pq = personalize(&query_q(), &[rho1, rho2()]).unwrap();
        assert_eq!(pq.flock.applied_rules, vec!["rho2", "rho1"]);
        assert!(pq.flock.skipped_rules.is_empty());
    }

    #[test]
    fn structural_addition_is_optional_subtree() {
        let add_loc = ScopingRule::add(
            "loc",
            vec![],
            vec![Atom::pc("car", "location"), Atom::ft("location", "NYC")],
        );
        let pq = personalize(&query_q(), &[add_loc]).unwrap();
        let l = pq.tpq.find_by_tag("location").unwrap();
        assert!(pq.node_is_optional(l));
        // The predicate on the optional node is optional by inheritance.
        assert!(pq.pred_is_optional(l, 0));
    }

    #[test]
    fn unpersonalized_query() {
        let pq = PersonalizedQuery::unpersonalized(query_q());
        assert_eq!(pq.flock.members.len(), 1);
        assert_eq!(pq.optional_keyword_count(), 0);
        let d = pq.tpq.find_by_tag("description").unwrap();
        assert!(!pq.pred_is_optional(d, 0));
    }

    #[test]
    fn union_node_ids_are_stable() {
        // Every node of the original query keeps its id in the union.
        let q = query_q();
        let pq = personalize(&q, &[rho2(), rho3()]).unwrap();
        for id in q.node_ids() {
            assert_eq!(q.node(id).tag, pq.tpq.node(id).tag);
        }
    }

    #[test]
    fn distinct_members_deduplicates() {
        // A rule whose edit is a no-op (adding an existing structural atom)
        // produces a duplicate member.
        let dup = ScopingRule::add("dup", vec![], vec![Atom::pc("car", "price")]);
        let pq = personalize(&query_q(), &[dup]).unwrap();
        assert_eq!(pq.flock.members.len(), 2);
        assert_eq!(pq.flock.distinct_members(), 1);
    }
}

#[cfg(test)]
mod relax_flock_tests {
    use super::*;
    use crate::scoping::ScopingRule;
    use pimento_tpq::{parse_tpq, Axis};

    #[test]
    fn relaxation_broadens_union_without_optionality() {
        let q = parse_tpq("//dealer/car[./price < 100]").unwrap();
        let rel = ScopingRule::relax_edge("rel", vec![], "dealer", "car");
        let pq = personalize(&q, &[rel]).unwrap();
        let car = pq.tpq.find_by_tag("car").unwrap();
        assert_eq!(pq.tpq.node(car).axis, Axis::Descendant);
        assert!(pq.optional_nodes.is_empty());
        assert_eq!(pq.flock.members.len(), 2);
        // The literal flock member is relaxed too.
        let m1 = &pq.flock.members[1];
        let car1 = m1.find_by_tag("car").unwrap();
        assert_eq!(m1.node(car1).axis, Axis::Descendant);
    }
}
