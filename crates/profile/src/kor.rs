//! Keyword-based ordering rules (KORs), paper §3.2:
//! `C & ftcontains(x, "k") → x ≺ y` — among answers of the same type,
//! prefer those containing an occurrence of keyword `k`.
//!
//! At runtime a KOR behaves additively: each KOR carries a weight, an
//! answer's `K` score is the sum of the weights of the KORs it satisfies,
//! and the *kor-scorebound* of a plan position is the sum of the weights of
//! the KORs not yet applied — exactly the quantity Algorithm 3 prunes with.

/// One keyword-based ordering rule.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordOrderingRule {
    /// Identifier for diagnostics (π4, π5, …).
    pub id: String,
    /// Common condition `x.tag = y.tag = tag`.
    pub tag: String,
    /// The keyword/phrase whose containment is preferred.
    pub phrase: String,
    /// Score contributed when the answer contains the phrase. Must be
    /// positive; defaults to 1.0.
    pub weight: f64,
}

impl KeywordOrderingRule {
    /// Unit-weight rule.
    pub fn new(id: &str, tag: &str, phrase: &str) -> Self {
        Self::weighted(id, tag, phrase, 1.0)
    }

    /// Rule with an explicit weight.
    pub fn weighted(id: &str, tag: &str, phrase: &str, weight: f64) -> Self {
        assert!(weight > 0.0, "KOR weight must be positive");
        KeywordOrderingRule {
            id: id.to_string(),
            tag: tag.to_string(),
            phrase: phrase.to_string(),
            weight,
        }
    }

    /// Expand the paper's shorthand (§7.1): a rule listing several
    /// alternative phrases "is just a shorthand" for one KOR per phrase.
    pub fn multi(id_prefix: &str, tag: &str, phrases: &[&str], weight: f64) -> Vec<Self> {
        phrases
            .iter()
            .enumerate()
            .map(|(i, p)| Self::weighted(&format!("{id_prefix}.{}", i + 1), tag, p, weight))
            .collect()
    }
}

/// Total weight of a KOR set — the kor-scorebound before any is applied.
pub fn total_weight(rules: &[KeywordOrderingRule]) -> f64 {
    rules.iter().map(|r| r.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_weights() {
        let r = KeywordOrderingRule::new("pi4", "car", "best bid");
        assert_eq!(r.weight, 1.0);
        let w = KeywordOrderingRule::weighted("pi5", "car", "NYC", 2.5);
        assert_eq!(w.weight, 2.5);
        assert_eq!(total_weight(&[r, w]), 3.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = KeywordOrderingRule::weighted("bad", "car", "x", 0.0);
    }

    #[test]
    fn multi_expands_shorthand() {
        let rules = KeywordOrderingRule::multi(
            "inex131",
            "abs",
            &["data cube", "association rule", "data mining"],
            1.0,
        );
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].id, "inex131.1");
        assert_eq!(rules[2].phrase, "data mining");
        assert!(rules.iter().all(|r| r.tag == "abs"));
    }

    #[test]
    fn empty_set_total_weight_zero() {
        assert_eq!(total_weight(&[]), 0.0);
    }
}
