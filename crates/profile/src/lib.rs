//! # pimento-profile
//!
//! User profiles for the PIMENTO reproduction — the paper's central
//! formalization (§3–§5): a profile `Π = (Σ, O_v, O_k)` of scoping rules,
//! value-based ordering rules, and keyword-based ordering rules, together
//! with the static analyses the paper defines over them:
//!
//! * [`scoping`] — `add`/`delete`/`replace` rules, subsumption-guarded;
//! * [`conflict`] — the conflict graph over SRs, cycle detection, and
//!   priority-based resolution (§5.1);
//! * [`flock`] — query flocks `Q, ρ1(Q), ρ2(ρ1(Q)), …` and their
//!   single-plan encoding with optional (outer-joined) SR deltas (§6.1);
//! * [`vor`] — the three VOR forms and the runtime `≺_V` comparator;
//! * [`prefrel`] — strict partial orders over attribute domains;
//! * [`ambiguity`] — alternating-cycle detection in the constraint graph
//!   (Lemma 5.1) with a satisfiability refinement;
//! * [`kor`] — keyword ordering rules with weights (`K` scores);
//! * [`profile`] — the assembled [`UserProfile`].
//!
//! ```
//! use pimento_profile::{UserProfile, ValueOrderingRule, KeywordOrderingRule};
//!
//! let profile = UserProfile::new()
//!     .with_vor(ValueOrderingRule::prefer_value("pi1", "car", "color", "red"))
//!     .with_vor(ValueOrderingRule::prefer_smaller("pi2", "car", "mileage"))
//!     .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));
//! // π1/π2 clash on a red, high-mileage car vs a non-red, low-mileage one:
//! assert!(profile.check_ambiguity().is_ambiguous());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambiguity;
pub mod conflict;
pub mod constraints;
pub mod flock;
pub mod kor;
pub mod parse;
pub mod prefrel;
pub mod profile;
pub mod render;
pub mod scoping;
pub mod thesaurus;
pub mod validate;
pub mod vor;
pub mod vor_table;

pub use ambiguity::{detect_ambiguity, detect_ambiguity_with_priorities, AmbiguityReport};
pub use conflict::{analyze as analyze_conflicts, conflicts, ConflictAnalysis, ConflictError};
pub use flock::{personalize, personalize_ordered, PersonalizedQuery, QueryFlock};
pub use kor::KeywordOrderingRule;
pub use parse::{parse_profile, parse_rule, ParsedRule, PrefRelRegistry, RuleParseError};
pub use prefrel::{PrefRel, PrefTable};
pub use profile::{RankOrder, UserProfile};
pub use render::{render_kor, render_profile, render_scoping, render_vor, RenderError};
pub use scoping::{Atom, Edit, ScopingRule, SrAction};
pub use thesaurus::Thesaurus;
pub use validate::{validate, Finding, FindingKind, Severity, VerifyReport, Warning};
pub use vor::{compare_all, AttrValue, PrefOp, RuleCmp, ValueOrderingRule, VorForm, VorOutcome};
pub use vor_table::{CompiledKey, CompiledVors};

#[cfg(test)]
mod proptests {
    use crate::vor::{compare_all, AttrValue, ValueOrderingRule, VorOutcome};
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn rules() -> Vec<ValueOrderingRule> {
        vec![
            ValueOrderingRule::prefer_smaller("m", "car", "mileage").with_priority(0),
            ValueOrderingRule::prefer_value("c", "car", "color", "red").with_priority(1),
            ValueOrderingRule::prefer_larger("h", "car", "hp").with_priority(2),
        ]
    }

    fn car(mileage: u32, red: bool, hp: u32) -> HashMap<String, AttrValue> {
        let mut m = HashMap::new();
        m.insert("mileage".to_string(), AttrValue::Num(mileage as f64));
        m.insert(
            "color".to_string(),
            AttrValue::Str(if red { "red" } else { "blue" }.into()),
        );
        m.insert("hp".to_string(), AttrValue::Num(hp as f64));
        m
    }

    fn cmp(a: &HashMap<String, AttrValue>, b: &HashMap<String, AttrValue>) -> VorOutcome {
        compare_all(&rules(), "car", "car", &|k| a.get(k).cloned(), &|k| {
            b.get(k).cloned()
        })
    }

    proptest! {
        /// ≺_V under full priorities is antisymmetric.
        #[test]
        fn vor_antisymmetric(m1 in 0u32..5, r1 in any::<bool>(), h1 in 0u32..5,
                             m2 in 0u32..5, r2 in any::<bool>(), h2 in 0u32..5) {
            let a = car(m1, r1, h1);
            let b = car(m2, r2, h2);
            let ab = cmp(&a, &b);
            let ba = cmp(&b, &a);
            match ab {
                VorOutcome::PreferA => prop_assert_eq!(ba, VorOutcome::PreferB),
                VorOutcome::PreferB => prop_assert_eq!(ba, VorOutcome::PreferA),
                VorOutcome::Equal => prop_assert_eq!(ba, VorOutcome::Equal),
                VorOutcome::Incomparable => prop_assert_eq!(ba, VorOutcome::Incomparable),
            }
        }

        /// ≺_V under full (totally ordering) priorities on totally-valued
        /// data is transitive.
        #[test]
        fn vor_transitive(cars in proptest::collection::vec((0u32..4, any::<bool>(), 0u32..4), 3)) {
            let a = car(cars[0].0, cars[0].1, cars[0].2);
            let b = car(cars[1].0, cars[1].1, cars[1].2);
            let c = car(cars[2].0, cars[2].1, cars[2].2);
            if cmp(&a, &b) == VorOutcome::PreferA && cmp(&b, &c) == VorOutcome::PreferA {
                prop_assert_eq!(cmp(&a, &c), VorOutcome::PreferA);
            }
        }

        /// Reflexivity: every answer ties with itself.
        #[test]
        fn vor_reflexive_equal(m in 0u32..10, r in any::<bool>(), h in 0u32..10) {
            let a = car(m, r, h);
            prop_assert_eq!(cmp(&a, &a), VorOutcome::Equal);
        }
    }
}
